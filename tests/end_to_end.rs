//! Workspace-level end-to-end tests through the `procache` facade: the
//! proactive pipeline must return exactly the direct answer on every
//! dataset flavor, form policy and replacement policy, under eviction
//! churn — the §3.2/§3.3 contract.

use procache::cache::{Catalog, ReplacementPolicy};
use procache::client::Client;
use procache::geom::{Point, Rect};
use procache::rtree::naive;
use procache::rtree::proto::QuerySpec;
use procache::rtree::{ObjectId, RTreeConfig};
use procache::server::{FormPolicy, Server, ServerConfig};
use procache::workload::datasets;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pipeline(
    client: &mut Client,
    server: &Server,
    spec: &QuerySpec,
    pos: Point,
) -> (Vec<ObjectId>, Vec<(ObjectId, ObjectId)>) {
    client.begin_query();
    let local = client.run_local(spec);
    let reply = local
        .remainder
        .as_ref()
        .map(|rq| server.process_remainder(0, rq));
    if let Some(r) = &reply {
        client.absorb(r, pos);
    }
    let a = client.assemble(&local, reply.as_ref());
    let mut objs = a.objects;
    objs.sort_unstable();
    (objs, a.pairs)
}

fn check_dataset(kind: &str, server: &Server, seed: u64) {
    for form in [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive] {
        // Rebuild the server with this form (same dataset/seed).
        let store =
            procache::rtree::ObjectStore::new(server.snapshot().store().iter().copied().collect());
        let server = Server::new(
            store,
            RTreeConfig::small(),
            ServerConfig {
                form,
                ..Default::default()
            },
        );
        for policy in [ReplacementPolicy::Grd3, ReplacementPolicy::Lru] {
            let mut client =
                Client::new(40_000, policy, Catalog::from_tree(server.snapshot().tree()));
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut pos = Point::new(0.4, 0.4);
            for round in 0..40 {
                pos = Point::new(
                    (pos.x + rng.random_range(-0.06..0.06)).clamp(0.0, 1.0),
                    (pos.y + rng.random_range(-0.06..0.06)).clamp(0.0, 1.0),
                );
                let spec = match round % 3 {
                    0 => QuerySpec::Range {
                        window: Rect::centered_square(pos, rng.random_range(0.02..0.12)),
                    },
                    1 => QuerySpec::Knn {
                        center: pos,
                        k: rng.random_range(1..7),
                    },
                    _ => QuerySpec::Join {
                        dist: rng.random_range(0.001..0.01),
                    },
                };
                let (objs, pairs) = pipeline(&mut client, &server, &spec, pos);
                client
                    .cache()
                    .validate()
                    .unwrap_or_else(|e| panic!("{kind}/{form:?}/{policy}: cache corrupt: {e}"));
                match &spec {
                    QuerySpec::Range { window } => {
                        assert_eq!(
                            objs,
                            naive::range_naive(server.snapshot().store(), window),
                            "{kind}/{form:?}/{policy} round {round}"
                        );
                    }
                    QuerySpec::Knn { center, k } => {
                        let want = naive::knn_naive(server.snapshot().store(), center, *k as usize);
                        assert_eq!(objs.len(), want.len());
                        let mut got_d: Vec<f64> = objs
                            .iter()
                            .map(|id| server.snapshot().store().get(*id).mbr.min_dist(center))
                            .collect();
                        got_d.sort_by(f64::total_cmp);
                        for (g, (_, w)) in got_d.iter().zip(&want) {
                            assert!(
                                (g - w).abs() < 1e-12,
                                "{kind}/{form:?}/{policy} round {round}"
                            );
                        }
                    }
                    QuerySpec::Join { dist } => {
                        let mut got = pairs.clone();
                        got.sort_unstable();
                        assert_eq!(
                            got,
                            naive::join_naive(server.snapshot().store(), *dist),
                            "{kind}/{form:?}/{policy} round {round}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn ne_like_dataset_pipeline_is_exact() {
    let store = datasets::ne_like(600, 1);
    let server = Server::new(store, RTreeConfig::small(), ServerConfig::default());
    check_dataset("ne", &server, 100);
}

#[test]
fn rd_like_dataset_pipeline_is_exact() {
    let store = datasets::rd_like(600, 2);
    let server = Server::new(store, RTreeConfig::small(), ServerConfig::default());
    check_dataset("rd", &server, 200);
}

#[test]
fn uniform_dataset_pipeline_is_exact() {
    let store = datasets::uniform(600, 3);
    let server = Server::new(store, RTreeConfig::small(), ServerConfig::default());
    check_dataset("uniform", &server, 300);
}

#[test]
fn paper_fanout_tree_pipeline_is_exact() {
    // Same contract under the 4 KB-page fan-out (102 entries/node): the
    // BPTs are deep and compact forms actually coarsen.
    let store = datasets::ne_like(5_000, 4);
    let server = Server::new(store, RTreeConfig::paper(), ServerConfig::default());
    let mut client = Client::new(
        300_000,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    let mut rng = SmallRng::seed_from_u64(5);
    for round in 0..30 {
        let pos = Point::new(rng.random_range(0.2..0.8), rng.random_range(0.2..0.8));
        let spec = if round % 2 == 0 {
            QuerySpec::Range {
                window: Rect::centered_square(pos, 0.05),
            }
        } else {
            QuerySpec::Knn { center: pos, k: 5 }
        };
        let (objs, _) = pipeline(&mut client, &server, &spec, pos);
        if let QuerySpec::Range { window } = &spec {
            assert_eq!(
                objs,
                naive::range_naive(server.snapshot().store(), window),
                "round {round}"
            );
        }
        client.cache().validate().unwrap();
    }
}
