//! Fleet concurrency/determinism integration tests: the multi-client
//! refactor must not change what any single client computes.
//!
//! (a) a 1-client `Fleet` reproduces the sequential `run_with_server`
//!     path exactly (deterministic metrics; CPU wall-clock excluded);
//! (b) an N-client concurrent run's per-client results equal the same N
//!     sessions run sequentially;
//! (c) routing the same fleet through the `BatchedService` transport
//!     changes no per-client result — a 1-client batched fleet stays
//!     identical to the sequential runner, and a concurrent batched fleet
//!     matches direct dispatch client by client;
//! (d) completed sessions disconnect (`Forget`), so the server's adaptive
//!     table drains back to empty after every run;
//! (e) a fleet with a 0-rate churn config is bit-identical to the plain
//!     fleet (no driver, no versioned envelopes), while a churned fleet
//!     completes with the §7 protocol's stale-retry and invalidation
//!     bytes in its ledgers, which stay merge-order-insensitive.

use procache::server::{BatchConfig, BatchedService};
use procache::sim::{self, CacheModel, ChurnConfig, Fleet, SimConfig, SimResult, Summary};

fn fleet_cfg(model: CacheModel) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.model = model;
    cfg.n_objects = 3_000;
    cfg.n_queries = 200;
    cfg.window = 50;
    cfg.fmr_report_period = 25;
    cfg.verify = false;
    cfg
}

/// The deterministic (non-wall-clock) slice of a summary.
fn deterministic_parts(s: &Summary) -> (usize, [u64; 9], [f64; 6]) {
    (
        s.queries,
        [
            s.totals.uplink_bytes,
            s.totals.downlink_bytes,
            s.totals.result_bytes,
            s.totals.saved_bytes,
            s.totals.cached_results,
            s.totals.false_misses,
            s.totals.contacts,
            s.totals.stale_retries,
            s.totals.invalidation_bytes,
        ],
        [
            s.avg_uplink_bytes,
            s.avg_downlink_bytes,
            s.avg_response_s,
            s.hit_c,
            s.hit_b,
            s.fmr,
        ],
    )
}

fn assert_same_stream(a: &SimResult, b: &SimResult, who: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{who}: record count");
    for (i, (x, y)) in a.records.iter().zip(&b.records).enumerate() {
        assert_eq!(x.kind, y.kind, "{who}: kind @{i}");
        assert_eq!(x.uplink_bytes, y.uplink_bytes, "{who}: uplink @{i}");
        assert_eq!(x.downlink_bytes, y.downlink_bytes, "{who}: downlink @{i}");
        assert_eq!(x.saved_bytes, y.saved_bytes, "{who}: saved @{i}");
        assert_eq!(x.result_bytes, y.result_bytes, "{who}: result @{i}");
        assert_eq!(x.false_misses, y.false_misses, "{who}: false misses @{i}");
        assert_eq!(x.contacted, y.contacted, "{who}: contacted @{i}");
        assert_eq!(x.avg_response_s, y.avg_response_s, "{who}: response @{i}");
    }
    assert_eq!(
        deterministic_parts(&a.summary),
        deterministic_parts(&b.summary),
        "{who}: summary"
    );
    assert_eq!(a.sim_elapsed_s, b.sim_elapsed_s, "{who}: simulated span");
}

#[test]
fn one_client_fleet_reproduces_the_sequential_runner() {
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let cfg = fleet_cfg(model);
        let mut server = sim::build_server(&cfg);
        let sequential = sim::run_with_server(&cfg, &mut server);

        // Fresh server: the sequential run above fed the adaptive state.
        let server = sim::build_server(&cfg);
        let fleet = Fleet::new(cfg).clients(1).run(&server);
        assert_eq!(fleet.per_client.len(), 1);
        assert_same_stream(
            &sequential,
            &fleet.per_client[0],
            &format!("{model} client"),
        );
        assert_same_stream(&sequential, &fleet.merged, &format!("{model} merged"));
        assert_eq!(
            server.tracked_clients(),
            0,
            "{model}: finished session must have disconnected"
        );
    }
}

#[test]
fn one_client_batched_fleet_reproduces_the_sequential_runner() {
    // The batched remainder service is a pure transport swap: with one
    // client every batch has size one and the stream must stay
    // bit-identical to the sequential runner.
    let cfg = fleet_cfg(CacheModel::Proactive);
    let mut server = sim::build_server(&cfg);
    let sequential = sim::run_with_server(&cfg, &mut server);

    let server = sim::build_server(&cfg);
    let service = BatchedService::over(&server);
    let fleet = Fleet::new(cfg).clients(1).run(&service);
    assert_eq!(fleet.per_client.len(), 1);
    assert_same_stream(&sequential, &fleet.per_client[0], "batched client");
    assert_same_stream(&sequential, &fleet.merged, "batched merged");
    let stats = service.stats();
    assert!(stats.batches > 0, "remainders went through the service");
    assert_eq!(stats.max_batch, 1, "one client cannot coalesce");
    assert_eq!(server.tracked_clients(), 0, "session disconnected");
}

#[test]
fn concurrent_batched_fleet_matches_direct_dispatch() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let server = sim::build_server(&cfg);
    let direct = Fleet::new(cfg).clients(clients).threads(4).run(&server);

    let server = sim::build_server(&cfg);
    let service = BatchedService::new(
        &server,
        BatchConfig {
            shards: 1, // maximize coalescing pressure
            max_batch: 4,
            queue_cap: 16,
        },
    );
    let batched = Fleet::new(cfg).clients(clients).threads(4).run(&service);

    assert_eq!(batched.per_client.len(), clients as usize);
    for (c, (a, b)) in batched
        .per_client
        .iter()
        .zip(&direct.per_client)
        .enumerate()
    {
        assert_same_stream(a, b, &format!("batched client {c}"));
    }
    let stats = service.stats();
    assert_eq!(
        stats.batched_requests,
        direct.merged.records.iter().filter(|r| r.contacted).count() as u64,
        "every contact went through the batched service"
    );
    assert_eq!(server.tracked_clients(), 0, "all sessions disconnected");
}

#[test]
fn concurrent_fleet_matches_sequential_sessions() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let server = sim::build_server(&cfg);
    let concurrent = Fleet::new(cfg).clients(clients).threads(4).run(&server);

    let server = sim::build_server(&cfg);
    let sequential = Fleet::new(cfg).clients(clients).run_sequential(&server);

    assert_eq!(concurrent.per_client.len(), clients as usize);
    for (c, (a, b)) in concurrent
        .per_client
        .iter()
        .zip(&sequential.per_client)
        .enumerate()
    {
        assert_same_stream(a, b, &format!("client {c}"));
    }
    assert_eq!(
        deterministic_parts(&concurrent.merged.summary),
        deterministic_parts(&sequential.merged.summary),
        "merged summaries"
    );
    assert_eq!(
        server.tracked_clients(),
        0,
        "every finished session must have sent Forget"
    );
}

#[test]
fn zero_rate_churn_fleet_is_bit_identical_to_plain_fleet() {
    // `--update-rate 0` must change *nothing*: no driver thread, plain
    // (unversioned) protocol, byte-identical streams — the PR 3 fleet.
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 2;

    let server = sim::build_server(&cfg);
    let plain = Fleet::new(cfg).clients(clients).run(&server);

    let server = sim::build_server(&cfg);
    let zero_rate = Fleet::new(cfg)
        .clients(clients)
        .churn(ChurnConfig {
            rate_per_100: 0,
            ..Default::default()
        })
        .run(&server);

    assert_eq!(zero_rate.updates_applied, 0);
    assert_eq!(zero_rate.final_epoch, 0);
    for (c, (a, b)) in zero_rate
        .per_client
        .iter()
        .zip(&plain.per_client)
        .enumerate()
    {
        assert_same_stream(a, b, &format!("0-rate churn client {c}"));
    }
    assert_same_stream(&zero_rate.merged, &plain.merged, "0-rate churn merged");
}

#[test]
fn churn_fleet_completes_with_stale_retry_bytes_in_ledger() {
    // A fleet with updates racing its queries completes, the driver
    // applies its full quota, and the §7 protocol's costs land in the
    // ledgers. Whether a particular run suffers stale refusals depends on
    // scheduling, so retry a few times — with 2 updates per query on
    // three clients, a refusal-free run is vanishingly rare.
    let mut cfg = fleet_cfg(CacheModel::Proactive);
    cfg.n_queries = 120;
    let clients = 3;
    let mut saw_retries = false;
    for attempt in 0..5 {
        let server = sim::build_server(&cfg);
        let out = Fleet::new(cfg)
            .clients(clients)
            .threads(4)
            .churn(ChurnConfig {
                rate_per_100: 200,
                batch: 2,
                seed: 0xC0FFEE + attempt,
            })
            .run(&server);

        // Completion under churn: every session finished its budget and
        // disconnected; the driver drained its full update quota.
        assert_eq!(out.total_queries(), clients as usize * cfg.n_queries);
        assert_eq!(server.tracked_clients(), 0);
        assert_eq!(
            out.updates_applied,
            out.total_queries() as u64 * 2,
            "driver quota is a deterministic function of the query count"
        );
        assert!(out.final_epoch > 0);
        assert_eq!(server.snapshot().epoch(), out.final_epoch);

        // Per-client ledgers merge order-insensitively: the integer byte
        // and count sums are exact in any fold order (the wall-clock f64
        // accumulators may differ in the last ulp, which is why the
        // determinism pins exclude them).
        let ledger = |t: &procache::sim::SummaryTotals| {
            [
                t.uplink_bytes,
                t.downlink_bytes,
                t.result_bytes,
                t.saved_bytes,
                t.cached_result_bytes,
                t.cached_results,
                t.false_misses,
                t.contacts,
                t.stale_retries,
                t.full_refreshes,
                t.invalidation_bytes,
                t.client_expansions,
                t.response_queries,
            ]
        };
        let mut fwd = SimResult::default();
        for r in &out.per_client {
            fwd.merge(r);
        }
        let mut rev = SimResult::default();
        for r in out.per_client.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(fwd.summary.queries, rev.summary.queries);
        assert_eq!(
            ledger(&fwd.summary.totals),
            ledger(&rev.summary.totals),
            "merge order changed the combined ledger"
        );

        let t = &out.merged.summary.totals;
        if t.stale_retries > 0 {
            assert!(
                t.invalidation_bytes > 0,
                "a stale refusal always carries an invalidation list"
            );
            saw_retries = true;
            break;
        }
    }
    assert!(
        saw_retries,
        "no stale refusal in 5 churned runs — the update driver never \
         raced a contact, which should be practically impossible"
    );
}

#[test]
fn fleet_clients_see_distinct_workloads() {
    // Different per-client seeds: the streams must not be clones of each
    // other (byte-identical streams would mean seed derivation is broken).
    let cfg = fleet_cfg(CacheModel::Proactive);
    let server = sim::build_server(&cfg);
    let out = Fleet::new(cfg).clients(2).run(&server);
    let a = &out.per_client[0];
    let b = &out.per_client[1];
    assert_ne!(
        a.records
            .iter()
            .map(|r| (r.uplink_bytes, r.downlink_bytes))
            .collect::<Vec<_>>(),
        b.records
            .iter()
            .map(|r| (r.uplink_bytes, r.downlink_bytes))
            .collect::<Vec<_>>(),
        "two clients replayed identical streams"
    );
}
