//! Fleet concurrency/determinism integration tests: the multi-client
//! refactor must not change what any single client computes.
//!
//! (a) a 1-client `Fleet` reproduces the sequential `run_with_server`
//!     path exactly (deterministic metrics; CPU wall-clock excluded);
//! (b) an N-client concurrent run's per-client results equal the same N
//!     sessions run sequentially;
//! (c) routing the same fleet through the `BatchedService` transport
//!     changes no per-client result — a 1-client batched fleet stays
//!     identical to the sequential runner, and a concurrent batched fleet
//!     matches direct dispatch client by client;
//! (d) completed sessions disconnect (`Forget`), so the server's adaptive
//!     table drains back to empty after every run.

use procache::server::{BatchConfig, BatchedService};
use procache::sim::{self, CacheModel, Fleet, SimConfig, SimResult, Summary};

fn fleet_cfg(model: CacheModel) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.model = model;
    cfg.n_objects = 3_000;
    cfg.n_queries = 200;
    cfg.window = 50;
    cfg.fmr_report_period = 25;
    cfg.verify = false;
    cfg
}

/// The deterministic (non-wall-clock) slice of a summary.
fn deterministic_parts(s: &Summary) -> (usize, [u64; 7], [f64; 6]) {
    (
        s.queries,
        [
            s.totals.uplink_bytes,
            s.totals.downlink_bytes,
            s.totals.result_bytes,
            s.totals.saved_bytes,
            s.totals.cached_results,
            s.totals.false_misses,
            s.totals.contacts,
        ],
        [
            s.avg_uplink_bytes,
            s.avg_downlink_bytes,
            s.avg_response_s,
            s.hit_c,
            s.hit_b,
            s.fmr,
        ],
    )
}

fn assert_same_stream(a: &SimResult, b: &SimResult, who: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{who}: record count");
    for (i, (x, y)) in a.records.iter().zip(&b.records).enumerate() {
        assert_eq!(x.kind, y.kind, "{who}: kind @{i}");
        assert_eq!(x.uplink_bytes, y.uplink_bytes, "{who}: uplink @{i}");
        assert_eq!(x.downlink_bytes, y.downlink_bytes, "{who}: downlink @{i}");
        assert_eq!(x.saved_bytes, y.saved_bytes, "{who}: saved @{i}");
        assert_eq!(x.result_bytes, y.result_bytes, "{who}: result @{i}");
        assert_eq!(x.false_misses, y.false_misses, "{who}: false misses @{i}");
        assert_eq!(x.contacted, y.contacted, "{who}: contacted @{i}");
        assert_eq!(x.avg_response_s, y.avg_response_s, "{who}: response @{i}");
    }
    assert_eq!(
        deterministic_parts(&a.summary),
        deterministic_parts(&b.summary),
        "{who}: summary"
    );
    assert_eq!(a.sim_elapsed_s, b.sim_elapsed_s, "{who}: simulated span");
}

#[test]
fn one_client_fleet_reproduces_the_sequential_runner() {
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let cfg = fleet_cfg(model);
        let mut server = sim::build_server(&cfg);
        let sequential = sim::run_with_server(&cfg, &mut server);

        // Fresh server: the sequential run above fed the adaptive state.
        let server = sim::build_server(&cfg);
        let fleet = Fleet::new(cfg).clients(1).run(&server);
        assert_eq!(fleet.per_client.len(), 1);
        assert_same_stream(
            &sequential,
            &fleet.per_client[0],
            &format!("{model} client"),
        );
        assert_same_stream(&sequential, &fleet.merged, &format!("{model} merged"));
        assert_eq!(
            server.tracked_clients(),
            0,
            "{model}: finished session must have disconnected"
        );
    }
}

#[test]
fn one_client_batched_fleet_reproduces_the_sequential_runner() {
    // The batched remainder service is a pure transport swap: with one
    // client every batch has size one and the stream must stay
    // bit-identical to the sequential runner.
    let cfg = fleet_cfg(CacheModel::Proactive);
    let mut server = sim::build_server(&cfg);
    let sequential = sim::run_with_server(&cfg, &mut server);

    let server = sim::build_server(&cfg);
    let service = BatchedService::over(&server);
    let fleet = Fleet::new(cfg).clients(1).run(&service);
    assert_eq!(fleet.per_client.len(), 1);
    assert_same_stream(&sequential, &fleet.per_client[0], "batched client");
    assert_same_stream(&sequential, &fleet.merged, "batched merged");
    let stats = service.stats();
    assert!(stats.batches > 0, "remainders went through the service");
    assert_eq!(stats.max_batch, 1, "one client cannot coalesce");
    assert_eq!(server.tracked_clients(), 0, "session disconnected");
}

#[test]
fn concurrent_batched_fleet_matches_direct_dispatch() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let server = sim::build_server(&cfg);
    let direct = Fleet::new(cfg).clients(clients).threads(4).run(&server);

    let server = sim::build_server(&cfg);
    let service = BatchedService::new(
        &server,
        BatchConfig {
            shards: 1, // maximize coalescing pressure
            max_batch: 4,
            queue_cap: 16,
        },
    );
    let batched = Fleet::new(cfg).clients(clients).threads(4).run(&service);

    assert_eq!(batched.per_client.len(), clients as usize);
    for (c, (a, b)) in batched
        .per_client
        .iter()
        .zip(&direct.per_client)
        .enumerate()
    {
        assert_same_stream(a, b, &format!("batched client {c}"));
    }
    let stats = service.stats();
    assert_eq!(
        stats.batched_requests,
        direct.merged.records.iter().filter(|r| r.contacted).count() as u64,
        "every contact went through the batched service"
    );
    assert_eq!(server.tracked_clients(), 0, "all sessions disconnected");
}

#[test]
fn concurrent_fleet_matches_sequential_sessions() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let server = sim::build_server(&cfg);
    let concurrent = Fleet::new(cfg).clients(clients).threads(4).run(&server);

    let server = sim::build_server(&cfg);
    let sequential = Fleet::new(cfg).clients(clients).run_sequential(&server);

    assert_eq!(concurrent.per_client.len(), clients as usize);
    for (c, (a, b)) in concurrent
        .per_client
        .iter()
        .zip(&sequential.per_client)
        .enumerate()
    {
        assert_same_stream(a, b, &format!("client {c}"));
    }
    assert_eq!(
        deterministic_parts(&concurrent.merged.summary),
        deterministic_parts(&sequential.merged.summary),
        "merged summaries"
    );
    assert_eq!(
        server.tracked_clients(),
        0,
        "every finished session must have sent Forget"
    );
}

#[test]
fn fleet_clients_see_distinct_workloads() {
    // Different per-client seeds: the streams must not be clones of each
    // other (byte-identical streams would mean seed derivation is broken).
    let cfg = fleet_cfg(CacheModel::Proactive);
    let server = sim::build_server(&cfg);
    let out = Fleet::new(cfg).clients(2).run(&server);
    let a = &out.per_client[0];
    let b = &out.per_client[1];
    assert_ne!(
        a.records
            .iter()
            .map(|r| (r.uplink_bytes, r.downlink_bytes))
            .collect::<Vec<_>>(),
        b.records
            .iter()
            .map(|r| (r.uplink_bytes, r.downlink_bytes))
            .collect::<Vec<_>>(),
        "two clients replayed identical streams"
    );
}
