//! Integration tests for the §4.3 adaptive scheme through the full stack:
//! the d⁺-level must respond to workload-driven fmr changes, and the three
//! proactive variants must relate as Fig. 11 describes.

use procache::server::FormPolicy;
use procache::sim::{self, CacheModel, SimConfig};
use procache::workload::QueryMix;

fn drift_cfg(form: FormPolicy) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.verify = false;
    cfg.n_objects = 3_000;
    cfg.n_queries = 600;
    cfg.model = CacheModel::Proactive;
    cfg.form = form;
    cfg.cache_frac = 0.002;
    cfg.workload.mix = QueryMix::knn_only();
    cfg.drifting_k = Some((8, 1));
    cfg.window = 60;
    cfg.fmr_report_period = 25;
    cfg
}

#[test]
fn adaptive_d_moves_during_a_drift_run() {
    let cfg = drift_cfg(FormPolicy::Adaptive);
    let mut server = sim::build_server(&cfg);
    let initial_d = server.client_d(0);
    let _ = sim::run_with_server(&cfg, &mut server);
    // After 600 queries with reports every 25, the controller has a
    // baseline; d itself may have returned to the initial value, but the
    // run must have moved it at least... we can't observe the trajectory
    // from outside, so assert the controller state exists and is clamped.
    let final_d = server.client_d(0);
    assert!(final_d <= 16);
    // The stronger signal: an adaptive run must not ship more index than
    // the full-form run nor less than compact (checked in fig11 shape
    // test); here we assert the state machinery was engaged at all.
    let _ = initial_d;
}

#[test]
fn full_form_ships_more_index_bytes_than_compact() {
    let full = sim::run(&drift_cfg(FormPolicy::Full));
    let compact = sim::run(&drift_cfg(FormPolicy::Compact));
    let adaptive = sim::run(&drift_cfg(FormPolicy::Adaptive));
    // Downlink ordering: full ≥ adaptive ≥ compact (index share drives it;
    // object bytes are workload-equal only modulo hit differences, so
    // compare the windows' index-to-cache series).
    let ic = |r: &sim::SimResult| {
        r.windows.iter().map(|w| w.index_to_cache).sum::<f64>() / r.windows.len() as f64
    };
    assert!(
        ic(&full) > ic(&compact),
        "full {} vs compact {}",
        ic(&full),
        ic(&compact)
    );
    assert!(
        ic(&adaptive) >= ic(&compact) * 0.9,
        "adaptive {} vs compact {}",
        ic(&adaptive),
        ic(&compact)
    );
    assert!(
        ic(&adaptive) <= ic(&full) * 1.1,
        "adaptive {} vs full {}",
        ic(&adaptive),
        ic(&full)
    );
}

#[test]
fn fmr_ordering_fpro_best_cpro_worst() {
    let full = sim::run(&drift_cfg(FormPolicy::Full));
    let compact = sim::run(&drift_cfg(FormPolicy::Compact));
    let adaptive = sim::run(&drift_cfg(FormPolicy::Adaptive));
    assert!(
        full.summary.fmr <= compact.summary.fmr,
        "FPRO {} vs CPRO {}",
        full.summary.fmr,
        compact.summary.fmr
    );
    assert!(
        adaptive.summary.fmr <= compact.summary.fmr + 1e-9,
        "APRO {} vs CPRO {}",
        adaptive.summary.fmr,
        compact.summary.fmr
    );
    assert!(
        adaptive.summary.fmr >= full.summary.fmr - 1e-9,
        "APRO {} vs FPRO {}",
        adaptive.summary.fmr,
        full.summary.fmr
    );
}

#[test]
fn sensitivity_extremes_still_converge() {
    // s = 0 (react to any change) and s = 10 (react to nothing) are both
    // legal configurations; runs must stay correct and bounded.
    for s in [0.0, 10.0] {
        let mut cfg = drift_cfg(FormPolicy::Adaptive);
        cfg.sensitivity = s;
        cfg.verify = true;
        cfg.n_queries = 150;
        let r = sim::run(&cfg);
        assert_eq!(r.records.len(), 150, "s={s}");
    }
}
