//! Smoke-runs every example via `cargo run --example` so the examples can
//! never silently rot: they are real documentation and must keep working
//! end to end.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} produced no output"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn adaptive_knn_runs() {
    run_example("adaptive_knn");
}

#[test]
fn city_tour_runs() {
    run_example("city_tour");
}

#[test]
fn motel_finder_runs() {
    run_example("motel_finder");
}
