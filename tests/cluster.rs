//! Integration tests for the spatially-sharded cluster: an N-shard
//! [`Cluster`] behind the scatter-gather router must be observationally
//! equivalent to a single [`Server`] built from the same dataset — for
//! direct queries, cold remainder resumes and the §7 versioned protocol,
//! before and after arbitrary update batches — and fleets must drive it
//! through `&dyn ServerHandle` unchanged.
//!
//! "Equivalent" is answer-level, not byte-level: the router gathers
//! per-shard partial replies, so serialization *order* differs from the
//! single server's pop order, but the answer sets (ids, kNN distance
//! multisets, canonical join pairs) are identical and every object is
//! shipped — and wire-charged — exactly once.

use procache::geom::{Point, Rect};
use procache::rtree::proto::{CellRef, HeapEntry, QuerySpec, RemainderQuery, ServerReply, Side};
use procache::rtree::{ObjectId, ObjectStore, RTreeConfig, SpatialObject};
use procache::server::{
    Cluster, ClusterConfig, Server, ServerConfig, ServerHandle, Update, VersionedReply,
};
use procache::sim::{self, generate_update, ChurnConfig, Fleet, SimConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sample_store(n: usize, seed: u64) -> ObjectStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    ObjectStore::new(
        (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                // Small squares (not points) so some MBRs straddle tile
                // boundaries and exercise the dedup path.
                mbr: Rect::centered_square(
                    Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                    rng.random_range(0.0..0.02),
                ),
                size_bytes: rng.random_range(100..2_000),
            })
            .collect(),
    )
}

/// A cold (empty-cache) remainder query rooted at whatever the handle
/// advertises as its bootstrap root — the super-root for a cluster, the
/// R-tree root for a single server.
fn cold_remainder(handle: &dyn ServerHandle, spec: QuerySpec) -> Option<RemainderQuery> {
    let (root, _) = handle.bootstrap_root();
    let (node, mbr) = root?;
    let side = Side::Cell {
        cell: CellRef::node_root(node),
        mbr,
    };
    let entry = if spec.is_join() {
        HeapEntry::Pair(side, side)
    } else {
        HeapEntry::Single(side)
    };
    Some(RemainderQuery {
        spec,
        already_found: 0,
        heap: vec![(spec.key_for(&mbr), entry)],
    })
}

/// All result ids a reply carries (confirmations + shipped payloads),
/// sorted; `dedup` collapses multiplicity for the join case, where the two
/// sides may legitimately list pair members differently.
fn reply_ids(reply: &ServerReply, dedup: bool) -> Vec<ObjectId> {
    let mut ids: Vec<ObjectId> = reply
        .confirmed
        .iter()
        .copied()
        .chain(reply.objects.iter().map(|o| o.id))
        .collect();
    ids.sort_unstable();
    if dedup {
        ids.dedup();
    }
    ids
}

fn canonical_pairs(pairs: &[(ObjectId, ObjectId)]) -> Vec<(ObjectId, ObjectId)> {
    let mut out: Vec<(ObjectId, ObjectId)> = pairs
        .iter()
        .map(|&(a, b)| if a.0 <= b.0 { (a, b) } else { (b, a) })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Sorted bit-patterns of the min-distances from `center` to each id's
/// MBR: kNN answers may pick different ids at ties, but the distance
/// multiset is uniquely determined.
fn distance_bits<I>(store: &ObjectStore, ids: I, center: &Point) -> Vec<u64>
where
    I: IntoIterator<Item = ObjectId>,
{
    let mut out: Vec<u64> = ids
        .into_iter()
        .map(|id| store.get(id).mbr.min_dist(center).to_bits())
        .collect();
    out.sort_unstable();
    out
}

fn any_spec() -> impl Strategy<Value = QuerySpec> {
    // (kind selector, two coordinates, one free parameter) → a query of
    // any of the three shapes.
    (0u8..3, 0.05f64..0.95, 0.05f64..0.95, 0.0f64..1.0).prop_map(|(kind, x, y, t)| match kind {
        0 => QuerySpec::Range {
            window: Rect::centered_square(Point::new(x, y), 0.02 + 0.18 * t),
        },
        1 => QuerySpec::Knn {
            center: Point::new(x, y),
            k: 1 + (t * 15.0) as u32,
        },
        _ => QuerySpec::Join {
            dist: 0.005 + 0.035 * t,
        },
    })
}

/// The router-equivalence property: for any dataset, shard count, query
/// and update history, the cluster and a single server agree on every
/// query path, and the merged reply never ships an object twice.
fn assert_equivalent(single: &Server, cluster: &Cluster, spec: QuerySpec) {
    let snap = single.snapshot();
    let store = snap.store();

    // Direct (uncached) path.
    let sd = single.direct(&spec);
    let cd = cluster.direct(&spec);
    match spec {
        QuerySpec::Range { .. } => {
            let mut want: Vec<ObjectId> = sd.results.iter().map(|&(id, _)| id).collect();
            want.sort_unstable();
            let mut got = cd.results.clone();
            got.sort_unstable();
            assert_eq!(got, want, "direct range diverged");
        }
        QuerySpec::Knn { ref center, .. } => {
            assert_eq!(cd.results.len(), sd.results.len(), "direct knn count");
            let want = distance_bits(store, sd.results.iter().map(|&(id, _)| id), center);
            let got = distance_bits(store, cd.results.iter().copied(), center);
            assert_eq!(got, want, "direct knn distances diverged");
        }
        QuerySpec::Join { .. } => {
            assert_eq!(
                canonical_pairs(&cd.pairs),
                canonical_pairs(&sd.result_pairs),
                "direct join diverged"
            );
        }
    }

    // Cold remainder resume, each side from its own bootstrap root.
    let (Some(srq), Some(crq)) = (cold_remainder(single, spec), cold_remainder(cluster, spec))
    else {
        return;
    };
    let sreply = single.process_remainder(9, &srq);
    let creply = cluster.process_remainder(9, &crq);
    // Wire honesty: the merged reply must never ship (and charge) an
    // object twice, boundary straddlers included.
    let mut shipped: Vec<ObjectId> = creply.objects.iter().map(|o| o.id).collect();
    shipped.sort_unstable();
    let before = shipped.len();
    shipped.dedup();
    assert_eq!(
        shipped.len(),
        before,
        "merged reply shipped an object twice"
    );
    compare_replies(store, &spec, &sreply, &creply, "cold remainder");

    // Versioned protocol at the current epoch: both sides answer Fresh
    // with nothing to invalidate and the same payload.
    let sv = single.process_remainder_versioned(9, &srq, snap.epoch());
    let cv = cluster.process_remainder_versioned(9, &crq, cluster.epoch());
    match (sv, cv) {
        (
            VersionedReply::Fresh { reply: sr, .. },
            VersionedReply::Fresh {
                reply: cr,
                invalidate,
                epoch,
            },
        ) => {
            assert!(invalidate.is_empty(), "nothing changed since current epoch");
            assert_eq!(epoch, cluster.epoch());
            compare_replies(store, &spec, &sr, &cr, "versioned remainder");
        }
        (sv, cv) => panic!("expected Fresh/Fresh at current epoch, got {sv:?} / {cv:?}"),
    }
}

fn compare_replies(
    store: &ObjectStore,
    spec: &QuerySpec,
    single: &ServerReply,
    cluster: &ServerReply,
    what: &str,
) {
    match spec {
        QuerySpec::Range { .. } => {
            assert_eq!(
                reply_ids(cluster, false),
                reply_ids(single, false),
                "{what}: range ids diverged"
            );
        }
        QuerySpec::Knn { ref center, .. } => {
            let want = distance_bits(store, reply_ids(single, false), center);
            let got = distance_bits(store, reply_ids(cluster, false), center);
            assert_eq!(got, want, "{what}: knn distances diverged");
        }
        QuerySpec::Join { .. } => {
            assert_eq!(
                canonical_pairs(&cluster.pairs),
                canonical_pairs(&single.pairs),
                "{what}: join pairs diverged"
            );
            assert_eq!(
                reply_ids(cluster, true),
                reply_ids(single, true),
                "{what}: join result ids diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cluster_matches_single_server(
        seed in 0u64..1 << 32,
        n in 60usize..160,
        shards in 1u32..=8,
        spec in any_spec(),
        batches in prop::collection::vec(1usize..12, 0..=3),
    ) {
        let store = sample_store(n, seed);
        let single = Server::new(store.clone(), RTreeConfig::small(), ServerConfig::default());
        let cluster = Cluster::new(store, RTreeConfig::small(), ClusterConfig::new(shards));

        // Identical update batches on both sides: same stream, same order,
        // so inserts get the same ids and liveness gating agrees.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        for batch_len in batches {
            let n_live = single.core().pin().store().len() as u32;
            let batch: Vec<Update> =
                (0..batch_len).map(|_| generate_update(&mut rng, n_live)).collect();
            single.apply_updates(&batch);
            cluster.apply_updates(&batch);
        }

        assert_equivalent(&single, &cluster, spec);
    }
}

fn cluster_fleet_cfg() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.n_objects = 2_000;
    cfg.n_queries = 100;
    cfg.window = 50;
    cfg.fmr_report_period = 25;
    cfg
}

/// A verifying fleet (every answer cross-checked against the cluster's
/// direct path) runs to completion over a 4-shard cluster through the
/// same `&dyn ServerHandle` surface as a single server.
#[test]
fn verified_fleet_runs_against_a_cluster() {
    let cfg = cluster_fleet_cfg(); // SimConfig::small keeps verify = true
    let cluster = sim::build_cluster(&cfg, 4);
    let res = Fleet::new(cfg).clients(3).run(&cluster);
    assert_eq!(res.total_queries(), 3 * cfg.n_queries);
    // Sessions disconnect on completion; the router forgets them on every
    // shard.
    assert_eq!(cluster.tracked_clients(), 0);
}

/// Churn against the cluster: the update driver splits batches by owning
/// shard and bumps only touched shards' epochs, while versioned sessions
/// ride out stale refusals — per-shard, not global, staleness.
#[test]
fn churned_fleet_publishes_per_shard_epochs() {
    let mut cfg = cluster_fleet_cfg();
    cfg.verify = false; // answers are epoch-exact, not end-state-exact
    let cluster = sim::build_cluster(&cfg, 4);
    let res = Fleet::new(cfg)
        .clients(4)
        .churn(ChurnConfig {
            rate_per_100: 30,
            batch: 4,
            ..Default::default()
        })
        .run(&cluster);
    assert_eq!(res.total_queries(), 4 * cfg.n_queries);
    assert!(res.updates_applied > 0, "churn driver never ran");
    assert_eq!(res.final_epoch, cluster.epoch());
    assert!(res.final_epoch > 0);
    // Each shard publishes at most once per cluster batch, and only when
    // touched — so shard epochs trail the cluster epoch.
    let max_shard_epoch = (0..cluster.shard_count())
        .map(|s| cluster.shard(s).core().epoch())
        .max()
        .unwrap();
    assert!(max_shard_epoch <= res.final_epoch);
    assert!(max_shard_epoch > 0, "no shard ever published");
    assert!(res.log_records > 0, "churn left no invalidation log");
}
