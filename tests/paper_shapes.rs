//! Shape tests: the qualitative results of §6 must emerge from small,
//! fixed-seed simulations. Absolute numbers are environment-specific; the
//! *orderings* are the paper's claims.

use procache::cache::ReplacementPolicy;
use procache::mobility::MobilityModel;
use procache::server::FormPolicy;
use procache::sim::{self, CacheModel, SimConfig};

fn base() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.verify = false; // speed: correctness is covered elsewhere
    cfg.n_objects = 3_000;
    cfg.n_queries = 500;
    cfg
}

#[test]
fn fig6_shape_apro_dominates() {
    let mut pag = base();
    pag.model = CacheModel::Page;
    let mut sem = base();
    sem.model = CacheModel::Semantic;
    let mut apro = base();
    apro.model = CacheModel::Proactive;

    let (pag, sem, apro) = (sim::run(&pag), sim::run(&sem), sim::run(&apro));

    // Hit-rate ladder: APRO > SEM > PAG(=0).
    assert_eq!(pag.summary.hit_c, 0.0);
    assert!(apro.summary.hit_c > sem.summary.hit_c);
    // Response ladder: APRO fastest.
    assert!(apro.summary.avg_response_s < sem.summary.avg_response_s);
    assert!(apro.summary.avg_response_s < pag.summary.avg_response_s);
    // SEM's retransmissions make it the downlink hog.
    assert!(sem.summary.avg_downlink_bytes > apro.summary.avg_downlink_bytes);
}

#[test]
fn fig8_shape_apro_keeps_gaining_with_cache_size() {
    let fracs = [0.002, 0.01, 0.05];
    let mut responses = Vec::new();
    for f in fracs {
        let mut cfg = base();
        cfg.model = CacheModel::Proactive;
        cfg.mobility = MobilityModel::Ran;
        cfg.cache_frac = f;
        responses.push(sim::run(&cfg).summary.avg_response_s);
    }
    assert!(
        responses[2] < responses[0],
        "5% cache must beat 0.2%: {responses:?}"
    );
}

#[test]
fn fig10_shape_mru_is_worst() {
    let mut results = Vec::new();
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Mru,
        ReplacementPolicy::Far,
        ReplacementPolicy::Grd3,
    ] {
        let mut cfg = base();
        cfg.model = CacheModel::Proactive;
        cfg.policy = policy;
        results.push((policy, sim::run(&cfg).summary.hit_c));
    }
    let mru = results[1].1;
    for (policy, hit) in &results {
        if *policy != ReplacementPolicy::Mru {
            assert!(
                *hit > mru,
                "{policy} ({hit}) must beat MRU ({mru}) on hit rate"
            );
        }
    }
}

#[test]
fn fig11_shape_form_orderings() {
    // Drifting-k kNN-only workload on a tight cache: FPRO's fmr lowest,
    // CPRO's highest, APRO between; index share ordered the other way.
    let mut results = Vec::new();
    for form in [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive] {
        let mut cfg = base();
        cfg.model = CacheModel::Proactive;
        cfg.form = form;
        cfg.cache_frac = 0.002;
        cfg.drifting_k = Some((8, 1));
        cfg.n_queries = 600;
        cfg.fmr_report_period = 25;
        cfg.workload.mix = procache::workload::QueryMix::knn_only();
        results.push(sim::run(&cfg));
    }
    let (fpro, cpro, apro) = (&results[0], &results[1], &results[2]);
    assert!(
        fpro.summary.fmr <= cpro.summary.fmr,
        "FPRO fmr {} vs CPRO {}",
        fpro.summary.fmr,
        cpro.summary.fmr
    );
    // APRO sits between FPRO and CPRO modulo adaptation lag — the paper
    // itself notes "the adaptive scheme has a certain degree of delay", so
    // at this small scale allow a 15 % band around CPRO.
    assert!(
        apro.summary.fmr <= cpro.summary.fmr * 1.15 + 1e-9,
        "APRO fmr {} vs CPRO {}",
        apro.summary.fmr,
        cpro.summary.fmr
    );
    // Index share: full form ships the most index.
    let ic = |r: &sim::SimResult| {
        r.windows.iter().map(|w| w.index_to_cache).sum::<f64>() / r.windows.len() as f64
    };
    assert!(
        ic(fpro) > ic(cpro),
        "FPRO i/c {} must exceed CPRO {}",
        ic(fpro),
        ic(cpro)
    );
}

#[test]
fn sem_knn_locality_gives_nonzero_hits() {
    // SEM is not a strawman: with a kNN-heavy local workload its validity
    // circles must produce real local answers.
    let mut cfg = base();
    cfg.model = CacheModel::Semantic;
    cfg.workload.mix = procache::workload::QueryMix::knn_only();
    cfg.n_queries = 400;
    let r = sim::run(&cfg);
    assert!(
        r.summary.hit_c > 0.0,
        "SEM should answer some kNNs locally (hit_c {})",
        r.summary.hit_c
    );
}

#[test]
fn apro_fmr_is_zero_for_pure_range_workloads() {
    // §4.1: "For a range query, only o's location information is needed."
    // With the supporting index always shipped, cached range results can
    // never false-miss.
    let mut cfg = base();
    cfg.model = CacheModel::Proactive;
    cfg.workload.mix = procache::workload::QueryMix {
        range: 1.0,
        knn: 0.0,
        join: 0.0,
    };
    let r = sim::run(&cfg);
    assert_eq!(r.summary.fmr, 0.0);
    assert!(r.summary.hit_c > 0.0);
}
