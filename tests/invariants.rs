//! Cross-crate invariant tests: Theorem 5.5 holds through the *real*
//! pipeline (not just synthetic item trees), and byte metrics are exactly
//! reproducible run-to-run.

use procache::cache::ReplacementPolicy;
use procache::sim::{self, CacheModel, SimConfig};

fn base() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.n_objects = 2_500;
    cfg.n_queries = 350;
    cfg.verify = false;
    cfg
}

#[test]
fn grd2_and_grd3_agree_in_aggregate() {
    // Theorem 5.5 proves GRD2 ≡ GRD3 under Lemma 5.3 (prob(ancestor) ≥
    // prob(descendant)) — true for *actual* access probabilities, and
    // enforced exactly in the cache crate's property tests. The practical
    // estimator `hits/(T − t_insert)` (§5.2) breaks the lemma when a fresh
    // object lands under an old node item (fresh prob = 1 > aged parent),
    // letting GRD2 occasionally evict an interior subtree where GRD3 takes
    // a leaf. So per-query equality does NOT survive the real pipeline —
    // what must survive is near-identical aggregate quality.
    let mut g2 = base();
    g2.model = CacheModel::Proactive;
    g2.policy = ReplacementPolicy::Grd2;
    let mut g3 = g2;
    g3.policy = ReplacementPolicy::Grd3;

    let r2 = sim::run(&g2);
    let r3 = sim::run(&g3);
    assert!(
        (r2.summary.hit_c - r3.summary.hit_c).abs() < 0.05,
        "hit_c drifted: GRD2 {} vs GRD3 {}",
        r2.summary.hit_c,
        r3.summary.hit_c
    );
    let (a, b) = (r2.summary.avg_response_s, r3.summary.avg_response_s);
    assert!(
        (a - b).abs() <= 0.25 * a.max(b),
        "response drifted: GRD2 {a} vs GRD3 {b}"
    );
}

#[test]
fn byte_metrics_are_bitwise_reproducible() {
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let mut cfg = base();
        cfg.model = model;
        let a = sim::run(&cfg);
        let b = sim::run(&cfg);
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.uplink_bytes, y.uplink_bytes);
            assert_eq!(x.downlink_bytes, y.downlink_bytes);
            assert_eq!(x.saved_bytes, y.saved_bytes);
            assert_eq!(x.cached_result_bytes, y.cached_result_bytes);
            assert!((x.avg_response_s - y.avg_response_s).abs() < 1e-15);
        }
    }
}

#[test]
fn different_seeds_change_the_workload() {
    let mut a_cfg = base();
    a_cfg.model = CacheModel::Proactive;
    let mut b_cfg = a_cfg;
    b_cfg.seed ^= 0xdead;
    let a = sim::run(&a_cfg);
    let b = sim::run(&b_cfg);
    let a_bytes: u64 = a.records.iter().map(|r| r.downlink_bytes).sum();
    let b_bytes: u64 = b.records.iter().map(|r| r.downlink_bytes).sum();
    assert_ne!(a_bytes, b_bytes, "seeds must matter");
}

#[test]
fn capacity_is_never_exceeded_across_models() {
    // The three caches enforce |C| at all times; spot-check through the
    // public stats after full runs at several sizes.
    for frac in [0.001, 0.01, 0.05] {
        let mut cfg = base();
        cfg.model = CacheModel::Proactive;
        cfg.cache_frac = frac;
        let server = sim::build_server(&cfg);
        let cap = cfg.cache_bytes(server.snapshot().store().total_bytes());
        let r = sim::run(&cfg);
        // The window series carries the cache occupancy indirectly (i/c is
        // index/capacity); a direct assertion lives in the cache crate.
        // Here we assert the run completed with plausible hit rates.
        assert!(r.summary.hit_b <= 1.0 + 1e-9, "frac {frac} cap {cap}");
        assert!(r.summary.hit_c <= r.summary.hit_b + 1e-9);
    }
}

#[test]
fn hit_c_never_exceeds_hit_b() {
    // Rs ⊆ R∩C byte-wise, for every model.
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let mut cfg = base();
        cfg.model = model;
        let r = sim::run(&cfg);
        assert!(
            r.summary.hit_c <= r.summary.hit_b + 1e-9,
            "{model}: hit_c {} > hit_b {}",
            r.summary.hit_c,
            r.summary.hit_b
        );
    }
}
