//! Edge cases and failure injection across the stack: degenerate caches,
//! empty datasets, out-of-space queries, k beyond the dataset, and
//! pathological capacities must all degrade gracefully, never corrupt
//! state, and never produce wrong answers.

use procache::baselines::{PageCache, SemanticCache};
use procache::cache::{Catalog, ReplacementPolicy};
use procache::client::Client;
use procache::geom::{Point, Rect};
use procache::rtree::proto::QuerySpec;
use procache::rtree::{ObjectStore, RTreeConfig};
use procache::server::{Server, ServerConfig};
use procache::workload::datasets;

fn server_with(n: usize) -> Server {
    Server::new(
        datasets::ne_like(n, 9),
        RTreeConfig::small(),
        ServerConfig::default(),
    )
}

fn run_pipeline(client: &mut Client, server: &Server, spec: &QuerySpec) -> usize {
    client.begin_query();
    let local = client.run_local(spec);
    let reply = local
        .remainder
        .as_ref()
        .map(|rq| server.process_remainder(0, rq));
    if let Some(r) = &reply {
        client.absorb(r, Point::new(0.5, 0.5));
    }
    client.cache().validate().unwrap();
    client.assemble(&local, reply.as_ref()).objects.len()
}

#[test]
fn empty_dataset_serves_empty_answers() {
    let server = Server::new(
        ObjectStore::new(vec![]),
        RTreeConfig::small(),
        ServerConfig::default(),
    );
    let mut client = Client::new(
        10_000,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    for spec in [
        QuerySpec::Range { window: Rect::UNIT },
        QuerySpec::Knn {
            center: Point::new(0.5, 0.5),
            k: 3,
        },
        QuerySpec::Join { dist: 0.1 },
    ] {
        assert_eq!(run_pipeline(&mut client, &server, &spec), 0);
    }
}

#[test]
fn k_zero_and_k_beyond_dataset() {
    let server = server_with(30);
    let mut client = Client::new(
        1 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    let center = Point::new(0.5, 0.5);
    assert_eq!(
        run_pipeline(&mut client, &server, &QuerySpec::Knn { center, k: 0 }),
        0
    );
    assert_eq!(
        run_pipeline(&mut client, &server, &QuerySpec::Knn { center, k: 500 }),
        30,
        "k beyond the dataset returns everything"
    );
}

#[test]
fn window_outside_the_data_space() {
    let server = server_with(100);
    let mut client = Client::new(
        1 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    let spec = QuerySpec::Range {
        window: Rect::from_coords(2.0, 2.0, 3.0, 3.0),
    };
    assert_eq!(run_pipeline(&mut client, &server, &spec), 0);
    // Nothing qualifies at the root: no remainder is even needed.
    client.begin_query();
    let local = client.run_local(&spec);
    assert!(local.complete(), "non-qualifying root needs no server");
}

#[test]
fn tiny_cache_still_answers_correctly() {
    // A cache too small for even one object: every query effectively
    // uncached, but answers stay correct and the cache stays valid.
    let server = server_with(200);
    let mut client = Client::new(
        64, // bytes!
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    for i in 0..10 {
        let spec = QuerySpec::Knn {
            center: Point::new(0.3 + i as f64 * 0.02, 0.4),
            k: 2,
        };
        assert_eq!(run_pipeline(&mut client, &server, &spec), 2);
        assert!(client.cache().used_bytes() <= 64);
    }
}

#[test]
fn zero_capacity_baselines_never_cache() {
    let server = server_with(150);
    let mut pag = PageCache::new(0);
    let mut sem = SemanticCache::new(0);
    let pos = Point::new(0.4, 0.4);
    for _ in 0..5 {
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.2),
        };
        let a = pag.query(&server, 0, &spec, 0.0);
        let b = sem.query(&server, 0, &spec, pos, 0.0);
        assert_eq!(a.objects.len(), b.objects.len());
        assert_eq!(pag.used_bytes(), 0);
        assert_eq!(sem.used_bytes(), 0);
        sem.validate().unwrap();
    }
}

#[test]
fn repeated_identical_queries_converge_to_fully_local() {
    let server = server_with(400);
    let mut client = Client::new(
        1 << 22,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    let spec = QuerySpec::Range {
        window: Rect::centered_square(Point::new(0.31, 0.36), 0.2),
    };
    run_pipeline(&mut client, &server, &spec);
    for _ in 0..5 {
        client.begin_query();
        let local = client.run_local(&spec);
        assert!(local.complete(), "steady state must be fully local");
    }
}

#[test]
fn degenerate_all_coincident_objects() {
    // Every object at the same point: splits and BPTs face zero-area
    // everything; queries must still be exact.
    let objects: Vec<procache::rtree::SpatialObject> = (0..50)
        .map(|i| procache::rtree::SpatialObject {
            id: procache::rtree::ObjectId(i),
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 100,
        })
        .collect();
    let server = Server::new(
        ObjectStore::new(objects),
        RTreeConfig::small(),
        ServerConfig::default(),
    );
    let mut client = Client::new(
        1 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    assert_eq!(
        run_pipeline(
            &mut client,
            &server,
            &QuerySpec::Knn {
                center: Point::new(0.1, 0.1),
                k: 7
            }
        ),
        7
    );
    assert_eq!(
        run_pipeline(
            &mut client,
            &server,
            &QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.5, 0.5), 0.01)
            }
        ),
        50
    );
    // Self-join at distance 0: all pairs coincide.
    client.begin_query();
    let local = client.run_local(&QuerySpec::Join { dist: 0.0 });
    let reply = local
        .remainder
        .as_ref()
        .map(|rq| server.process_remainder(0, rq));
    let a = client.assemble(&local, reply.as_ref());
    assert_eq!(a.pairs.len(), 50 * 49 / 2);
}

#[test]
fn single_object_dataset() {
    let objects = vec![procache::rtree::SpatialObject {
        id: procache::rtree::ObjectId(0),
        mbr: Rect::from_point(Point::new(0.7, 0.2)),
        size_bytes: 5000,
    }];
    let server = Server::new(
        ObjectStore::new(objects),
        RTreeConfig::small(),
        ServerConfig::default(),
    );
    let mut client = Client::new(
        1 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    assert_eq!(
        run_pipeline(
            &mut client,
            &server,
            &QuerySpec::Knn {
                center: Point::ORIGIN,
                k: 3
            }
        ),
        1
    );
    assert_eq!(
        run_pipeline(&mut client, &server, &QuerySpec::Join { dist: 1.0 }),
        0,
        "self-join of a single object has no pairs"
    );
}
