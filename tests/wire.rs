//! Wire-transport equivalence integration tests: putting real TCP frames
//! between the fleet and the server must change *nothing* a client
//! computes — the codec and socket layer are a pure transport swap.
//!
//! (a) an N-client concurrent fleet over TCP loopback is bit-identical,
//!     client by client, to the same fleet over the in-process
//!     `Transport` on the same seeds;
//! (b) the same holds when the socket fronts the flat-combining
//!     `BatchedService` as the server loop's batching policy;
//! (c) across the whole fleet run, measured frame bytes reconcile with
//!     the `wire_bytes()` model: `measured == modeled + itemized framing
//!     overhead` in both directions, and the server served exactly the
//!     frames the clients counted;
//! (d) a churned fleet speaking the §7 versioned protocol over the wire
//!     completes its full budget, drains the adaptive table, and still
//!     reconciles byte-for-byte.

use std::sync::Arc;

use procache::server::{
    BatchConfig, Server, ServerHandle, TcpTransport, WireServer, WireServerConfig,
};
use procache::sim::{self, CacheModel, ChurnConfig, Fleet, SimConfig, SimResult, Summary};

fn fleet_cfg(model: CacheModel) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.model = model;
    cfg.n_objects = 3_000;
    cfg.n_queries = 200;
    cfg.window = 50;
    cfg.fmr_report_period = 25;
    cfg.verify = false;
    cfg
}

/// The deterministic (non-wall-clock) slice of a summary.
fn deterministic_parts(s: &Summary) -> (usize, [u64; 9], [f64; 6]) {
    (
        s.queries,
        [
            s.totals.uplink_bytes,
            s.totals.downlink_bytes,
            s.totals.result_bytes,
            s.totals.saved_bytes,
            s.totals.cached_results,
            s.totals.false_misses,
            s.totals.contacts,
            s.totals.stale_retries,
            s.totals.invalidation_bytes,
        ],
        [
            s.avg_uplink_bytes,
            s.avg_downlink_bytes,
            s.avg_response_s,
            s.hit_c,
            s.hit_b,
            s.fmr,
        ],
    )
}

fn assert_same_stream(a: &SimResult, b: &SimResult, who: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{who}: record count");
    for (i, (x, y)) in a.records.iter().zip(&b.records).enumerate() {
        assert_eq!(x.kind, y.kind, "{who}: kind @{i}");
        assert_eq!(x.uplink_bytes, y.uplink_bytes, "{who}: uplink @{i}");
        assert_eq!(x.downlink_bytes, y.downlink_bytes, "{who}: downlink @{i}");
        assert_eq!(x.saved_bytes, y.saved_bytes, "{who}: saved @{i}");
        assert_eq!(x.result_bytes, y.result_bytes, "{who}: result @{i}");
        assert_eq!(x.false_misses, y.false_misses, "{who}: false misses @{i}");
        assert_eq!(x.contacted, y.contacted, "{who}: contacted @{i}");
        assert_eq!(x.avg_response_s, y.avg_response_s, "{who}: response @{i}");
    }
    assert_eq!(
        deterministic_parts(&a.summary),
        deterministic_parts(&b.summary),
        "{who}: summary"
    );
    assert_eq!(a.sim_elapsed_s, b.sim_elapsed_s, "{who}: simulated span");
}

/// Runs `clients` sessions over a fresh wire server + transport and
/// returns the fleet result plus both sides' counters (after a full
/// drain, so the server numbers are final).
fn run_over_wire(
    cfg: SimConfig,
    clients: u32,
    batch: Option<BatchConfig>,
    churn: Option<ChurnConfig>,
) -> (
    procache::sim::FleetResult,
    procache::server::WireTransportStats,
    procache::server::WireServerStats,
    Arc<Server>,
) {
    let server = Arc::new(sim::build_server(&cfg));
    let mut ws = match batch {
        Some(b) => {
            let (ws, _service) =
                WireServer::spawn_batched(Arc::clone(&server), b, WireServerConfig::default())
                    .expect("bind wire server");
            ws
        }
        None => {
            let handle: Arc<dyn ServerHandle> = Arc::clone(&server) as Arc<dyn ServerHandle>;
            WireServer::spawn(handle, WireServerConfig::default()).expect("bind wire server")
        }
    };
    let transport = TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
    let mut fleet = Fleet::new(cfg).clients(clients).threads(4);
    if let Some(c) = churn {
        fleet = fleet.churn(c);
    }
    let out = fleet.run(&transport);
    let tstats = transport.stats();
    drop(transport);
    ws.shutdown();
    let sstats = ws.stats();
    (out, tstats, sstats, server)
}

/// Dual-sided stats reconciliation: with the transport disconnected and
/// the server drained (both stat snapshots taken after every thread
/// joined), the two ends of the single socket must agree byte-for-byte
/// and frame-for-frame in both directions. Any counter drift — a path
/// that counts on one side but not the other, or a counter read with
/// torn batching — shows up here as an exact-inequality failure.
fn assert_stats_reconcile(
    tstats: &procache::server::WireTransportStats,
    sstats: &procache::server::WireServerStats,
) {
    assert!(
        tstats.reconciles(),
        "client measured != modeled + overhead: {tstats:?}"
    );
    assert_eq!(
        tstats.tx_bytes, sstats.rx_frame_bytes,
        "every byte the clients sent was read by the server"
    );
    assert_eq!(
        tstats.rx_bytes, sstats.tx_frame_bytes,
        "every byte the server wrote was read by the clients"
    );
    assert_eq!(
        sstats.requests_served, tstats.tx_frames,
        "server answered exactly the frames the clients sent"
    );
    assert_eq!(
        sstats.requests_served, tstats.rx_frames,
        "every answer came back to a client"
    );
    assert_eq!(sstats.frames_rejected, 0);
    assert_eq!(sstats.requests_aborted, 0);
}

#[test]
fn wire_fleet_is_bit_identical_to_in_process_fleet() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let in_proc_server = sim::build_server(&cfg);
    let in_proc = Fleet::new(cfg)
        .clients(clients)
        .threads(4)
        .run(&in_proc_server);

    let (wired, tstats, sstats, server) = run_over_wire(cfg, clients, None, None);

    assert_eq!(wired.per_client.len(), clients as usize);
    for (c, (a, b)) in wired.per_client.iter().zip(&in_proc.per_client).enumerate() {
        assert_same_stream(a, b, &format!("wire client {c}"));
    }
    assert_eq!(
        deterministic_parts(&wired.merged.summary),
        deterministic_parts(&in_proc.merged.summary),
        "merged summaries"
    );

    // (c) whole-fleet measured-bytes cross-check, both sides of the wire.
    assert!(tstats.tx_frames > 0, "requests crossed the socket");
    assert_stats_reconcile(&tstats, &sstats);
    assert_eq!(server.tracked_clients(), 0, "Forget crossed the wire too");
}

#[test]
fn batched_wire_fleet_is_bit_identical_to_in_process_fleet() {
    let cfg = fleet_cfg(CacheModel::Proactive);
    let clients = 3;

    let in_proc_server = sim::build_server(&cfg);
    let in_proc = Fleet::new(cfg)
        .clients(clients)
        .threads(4)
        .run(&in_proc_server);

    let batch = BatchConfig {
        shards: 1, // maximize coalescing pressure behind the socket
        max_batch: 4,
        queue_cap: 16,
    };
    let (wired, tstats, sstats, server) = run_over_wire(cfg, clients, Some(batch), None);

    assert_eq!(wired.per_client.len(), clients as usize);
    for (c, (a, b)) in wired.per_client.iter().zip(&in_proc.per_client).enumerate() {
        assert_same_stream(a, b, &format!("batched wire client {c}"));
    }
    assert_stats_reconcile(&tstats, &sstats);
    assert_eq!(server.tracked_clients(), 0);
}

#[test]
fn churned_wire_fleet_completes_and_reconciles() {
    let mut cfg = fleet_cfg(CacheModel::Proactive);
    cfg.n_queries = 120;
    let clients = 3;
    let churn = ChurnConfig {
        rate_per_100: 200,
        batch: 2,
        seed: 0xC0FFEE,
    };
    let (out, tstats, sstats, server) = run_over_wire(cfg, clients, None, Some(churn));

    assert_eq!(out.total_queries(), clients as usize * cfg.n_queries);
    assert_eq!(
        out.updates_applied,
        out.total_queries() as u64 * 2,
        "driver quota is a deterministic function of the query count"
    );
    assert!(out.final_epoch > 0);
    assert_eq!(server.tracked_clients(), 0);

    // Versioned envelopes (Stale refusals, epoch vectors, full refreshes)
    // travel the same frames and must reconcile just as exactly.
    assert_stats_reconcile(&tstats, &sstats);
}
