//! Integration tests for the §7 extension: server updates + epoch-stamped
//! cache invalidation. The contract: any answer produced *at a server
//! contact* reflects the current dataset exactly; local-only answers may be
//! stale between contacts (documented bounded staleness).

use procache::cache::{Catalog, ReplacementPolicy};
use procache::geom::{Point, Rect};
use procache::rtree::naive;
use procache::rtree::proto::QuerySpec;
use procache::rtree::{ObjectId, RTreeConfig};
use procache::server::{Server, ServerConfig, Update};
use procache::sim::UpdatingClient;
use procache::workload::datasets;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize, seed: u64) -> (Server, UpdatingClient) {
    let store = datasets::ne_like(n, seed);
    let server = Server::new(store, RTreeConfig::small(), ServerConfig::default());
    let client = UpdatingClient::new(
        1 << 22,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    (server, client)
}

#[test]
fn contact_answers_track_updates_exactly() {
    let (server, mut client) = setup(800, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut next_update = 0usize;
    for round in 0..80 {
        // Every few queries the server mutates: move, delete or insert.
        if round % 4 == 3 {
            let update = match next_update % 3 {
                0 => Update::Move {
                    id: ObjectId(rng.random_range(0..700)),
                    to: Rect::from_point(Point::new(
                        rng.random_range(0.0..1.0),
                        rng.random_range(0.0..1.0),
                    )),
                },
                1 => Update::Delete(ObjectId(rng.random_range(0..700))),
                _ => Update::Insert {
                    mbr: Rect::from_point(Point::new(
                        rng.random_range(0.0..1.0),
                        rng.random_range(0.0..1.0),
                    )),
                    size_bytes: 500,
                },
            };
            next_update += 1;
            server.apply_updates(&[update]);
        }
        let pos = Point::new(rng.random_range(0.1..0.9), rng.random_range(0.1..0.9));
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, rng.random_range(0.05..0.2)),
        };
        let out = client.query(&server, &spec, pos, 0.0);
        client.client().cache().validate().unwrap();
        // Queries that contacted the server must match the *current* truth.
        if out.ledger.contacted_server {
            let QuerySpec::Range { window } = &spec else {
                unreachable!()
            };
            let mut got = out.answer.objects.clone();
            got.sort_unstable();
            got.dedup();
            // Tombstoned objects stay in the store (dense ids) but the
            // naive oracle skips them via the liveness bitset.
            let want = naive::range_naive(server.snapshot().store(), window);
            assert_eq!(got, want, "round {round}");
        }
    }
}

#[test]
fn stale_resume_costs_one_extra_round_trip() {
    let (server, mut client) = setup(600, 3);
    let pos = Point::new(0.31, 0.36);
    let spec = QuerySpec::Range {
        window: Rect::centered_square(pos, 0.25),
    };
    // Warm up.
    let first = client.query(&server, &spec, pos, 0.0);
    assert_eq!(first.round_trips, 1);

    // Update a node the warm cache definitely holds (delete an object in
    // the warmed window), then query a *wider* window so the client's
    // remainder references cached-but-stale structure.
    let victim = naive::range_naive(server.snapshot().store(), &Rect::centered_square(pos, 0.2))[0];
    server.apply_updates(&[Update::Delete(victim)]);

    let wider = QuerySpec::Range {
        window: Rect::centered_square(pos, 0.5),
    };
    let out = client.query(&server, &wider, pos, 0.0);
    assert!(
        out.round_trips <= 2,
        "stale retry must converge immediately"
    );
    assert!(out.invalidated_items > 0, "stale items must be dropped");
    // Final answer is correct w.r.t. current state.
    let mut got = out.answer.objects.clone();
    got.sort_unstable();
    let QuerySpec::Range { window } = wider else {
        unreachable!()
    };
    let mut want = naive::range_naive(server.snapshot().store(), &window);
    want.retain(|id| *id != victim);
    assert_eq!(got, want);
    assert!(
        !out.answer.objects.contains(&victim),
        "deleted object served"
    );
}

#[test]
fn up_to_date_client_pays_no_invalidation_overhead() {
    let (server, mut client) = setup(500, 4);
    let pos = Point::new(0.5, 0.5);
    for i in 0..10 {
        let spec = QuerySpec::Knn {
            center: Point::new(0.5 + i as f64 * 0.01, 0.5),
            k: 3,
        };
        let out = client.query(&server, &spec, pos, 0.0);
        assert_eq!(out.invalidated_items, 0);
        assert!(out.round_trips <= 1);
    }
}

#[test]
fn repeated_update_query_cycles_stay_consistent() {
    // Tight loop of update → query on the same area: every contact answer
    // must track the moving object.
    let (server, mut client) = setup(400, 5);
    let id = ObjectId(0);
    for step in 0..15 {
        let x = 0.1 + step as f64 * 0.05;
        server.apply_updates(&[Update::Move {
            id,
            to: Rect::from_point(Point::new(x, 0.5)),
        }]);
        let spec = QuerySpec::Knn {
            center: Point::new(x, 0.5),
            k: 1,
        };
        let out = client.query(&server, &spec, Point::new(x, 0.5), 0.0);
        assert_eq!(
            out.answer.objects.first(),
            Some(&id),
            "step {step}: the moved object must be its own nearest neighbor"
        );
        client.client().cache().validate().unwrap();
    }
}
