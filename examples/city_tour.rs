//! A day of spatial queries on the move: a mobile client tours the city
//! under the directed-movement model, issuing a mixed range/kNN/join
//! workload against each caching model in turn. Prints the §6.2-style
//! comparison table.
//!
//! ```sh
//! cargo run --release --example city_tour
//! ```

use procache::sim::{self, CacheModel, SimConfig};

fn main() {
    let mut base = SimConfig::paper();
    // A brisk, laptop-friendly tour; crank these up towards the paper's
    // 123,593 objects / 10,000 queries if you have a few minutes.
    base.n_objects = 15_000;
    base.n_queries = 1_200;
    base.verify = false;
    base.tree_cfg = procache::rtree::RTreeConfig::paper();
    // Keep absolute result sizes paper-like at the reduced density.
    base.workload.area_wnd = 1e-6 * 123_593.0 / base.n_objects as f64;
    base.workload.dist_join = 5e-5 * 123_593.0 / base.n_objects as f64;

    println!(
        "touring {} objects with {} queries per model (DIR, |C| = {}%)\n",
        base.n_objects,
        base.n_queries,
        base.cache_frac * 100.0
    );

    println!(
        "{:>6}  {:>10} {:>10} {:>7} {:>7} {:>9} {:>9}",
        "model", "uplink", "downlink", "hit_c", "hit_b", "resp", "cpu"
    );
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let mut cfg = base;
        cfg.model = model;
        let r = sim::run(&cfg);
        let s = r.summary;
        println!(
            "{:>6}  {:>9.0}B {:>9.0}B {:>6.1}% {:>6.1}% {:>8.3}s {:>7.2}ms",
            cfg.model_label(),
            s.avg_uplink_bytes,
            s.avg_downlink_bytes,
            s.hit_c * 100.0,
            s.hit_b * 100.0,
            s.avg_response_s,
            s.avg_client_cpu_ms,
        );
    }

    println!("\nthe proactive row should show the highest hit rate and the");
    println!("lowest response time — the Figure 6 result in miniature.");
}
