//! The paper's motivating scenario (Examples 1.1–1.3): Joey drives along
//! the highway looking for a motel. He first issues a range query around
//! his position, then — unsatisfied — a 3-nearest-neighbor query.
//!
//! Semantic caching cannot trim a kNN query against a cached *range*
//! result, so it retransmits motels Joey already has. Proactive caching
//! cached the supporting R-tree index along with the motels, so the kNN is
//! answered mostly (or fully) from the cache. This example runs both
//! models side by side on the same queries.
//!
//! ```sh
//! cargo run --example motel_finder
//! ```

use procache::baselines::SemanticCache;
use procache::cache::{Catalog, ReplacementPolicy};
use procache::client::Client;
use procache::geom::{Point, Rect};
use procache::rtree::proto::QuerySpec;
use procache::rtree::RTreeConfig;
use procache::server::{Server, ServerConfig};
use procache::workload::datasets;

fn main() {
    // Motels along the road network.
    let store = datasets::rd_like(30_000, 7);
    let server = Server::new(store, RTreeConfig::paper(), ServerConfig::default());
    let joey = Point::new(0.42, 0.58);

    // --- Proactive caching client -------------------------------------
    let mut pro = Client::new(
        2 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    // --- Semantic caching client --------------------------------------
    let mut sem = SemanticCache::new(2 << 20);

    // Q0: "motels in the neighborhood" — a range query.
    let q0 = QuerySpec::Range {
        window: Rect::centered_square(joey, 0.03),
    };

    pro.begin_query();
    let local = pro.run_local(&q0);
    let reply = local
        .remainder
        .as_ref()
        .map(|rq| server.process_remainder(0, rq));
    if let Some(r) = &reply {
        pro.absorb(r, joey);
    }
    let pro_q0 = pro.assemble(&local, reply.as_ref());

    let sem_q0 = sem.query(&server, 0, &q0, joey, 0.0);
    println!(
        "Q0 (range): {} motels found — both models pay the cold miss",
        pro_q0.objects.len()
    );
    assert_eq!(pro_q0.objects.len(), sem_q0.objects.len());

    // Q2: none of them looked good — "3 nearest motels" (Example 1.2).
    let q2 = QuerySpec::Knn { center: joey, k: 3 };

    pro.begin_query();
    let pro_local = pro.run_local(&q2);
    let pro_transmitted = match &pro_local.remainder {
        Some(rq) => {
            let reply = server.process_remainder(0, rq);
            let n = reply.objects.len();
            pro.absorb(&reply, joey);
            n
        }
        None => 0,
    };

    let sem_q2 = sem.query(&server, 0, &q2, joey, 0.0);
    let sem_transmitted = sem_q2.ledger.transmitted.len();

    println!("\nQ2 (3NN) — the cross-query-type moment:");
    println!(
        "  proactive: {} neighbors from cache, {} transmitted",
        pro_local.saved.len(),
        pro_transmitted
    );
    println!(
        "  semantic:  {} neighbors from cache, {} transmitted",
        sem_q2.locally_served.len(),
        sem_transmitted
    );
    println!(
        "\nsemantic caching retransmitted {} motel(s) Joey already had — the \
         paper's Example 1.2 penalty;",
        sem_q2.cached_results.len() - sem_q2.locally_served.len()
    );
    println!("proactive caching reused them via the cached R-tree index (Example 1.3).");

    assert!(
        pro_local.saved.len() >= sem_q2.locally_served.len(),
        "proactive must reuse at least as much as semantic"
    );
}
