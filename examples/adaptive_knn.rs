//! The adaptive scheme in action (§4.3 / Fig. 11): a kNN-only workload
//! whose average k drifts 10 → 1 → 10. Small k needs *precise* index
//! information around each object (low-k queries are hard to confirm),
//! so the false-miss rate climbs exactly when k falls.
//!
//! Watch the three proactive variants respond: FPRO (full forms) buys a
//! low fmr with half the cache spent on index; CPRO (minimal compact
//! forms) pays a k-shaped fmr; APRO grows its d⁺-level only while the
//! workload needs it.
//!
//! ```sh
//! cargo run --release --example adaptive_knn
//! ```

use procache::server::FormPolicy;
use procache::sim::{self, SimConfig};
use procache::workload::QueryMix;

fn main() {
    let mut base = SimConfig::paper();
    base.n_objects = 15_000;
    base.n_queries = 1_500;
    base.cache_frac = 0.001; // the paper's deliberately tight 0.1 %
    base.mobility = procache::mobility::MobilityModel::Ran;
    base.workload.mix = QueryMix::knn_only();
    base.drifting_k = Some((10, 1));
    base.window = 150;
    base.verify = false;

    println!("kNN-only workload, average k drifting 10 -> 1 -> 10, |C| = 0.1%\n");

    let forms = [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive];
    let results: Vec<_> = forms
        .iter()
        .map(|f| {
            let mut cfg = base;
            cfg.form = *f;
            sim::run(&cfg)
        })
        .collect();

    println!(
        "{:>7} | {:>22} | {:>22} | {:>22}",
        "queries", "FPRO  fmr   i/c  resp", "CPRO  fmr   i/c  resp", "APRO  fmr   i/c  resp"
    );
    let points = results[0].windows.len();
    for i in 0..points {
        let cell = |r: &sim::SimResult| {
            let w = &r.windows[i];
            format!(
                "{:>9.3} {:>5.2} {:>5.2}s",
                w.fmr, w.index_to_cache, w.avg_response_s
            )
        };
        println!(
            "{:>7} | {} | {} | {}",
            results[0].windows[i].query_end,
            cell(&results[0]),
            cell(&results[1]),
            cell(&results[2]),
        );
    }

    println!("\nrun summary:");
    for (f, r) in forms.iter().zip(&results) {
        println!(
            "  {:<5} fmr {:.3}  response {:.3}s",
            f.name(),
            r.summary.fmr,
            r.summary.avg_response_s
        );
    }
    println!("\nexpected shape (paper Fig. 11): CPRO's fmr mirrors the k drift,");
    println!("FPRO's index share is the largest, APRO tracks the best response.");
}
