//! Quickstart: build a spatial dataset, stand up the server, and run
//! queries through a proactive-caching client.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use procache::cache::{Catalog, ReplacementPolicy};
use procache::client::Client;
use procache::geom::{Point, Rect};
use procache::net::{Channel, Ledger};
use procache::rtree::proto::QuerySpec;
use procache::rtree::RTreeConfig;
use procache::server::{Server, ServerConfig};
use procache::workload::datasets;

fn main() {
    // 1. A dataset: 20,000 clustered points with Zipf-sized payloads
    //    (a scaled-down stand-in for the paper's NE postal zones).
    let store = datasets::ne_like(20_000, 42);
    println!(
        "dataset: {} objects, {:.1} MB of payload",
        store.len(),
        store.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. The server bulk-loads an R*-tree and builds the per-node binary
    //    partition trees offline (§4.2).
    let server = Server::new(store, RTreeConfig::paper(), ServerConfig::default());
    println!(
        "index: {} nodes, height {}, BPT overhead {:.2}x",
        server.snapshot().tree().stats().node_count,
        server.snapshot().tree().height(),
        server.bpt_bytes() as f64 / server.snapshot().tree().stats().index_bytes as f64
    );

    // 3. A mobile client with a 1 MB proactive cache under GRD3.
    let mut client = Client::new(
        1 << 20,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    );
    let here = Point::new(0.31, 0.36); // downtown in the first cluster
    let channel = Channel::paper();

    // 4. Issue the same range query twice: the first run misses cold and
    //    pays the wireless round trip; the second answers mostly from
    //    cache and only fetches the few objects replacement evicted.
    let window = Rect::centered_square(here, 0.05);
    let spec = QuerySpec::Range { window };
    for round in 1..=2 {
        client.begin_query();
        let local = client.run_local(&spec);
        let mut ledger = Ledger {
            saved_bytes: local
                .saved
                .iter()
                .map(|&id| server.snapshot().store().get(id).size_bytes as u64)
                .sum(),
            ..Default::default()
        };
        let reply = local.remainder.as_ref().map(|rq| {
            ledger.contacted_server = true;
            ledger.uplink_bytes = rq.uplink_bytes();
            let reply = server.process_remainder(0, rq);
            ledger.transmitted = reply.objects.iter().map(|o| o.size_bytes).collect();
            ledger.extra_downlink_bytes = reply.index_bytes();
            client.absorb(&reply, here);
            reply
        });
        let answer = client.assemble(&local, reply.as_ref());
        let resp = ledger.response(&channel);
        println!(
            "round {round}: {} results, {} saved locally, uplink {} B, \
             downlink {} B, response {:.3} s",
            answer.objects.len(),
            local.saved.len(),
            ledger.uplink_bytes,
            ledger.downlink_bytes(),
            resp.avg_response_s
        );
    }

    // 5. The cached index is query-type agnostic: a kNN right away reuses
    //    the objects fetched by the range query (the paper's Example 1.3).
    client.begin_query();
    let knn = QuerySpec::Knn { center: here, k: 3 };
    let local = client.run_local(&knn);
    println!(
        "kNN after range: {} of 3 neighbors answered from cache without \
         contacting the server",
        local.saved.len()
    );
}
