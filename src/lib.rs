//! # procache — Proactive Caching for Spatial Queries in Mobile Environments
//!
//! A full reproduction of Hu, Xu, Wong, Zheng, Lee & Lee (ICDE 2005) as a
//! Rust workspace. This facade crate re-exports every sub-crate so
//! examples, integration tests and downstream users can depend on a single
//! package:
//!
//! * [`geom`] — points, rectangles, distances.
//! * [`rtree`] — R*-tree, binary partition trees, the generic query engine
//!   (paper Algorithm 1) and the wire protocol.
//! * [`cache`] — the proactive cache: item hierarchy, GRD1/2/3, LRU, MRU
//!   and FAR replacement (§5).
//! * [`client`] — the client-side query processor (§3.3).
//! * [`server`] — remainder-query resumption, compact / d⁺-level forms and
//!   the adaptive controller (§4). `Send + Sync`: an immutable
//!   `ServerCore` plus a sharded per-client controller, so one server
//!   behind an `Arc` serves a concurrent client fleet.
//! * [`baselines`] — semantic caching (SEM) and page caching (PAG).
//! * [`mobility`] — random-waypoint and directed mobility models (§6.1).
//! * [`workload`] — synthetic datasets, query generation, Zipf sizes.
//! * [`net`] — the 384 Kbps wireless channel model.
//! * [`wire`] — the binary frame codec realizing the proto byte model;
//!   `server::wire` drives it over TCP loopback (`WireServer` /
//!   `TcpTransport`) so measured bytes cross-check modeled bytes.
//! * [`sim`] — the end-to-end simulator and metrics (§6): per-client
//!   `ClientSession`s, a scoped-thread `Fleet` driver with exactly
//!   mergeable results, and single-client wrappers.
//!
//! ## Quickstart
//!
//! ```
//! use procache::rtree::{RTree, RTreeConfig, proto::QuerySpec};
//! use procache::workload::datasets;
//! use procache::geom::{Point, Rect};
//!
//! // A small NE-like dataset, its R*-tree, and one range query.
//! let store = datasets::ne_like(500, 42);
//! let objects: Vec<_> = store.iter().copied().collect();
//! let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
//! let window = Rect::centered_square(Point::new(0.5, 0.5), 0.1);
//! let hits = procache::rtree::query::range_query(&tree, &window);
//! assert!(hits.len() <= 500);
//! ```

pub use pc_baselines as baselines;
pub use pc_cache as cache;
pub use pc_client as client;
pub use pc_geom as geom;
pub use pc_mobility as mobility;
pub use pc_net as net;
pub use pc_rtree as rtree;
pub use pc_server as server;
pub use pc_sim as sim;
pub use pc_wire as wire;
pub use pc_workload as workload;
