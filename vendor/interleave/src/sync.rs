//! Shadow synchronization primitives: the model-visible counterparts of
//! `std::sync`. Every operation is a scheduling point, and every
//! acquire/release carries the vector-clock edges the race detector
//! consumes. The guarded data itself lives in `UnsafeCell`s — safe
//! because the scheduler runs exactly one model thread at a time and the
//! model-level lock states enforce the usual aliasing discipline on top.

use crate::exec::{cur, event_hb, vc_join, ObjMeta, State, Status};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

pub use std::sync::Arc;

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::{acquire_edge, clear_obj_vc, new_obj, release_edge, with_atomic};
    use crate::exec::{cur, ObjMeta};

    fn is_acquire(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }
    fn is_release(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    macro_rules! shadow_atomic {
        ($name:ident, $ty:ty, $to:expr, $from:expr) => {
            /// Shadow atomic: sequentially-consistent *values* (a load
            /// always sees the newest store), with happens-before edges
            /// driven by the requested ordering — so a `Relaxed` publish
            /// still races on the data it guards.
            pub struct $name {
                id: usize,
            }

            impl $name {
                #[allow(clippy::redundant_closure_call)]
                pub fn new(v: $ty) -> Self {
                    $name {
                        id: new_obj(ObjMeta::Atomic {
                            val: ($to)(v),
                            vc: Vec::new(),
                        }),
                    }
                }

                #[allow(clippy::redundant_closure_call)]
                pub fn load(&self, order: Ordering) -> $ty {
                    let (exec, me) = cur();
                    let mut st = exec.op_start(me);
                    if is_acquire(order) {
                        acquire_edge(&mut st, me, self.id);
                    }
                    let v = with_atomic(&mut st, self.id, |val| *val);
                    st.push_trace(format!("t{me}: load #{} -> {} ({order:?})", self.id, v));
                    ($from)(v)
                }

                #[allow(clippy::redundant_closure_call)]
                pub fn store(&self, v: $ty, order: Ordering) {
                    let (exec, me) = cur();
                    let mut st = exec.op_start(me);
                    if is_release(order) {
                        release_edge(&mut st, me, self.id);
                    } else {
                        // A relaxed store synchronizes-with nothing: wipe
                        // the object's clock so a later Acquire load gets
                        // no stale edge from an earlier Release store.
                        clear_obj_vc(&mut st, self.id);
                    }
                    with_atomic(&mut st, self.id, |val| *val = ($to)(v));
                    st.push_trace(format!(
                        "t{me}: store #{} <- {} ({order:?})",
                        self.id,
                        ($to)(v)
                    ));
                }

                #[allow(clippy::redundant_closure_call)]
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    ($from)(self.rmw(order, |old| {
                        let _ = old;
                        ($to)(v)
                    }))
                }

                #[allow(clippy::redundant_closure_call)]
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let (exec, me) = cur();
                    let mut st = exec.op_start(me);
                    let old = with_atomic(&mut st, self.id, |val| *val);
                    if old == ($to)(current) {
                        if is_acquire(success) {
                            acquire_edge(&mut st, me, self.id);
                        }
                        if is_release(success) {
                            release_edge(&mut st, me, self.id);
                        }
                        with_atomic(&mut st, self.id, |val| *val = ($to)(new));
                        st.push_trace(format!("t{me}: cas #{} {} -> {}", self.id, old, ($to)(new)));
                        Ok(($from)(old))
                    } else {
                        if is_acquire(failure) {
                            acquire_edge(&mut st, me, self.id);
                        }
                        st.push_trace(format!("t{me}: cas #{} failed at {}", self.id, old));
                        Err(($from)(old))
                    }
                }

                fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
                    let (exec, me) = cur();
                    let mut st = exec.op_start(me);
                    if is_acquire(order) {
                        acquire_edge(&mut st, me, self.id);
                    }
                    if is_release(order) {
                        release_edge(&mut st, me, self.id);
                    }
                    let old = with_atomic(&mut st, self.id, |val| {
                        let old = *val;
                        *val = f(old);
                        old
                    });
                    st.push_trace(format!("t{me}: rmw #{} (was {old})", self.id));
                    old
                }
            }
        };
    }

    shadow_atomic!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0);
    shadow_atomic!(AtomicU32, u32, |v: u32| v as u64, |v: u64| v as u32);
    shadow_atomic!(AtomicU64, u64, |v: u64| v, |v: u64| v);
    shadow_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);

    macro_rules! fetch_ops {
        ($name:ident, $ty:ty, $to:expr, $from:expr) => {
            impl $name {
                #[allow(clippy::redundant_closure_call)]
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    ($from)(self.rmw(order, |old| old.wrapping_add(($to)(v))))
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    ($from)(self.rmw(order, |old| old.wrapping_sub(($to)(v))))
                }
                #[allow(clippy::redundant_closure_call)]
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    ($from)(self.rmw(order, |old| old | ($to)(v)))
                }
            }
        };
    }

    fetch_ops!(AtomicU32, u32, |v: u32| v as u64, |v: u64| v as u32);
    fetch_ops!(AtomicU64, u64, |v: u64| v, |v: u64| v);
    fetch_ops!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
}

/// Allocates a model object on the current execution.
fn new_obj(meta: ObjMeta) -> usize {
    let (exec, _me) = cur();
    let mut st = exec.lock_st();
    st.alloc_obj(meta)
}

fn with_atomic<R>(st: &mut State, id: usize, f: impl FnOnce(&mut u64) -> R) -> R {
    match &mut st.objects[id] {
        ObjMeta::Atomic { val, .. } => f(val),
        _ => unreachable!("object #{id} is not an atomic"),
    }
}

fn obj_vc_mut(st: &mut State, id: usize) -> &mut crate::exec::Vc {
    match &mut st.objects[id] {
        ObjMeta::Lock { vc, .. } | ObjMeta::Cv { vc } | ObjMeta::Atomic { vc, .. } => vc,
        ObjMeta::Race { .. } => unreachable!("RaceCell carries no sync clock"),
    }
}

/// Acquire edge: the object's clock flows into the thread's.
fn acquire_edge(st: &mut State, me: usize, id: usize) {
    let ovc = obj_vc_mut(st, id).clone();
    vc_join(&mut st.threads[me].vc, &ovc);
}

/// Release edge: the thread's clock flows into the object's, and the
/// thread starts a new epoch.
fn release_edge(st: &mut State, me: usize, id: usize) {
    let tvc = st.threads[me].vc.clone();
    vc_join(obj_vc_mut(st, id), &tvc);
    st.threads[me].vc[me] += 1;
}

fn clear_obj_vc(st: &mut State, id: usize) {
    obj_vc_mut(st, id).clear();
}

/// Shadow `std::sync::Mutex`: mutual exclusion enforced at the model
/// level, lock/unlock as acquire/release clock edges, blocking as a
/// scheduler state the deadlock detector can see.
pub struct Mutex<T> {
    pub(crate) id: usize,
    data: UnsafeCell<T>,
}

// Safety: the scheduler serializes all access; the model-level lock state
// enforces exclusive aliasing of `data`.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            id: new_obj(ObjMeta::Lock {
                owner: None,
                readers: Vec::new(),
                vc: Vec::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    /// Blocking lock. No poisoning: a model-thread panic is a violation
    /// that aborts the whole run, so guards never outlive a panic.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw_lock();
        MutexGuard { lock: self }
    }

    pub(crate) fn raw_lock(&self) {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        loop {
            let free = match &mut st.objects[self.id] {
                ObjMeta::Lock { owner, readers, .. } => {
                    if owner.is_none() && readers.is_empty() {
                        *owner = Some(me);
                        true
                    } else {
                        false
                    }
                }
                _ => unreachable!("object #{} is not a lock", self.id),
            };
            if free {
                acquire_edge(&mut st, me, self.id);
                st.push_trace(format!("t{me}: lock #{}", self.id));
                return;
            }
            st.threads[me].status = Status::Blocked(self.id);
            st.push_trace(format!("t{me}: blocked on #{}", self.id));
            st = exec.block_and_wait(st, me);
        }
    }

    pub(crate) fn raw_unlock(&self) {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        unlock_inner(&mut st, me, self.id);
        st.push_trace(format!("t{me}: unlock #{}", self.id));
    }
}

/// Release-and-wake half of an unlock, usable mid-operation (condvar
/// wait releases the mutex without a second scheduling point).
fn unlock_inner(st: &mut State, me: usize, id: usize) {
    release_edge(st, me, id);
    match &mut st.objects[id] {
        ObjMeta::Lock { owner, readers, .. } => {
            if *owner == Some(me) {
                *owner = None;
            } else {
                readers.retain(|&r| r != me);
            }
        }
        _ => unreachable!("object #{id} is not a lock"),
    }
    // Wake every thread parked on this lock; they re-contend and the
    // losers re-block — which is exactly the nondeterminism to explore.
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::Blocked(id) {
            st.threads[t].status = Status::Runnable;
        }
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: model-level mutual exclusion (see Mutex).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: model-level mutual exclusion (see Mutex).
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Dropped while unwinding (model abort or a failed assert): the
        // run is already condemned — re-entering the scheduler here would
        // double-panic, so leave the model lock state as-is.
        if std::thread::panicking() {
            return;
        }
        self.lock.raw_unlock();
    }
}

/// Shadow condition variable. `wait` atomically releases the guard's
/// mutex and parks; a notify that happens while nobody waits is lost,
/// exactly like the real thing — lost-wakeup bugs stay observable.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            id: new_obj(ObjMeta::Cv { vc: Vec::new() }),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let m = guard.lock;
        std::mem::forget(guard); // released manually below, no double unlock
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        unlock_inner(&mut st, me, m.id);
        st.threads[me].status = Status::Waiting(self.id);
        st.push_trace(format!("t{me}: wait #{} (released #{})", self.id, m.id));
        st = exec.block_and_wait(st, me);
        // Notified: take the notifier's published clock, then re-acquire.
        acquire_edge(&mut st, me, self.id);
        drop(st);
        m.raw_lock();
        MutexGuard { lock: m }
    }

    pub fn notify_all(&self) {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        release_edge(&mut st, me, self.id);
        let mut woke = 0;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Waiting(self.id) {
                st.threads[t].status = Status::Runnable;
                woke += 1;
            }
        }
        st.push_trace(format!("t{me}: notify_all #{} (woke {woke})", self.id));
    }

    /// Wakes the lowest-id waiter (deterministically — the model explores
    /// schedules, not wakeup-order nondeterminism).
    pub fn notify_one(&self) {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        release_edge(&mut st, me, self.id);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Waiting(self.id) {
                st.threads[t].status = Status::Runnable;
                st.push_trace(format!("t{me}: notify_one #{} (woke t{t})", self.id));
                return;
            }
        }
        st.push_trace(format!("t{me}: notify_one #{} (lost)", self.id));
    }
}

/// Shadow `std::sync::RwLock`: shared readers, one writer, writer
/// excluded by readers and vice versa; both sides exchange clock edges
/// through the lock so reader-observed state is happens-before ordered.
pub struct RwLock<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// Safety: as for Mutex; readers only receive `&T`.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            id: new_obj(ObjMeta::Lock {
                owner: None,
                readers: Vec::new(),
                vc: Vec::new(),
            }),
            data: UnsafeCell::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        loop {
            let ok = match &mut st.objects[self.id] {
                ObjMeta::Lock { owner, readers, .. } => {
                    if owner.is_none() {
                        readers.push(me);
                        true
                    } else {
                        false
                    }
                }
                _ => unreachable!("object #{} is not a lock", self.id),
            };
            if ok {
                acquire_edge(&mut st, me, self.id);
                st.push_trace(format!("t{me}: read-lock #{}", self.id));
                return RwLockReadGuard { lock: self };
            }
            st.threads[me].status = Status::Blocked(self.id);
            st = exec.block_and_wait(st, me);
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        loop {
            let ok = match &mut st.objects[self.id] {
                ObjMeta::Lock { owner, readers, .. } => {
                    if owner.is_none() && readers.is_empty() {
                        *owner = Some(me);
                        true
                    } else {
                        false
                    }
                }
                _ => unreachable!("object #{} is not a lock", self.id),
            };
            if ok {
                acquire_edge(&mut st, me, self.id);
                st.push_trace(format!("t{me}: write-lock #{}", self.id));
                return RwLockWriteGuard { lock: self };
            }
            st.threads[me].status = Status::Blocked(self.id);
            st = exec.block_and_wait(st, me);
        }
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: readers hold the model-level shared lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // condemned run; see MutexGuard::drop
        }
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        unlock_inner(&mut st, me, self.lock.id);
        st.push_trace(format!("t{me}: read-unlock #{}", self.lock.id));
    }
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the writer holds the model-level exclusive lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the writer holds the model-level exclusive lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // condemned run; see MutexGuard::drop
        }
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        unlock_inner(&mut st, me, self.lock.id);
        st.push_trace(format!("t{me}: write-unlock #{}", self.lock.id));
    }
}

pub(crate) fn race_read(st: &mut State, me: usize, id: usize) -> Result<(), String> {
    let my_vc = st.threads[me].vc.clone();
    let my_epoch = my_vc[me];
    match &mut st.objects[id] {
        ObjMeta::Race { write, reads } => {
            if let Some((t, k)) = *write {
                if t != me && !event_hb(t, k, &my_vc) {
                    return Err(format!(
                        "data race: t{me} reads cell #{id} concurrently with t{t}'s write \
                         (no happens-before edge — missing Release/Acquire?)"
                    ));
                }
            }
            match reads.iter_mut().find(|(t, _)| *t == me) {
                Some(r) => r.1 = r.1.max(my_epoch),
                None => reads.push((me, my_epoch)),
            }
            Ok(())
        }
        _ => unreachable!("object #{id} is not a RaceCell"),
    }
}

pub(crate) fn race_write(st: &mut State, me: usize, id: usize) -> Result<(), String> {
    let my_vc = st.threads[me].vc.clone();
    let my_epoch = my_vc[me];
    match &mut st.objects[id] {
        ObjMeta::Race { write, reads } => {
            if let Some((t, k)) = *write {
                if t != me && !event_hb(t, k, &my_vc) {
                    return Err(format!(
                        "data race: t{me} writes cell #{id} concurrently with t{t}'s write \
                         (no happens-before edge — missing Release/Acquire?)"
                    ));
                }
            }
            for &(t, k) in reads.iter() {
                if t != me && !event_hb(t, k, &my_vc) {
                    return Err(format!(
                        "data race: t{me} writes cell #{id} concurrently with t{t}'s read \
                         (no happens-before edge — missing Release/Acquire?)"
                    ));
                }
            }
            reads.clear();
            *write = Some((me, my_epoch));
            Ok(())
        }
        _ => unreachable!("object #{id} is not a RaceCell"),
    }
}

pub(crate) fn new_race_obj() -> usize {
    new_obj(ObjMeta::Race {
        write: None,
        reads: Vec::new(),
    })
}
