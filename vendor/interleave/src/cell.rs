//! [`RaceCell`]: deliberately-unsynchronized shared data, the probe the
//! vector-clock race detector watches. Model the *protected* state of a
//! protocol as `RaceCell`s and its *protection* as shadow locks/atomics;
//! any schedule in which two threads touch the cell without a
//! happens-before edge between them is reported as a violation, even if
//! the values happen to come out right.

use crate::exec::cur;
use crate::sync::{race_read, race_write};
use std::cell::UnsafeCell;

pub struct RaceCell<T> {
    id: usize,
    val: UnsafeCell<T>,
}

// Safety: the scheduler serializes all model threads, so the underlying
// accesses are ordered at the OS level; the *model-level* race (absence
// of a happens-before edge) is detected and reported, not executed as UB.
unsafe impl<T: Send> Send for RaceCell<T> {}
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    pub fn new(value: T) -> Self {
        RaceCell {
            id: crate::sync::new_race_obj(),
            val: UnsafeCell::new(value),
        }
    }

    /// Reads through a closure; a read racing the last write aborts the
    /// run with a violation.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        if let Err(msg) = race_read(&mut st, me, self.id) {
            exec.violate_and_abort(st, msg);
        }
        st.push_trace(format!("t{me}: read cell #{}", self.id));
        drop(st);
        // Safety: serialized by the token; the race check above is the
        // model-level verdict, not the memory-safety argument.
        f(unsafe { &*self.val.get() })
    }

    /// Writes through a closure; a write racing any access since the
    /// last write aborts the run with a violation.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        if let Err(msg) = race_write(&mut st, me, self.id) {
            exec.violate_and_abort(st, msg);
        }
        st.push_trace(format!("t{me}: write cell #{}", self.id));
        drop(st);
        // Safety: as in `with`.
        f(unsafe { &mut *self.val.get() })
    }
}

impl<T: Copy> RaceCell<T> {
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}
