//! A vendored miniature of [loom](https://github.com/tokio-rs/loom): an
//! exhaustive-interleaving model checker for small concurrency protocols.
//!
//! A model is a closure run many times under [`check`] (or a tuned
//! [`Builder`]). Inside the closure, threads are spawned with
//! [`thread::spawn`] and communicate **only** through this crate's shadow
//! primitives ([`sync::Mutex`], [`sync::Condvar`], [`sync::RwLock`], the
//! [`sync::atomic`] types and the deliberately-unsynchronized
//! [`cell::RaceCell`]). The runtime serializes the model's OS threads —
//! exactly one runs at a time — and treats every operation on a shadow
//! primitive as a *scheduling point*: a place where the depth-first
//! explorer may hand the token to a different runnable thread. Across
//! runs the explorer enumerates every distinct schedule (optionally
//! bounded by a preemption budget, the classic CHESS trick: most bugs
//! need only 1–2 forced preemptions), so an assertion that holds for
//! every explored run holds for *every interleaving at this abstraction
//! level*.
//!
//! What it checks, beyond the model's own asserts:
//!
//! - **Data races**, via vector clocks. Each thread and each
//!   synchronization object carries a clock; `Release` stores publish the
//!   writer's clock into the object, `Acquire` loads join it into the
//!   reader, locks do both. A [`cell::RaceCell`] access that is not
//!   happens-before-ordered against the previous write (or, for writes,
//!   against every read since) is reported as a violation — this is what
//!   catches a publish over a `Relaxed` flag.
//! - **Deadlocks**: a state where live threads exist but none is
//!   runnable aborts the run with the blocked-thread set.
//!
//! What it deliberately does **not** model: weak-memory *value*
//! prediction. Execution is sequentially consistent (a load always sees
//! the newest store), so stale-read bugs surface as happens-before races
//! on the data they guard rather than as reordered values. Models must
//! also be deterministic apart from scheduling — same inputs, same
//! operations — or replay-based exploration loses its footing.
//!
//! ```
//! use interleave::{cell::RaceCell, sync::atomic::{AtomicBool, Ordering}};
//! use std::sync::Arc;
//!
//! // A publish over a Relaxed flag is a race on the payload: caught.
//! let result = interleave::check(|| {
//!     let cell = Arc::new(RaceCell::new(0u64));
//!     let flag = Arc::new(AtomicBool::new(false));
//!     let (c, f) = (cell.clone(), flag.clone());
//!     let t = interleave::thread::spawn(move || {
//!         c.set(42);
//!         f.store(true, Ordering::Relaxed); // should be Release
//!     });
//!     if flag.load(Ordering::Acquire) {
//!         let _ = cell.get();
//!     }
//!     t.join().unwrap();
//! });
//! assert!(result.is_err());
//! ```

pub mod cell;
mod exec;
pub mod sync;
pub mod thread;

#[cfg(test)]
mod tests;

use exec::Execution;
use std::sync::Arc;

/// Outcome of a completed exploration: how many schedules ran and
/// whether the space was exhausted or truncated at
/// [`Builder::max_schedules`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// `true` when every schedule within the preemption bound was
    /// explored; `false` when the run count hit the cap first.
    pub complete: bool,
}

/// A failed run: the first violation found (model assertion, data race,
/// or deadlock), with the event trace of the offending schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong, e.g. `data race: write of cell #3 …`.
    pub message: String,
    /// The scheduling/operation log of the violating run, oldest first
    /// (capped, so very long runs keep only the tail).
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule trace ({} events):", self.trace.len())?;
        for t in &self.trace {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Exploration configuration. The defaults explore exhaustively (no
/// preemption bound) up to 100 000 schedules.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches per schedule — a
    /// switch taken while the running thread was still runnable. Forced
    /// switches (the running thread blocked or finished) are free.
    /// `None` means unbounded, i.e. the full interleaving space.
    pub preemption_bound: Option<usize>,
    /// Hard cap on schedules; hitting it yields `complete: false`.
    pub max_schedules: usize,
    /// Hard cap on live model threads per run (spawn past it is a
    /// violation — almost certainly a runaway loop in the model).
    pub max_threads: usize,
    /// Hard cap on scheduling points per run (ditto).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: None,
            max_schedules: 100_000,
            max_threads: 8,
            max_steps: 200_000,
        }
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Runs `f` under every schedule the configuration admits.
    ///
    /// Returns the first [`Violation`] found, or a [`Report`] when every
    /// explored schedule passed. `f` must confine all cross-thread
    /// communication to this crate's shadow primitives.
    pub fn check<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            let run = Execution::run_once(f.clone(), &prefix, self);
            if let Some(v) = run.violation {
                return Err(v);
            }
            match exec::next_prefix(&run.points, self.preemption_bound) {
                None => {
                    return Ok(Report {
                        schedules,
                        complete: true,
                    })
                }
                Some(_) if schedules >= self.max_schedules => {
                    return Ok(Report {
                        schedules,
                        complete: false,
                    })
                }
                Some(p) => prefix = p,
            }
        }
    }
}

/// [`Builder::check`] with default settings: unbounded preemptions,
/// up to 100 000 schedules.
pub fn check<F>(f: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
