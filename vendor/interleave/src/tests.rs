//! Self-tests: the explorer must prove sound protocols sound, and —
//! just as important — *catch* the seeded broken ones. A model checker
//! that cannot flag a planted bug proves nothing when it passes.

use crate::cell::RaceCell;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Condvar, Mutex, RwLock};
use crate::{thread, Builder, Report, Violation};

#[test]
fn mutex_counter_is_sound_and_explored() {
    let r = crate::check(|| {
        let n = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    *n.lock() += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    })
    .unwrap();
    assert!(r.complete, "space must be exhausted");
    assert!(r.schedules > 1, "two racing threads admit >1 schedule");
}

#[test]
fn unsynchronized_counter_is_caught() {
    // The classic racy toy: read-modify-write with no synchronization.
    let err = crate::check(|| {
        let n = Arc::new(RaceCell::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.get();
                    n.set(v + 1);
                })
            })
            .collect();
        for h in hs {
            let _ = h.join();
        }
    })
    .unwrap_err();
    assert!(err.message.contains("data race"), "{}", err.message);
    assert!(!err.trace.is_empty(), "violations carry their schedule");
}

fn publish_model(flag_order: Ordering) -> Result<Report, Violation> {
    crate::check(move || {
        let cell = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (c, f) = (cell.clone(), flag.clone());
        let t = thread::spawn(move || {
            c.set(42);
            f.store(true, flag_order);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(cell.get(), 42);
        }
        t.join().unwrap();
    })
}

#[test]
fn release_publish_is_clean() {
    let r = publish_model(Ordering::Release).unwrap();
    assert!(r.complete);
}

#[test]
fn relaxed_publish_mutant_is_caught() {
    // Weakening the publish to Relaxed severs the happens-before edge:
    // the reader that sees the flag races the writer on the payload.
    let err = publish_model(Ordering::Relaxed).unwrap_err();
    assert!(err.message.contains("data race"), "{}", err.message);
}

#[test]
fn ab_ba_deadlock_is_caught() {
    let err = crate::check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _g1 = a2.lock();
            let _g2 = b2.lock();
        });
        {
            let _g1 = b.lock();
            let _g2 = a.lock();
        }
        let _ = t.join();
    })
    .unwrap_err();
    assert!(err.message.contains("deadlock"), "{}", err.message);
}

#[test]
fn failing_model_assertions_become_violations() {
    let err = crate::check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || n2.fetch_add(1, Ordering::Relaxed));
        // Wrong under the child-first schedule: the add may already be in.
        assert_eq!(n.load(Ordering::Relaxed), 0, "seeded wrong assert");
        t.join().unwrap();
    })
    .unwrap_err();
    assert!(
        err.message.contains("seeded wrong assert"),
        "{}",
        err.message
    );
}

#[test]
fn exhaustive_exploration_visits_every_sc_outcome() {
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;
    let seen = Arc::new(StdMutex::new(HashSet::new()));
    let sink = seen.clone();
    crate::check(move || {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
            b2.load(Ordering::Relaxed)
        });
        b.store(1, Ordering::Relaxed);
        let r1 = a.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    })
    .unwrap();
    let seen = seen.lock().unwrap();
    for want in [(1, 1), (0, 1), (1, 0)] {
        assert!(seen.contains(&want), "SC outcome {want:?} never explored");
    }
    assert!(
        !seen.contains(&(0, 0)),
        "sequential consistency cannot lose both stores"
    );
}

#[test]
fn preemption_bounding_prunes_the_space() {
    fn model() -> impl Fn() + Send + Sync {
        move || {
            let n = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    thread::spawn(move || {
                        for _ in 0..2 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 4);
        }
    }
    let unbounded = Builder::default().check(model()).unwrap();
    let bounded = Builder {
        preemption_bound: Some(1),
        ..Builder::default()
    }
    .check(model())
    .unwrap();
    assert!(unbounded.complete && bounded.complete);
    assert!(
        bounded.schedules < unbounded.schedules,
        "bound 1: {} vs unbounded: {}",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn condvar_with_predicate_is_sound() {
    let r = crate::check(|| {
        let q = Arc::new((Mutex::new(0u64), Condvar::new()));
        let q2 = q.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*q2;
            let mut g = m.lock();
            *g = 1;
            cv.notify_all();
            drop(g);
        });
        let (m, cv) = &*q;
        let mut g = m.lock();
        while *g == 0 {
            g = cv.wait(g);
        }
        assert_eq!(*g, 1);
        drop(g);
        t.join().unwrap();
    })
    .unwrap();
    assert!(r.complete);
}

#[test]
fn lost_wakeup_is_caught_as_deadlock() {
    // No predicate around the wait: the schedule where the notifier runs
    // first loses the wakeup and parks the waiter forever.
    let err = crate::check(|| {
        let q = Arc::new((Mutex::new(()), Condvar::new()));
        let q2 = q.clone();
        let t = thread::spawn(move || {
            q2.1.notify_all();
        });
        let g = q.0.lock();
        let _g = q.1.wait(g);
        let _ = t.join();
    })
    .unwrap_err();
    assert!(err.message.contains("deadlock"), "{}", err.message);
}

#[test]
fn rwlock_readers_share_and_exclude_the_writer() {
    let r = crate::check(|| {
        let l = Arc::new(RwLock::new(0u64));
        let l2 = l.clone();
        let t = thread::spawn(move || {
            *l2.write() += 1;
        });
        {
            let g = l.read();
            let v = *g;
            assert!(v == 0 || v == 1);
        }
        t.join().unwrap();
        assert_eq!(*l.read(), 1);
    })
    .unwrap();
    assert!(r.complete);
}
