//! Shadow `std::thread`: spawn and join as model operations. Spawn and
//! join both carry the usual happens-before edges (everything the parent
//! did is visible to the child; everything the child did is visible to
//! its joiner), and a parked joiner is a scheduler state the deadlock
//! detector can see.

use crate::exec::{cur, vc_join, Status};
use std::sync::{Arc, Mutex};

pub struct JoinHandle<T> {
    id: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

/// Spawns a model thread. The scheduler decides when (and whether,
/// before other operations) the child first runs — the spawn itself is a
/// scheduling point like any other.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = cur();
    let mut st = exec.op_start(me);
    if let Err(msg) = st.check_thread_budget() {
        exec.violate_and_abort(st, msg);
    }
    let child = st.threads.len();
    // Spawn edge: the child begins with everything the parent has seen,
    // and both sides start fresh epochs.
    let mut vc = st.threads[me].vc.clone();
    if vc.len() <= child {
        vc.resize(child + 1, 0);
    }
    vc[child] += 1;
    st.threads.push(crate::exec::ThreadState {
        status: Status::Runnable,
        vc,
    });
    st.threads[me].vc[me] += 1;
    st.live += 1;
    st.push_trace(format!("t{me}: spawned t{child}"));
    drop(st);

    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    exec.spawn_os_thread(child, move || {
        let out = f();
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(out));
    });
    JoinHandle { id: child, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes. A child that
    /// panicked already aborted the whole run as a violation, so unlike
    /// `std`, the `Err` arm only reports a missing result after abort.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, me) = cur();
        let mut st = exec.op_start(me);
        loop {
            if st.threads[self.id].status == Status::Finished {
                let cvc = st.threads[self.id].vc.clone();
                vc_join(&mut st.threads[me].vc, &cvc);
                st.push_trace(format!("t{me}: joined t{}", self.id));
                drop(st);
                return match self.result.lock().unwrap_or_else(|p| p.into_inner()).take() {
                    Some(r) => r,
                    None => Err(Box::new("joined thread left no result (aborted run)")),
                };
            }
            st.threads[me].status = Status::Joining(self.id);
            st.push_trace(format!("t{me}: joining t{}", self.id));
            st = exec.block_and_wait(st, me);
        }
    }
}
