//! The serialized scheduler: token passing between real OS threads, the
//! depth-first schedule explorer, vector clocks and the violation plumbing.
//!
//! One `Execution` lives per run. Model threads are real `std::thread`s,
//! but exactly one holds the *token* (`State::current`) at a time; the
//! rest are parked on the state condvar. Every shadow-primitive operation
//! calls [`Execution::op_start`], which records a scheduling decision
//! (replayed from the exploration prefix or defaulted to "keep running"),
//! hands the token to the chosen thread, and parks the caller until the
//! token comes back. Because every handoff goes through the state mutex,
//! consecutive operations of different threads are genuinely ordered at
//! the OS level — the model's `UnsafeCell` accesses are data-race-free
//! even though the *modeled* program may race (which the vector clocks,
//! not the hardware, are there to see).

use crate::{Builder, Violation};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear a run down once it is aborting; never
/// escapes [`Execution::run_once`].
pub(crate) struct ModelAbort;

/// Vector clock: `vc[t]` = newest event of thread `t` known to the owner.
pub(crate) type Vc = Vec<u64>;

pub(crate) fn vc_join(a: &mut Vc, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

/// Does the event `(t, k)` happen-before a thread whose clock is `vc`?
pub(crate) fn event_hb(t: usize, k: u64, vc: &[u64]) -> bool {
    vc.get(t).copied().unwrap_or(0) >= k
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Parked on a lock-shaped object (mutex or rwlock), by object id.
    Blocked(usize),
    /// Parked in `Condvar::wait`, by condvar object id.
    Waiting(usize),
    /// Parked in `JoinHandle::join`, by thread id.
    Joining(usize),
    Finished,
}

pub(crate) struct ThreadState {
    pub status: Status,
    pub vc: Vc,
}

/// One recorded scheduling decision of the current run.
pub(crate) struct Point {
    /// Thread that was running when the decision was taken.
    pub prev: usize,
    /// Runnable threads at the decision, ascending ids.
    pub enabled: Vec<usize>,
    /// Index into `enabled` actually taken.
    pub chosen: usize,
    /// Preemptions spent strictly before this point.
    pub preempts_before: usize,
}

fn preempt_cost(p: &Point, choice: usize) -> usize {
    usize::from(p.enabled.contains(&p.prev) && p.enabled[choice] != p.prev)
}

/// Per-object model state. Ids are allocation order within one run, so
/// replays agree on them as long as the model is deterministic.
pub(crate) enum ObjMeta {
    /// Mutex or the write side of a RwLock: `owner` is the write holder,
    /// `readers` the shared holders (empty for plain mutexes).
    Lock {
        owner: Option<usize>,
        readers: Vec<usize>,
        vc: Vc,
    },
    Cv {
        vc: Vc,
    },
    Atomic {
        val: u64,
        vc: Vc,
    },
    /// A `RaceCell`: last write epoch and the read epochs since it.
    Race {
        write: Option<(usize, u64)>,
        reads: Vec<(usize, u64)>,
    },
}

pub(crate) struct State {
    pub threads: Vec<ThreadState>,
    pub current: usize,
    pub live: usize,
    pub aborting: bool,
    pub violation: Option<Violation>,
    prefix: Vec<usize>,
    pub points: Vec<Point>,
    preempts: usize,
    pub objects: Vec<ObjMeta>,
    trace: VecDeque<String>,
    max_threads: usize,
    max_steps: usize,
}

const TRACE_CAP: usize = 256;

pub(crate) struct Execution {
    st: Mutex<State>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

pub(crate) struct RunOutcome {
    pub points: Vec<Point>,
    pub violation: Option<Violation>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's (execution, thread id); panics outside a
/// model run — shadow primitives only work under `check`.
pub(crate) fn cur() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("interleave primitive used outside interleave::check")
    })
}

impl Execution {
    pub(crate) fn run_once(
        f: Arc<dyn Fn() + Send + Sync>,
        prefix: &[usize],
        cfg: &Builder,
    ) -> RunOutcome {
        let exec = Arc::new(Execution {
            st: Mutex::new(State {
                threads: vec![ThreadState {
                    status: Status::Runnable,
                    vc: vec![1],
                }],
                current: 0,
                live: 1,
                aborting: false,
                violation: None,
                prefix: prefix.to_vec(),
                points: Vec::new(),
                preempts: 0,
                objects: Vec::new(),
                trace: VecDeque::new(),
                max_threads: cfg.max_threads,
                max_steps: cfg.max_steps,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        exec.spawn_os_thread(0, move || f());

        // Join every OS thread the run creates; model spawns push into
        // `handles` while we drain, so re-check for late arrivals until
        // the drain sees an empty list with no live thread left.
        loop {
            let h = lock(&exec.handles).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => {
                    if lock(&exec.st).live == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }

        let mut st = lock(&exec.st);
        RunOutcome {
            points: std::mem::take(&mut st.points),
            violation: st.violation.take(),
        }
    }

    /// Spawns the OS-level carrier of model thread `id`: waits for the
    /// token, runs the body, and hands the token on when it finishes.
    /// A non-abort panic in the body is recorded as a violation.
    pub(crate) fn spawn_os_thread(
        self: &Arc<Self>,
        id: usize,
        body: impl FnOnce() + Send + 'static,
    ) {
        let exec = self.clone();
        let h = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), id)));
            let run = panic::catch_unwind(AssertUnwindSafe(|| {
                let st = lock(&exec.st);
                drop(exec.wait_token(st, id));
                body();
            }));
            let mut st = lock(&exec.st);
            st.threads[id].status = Status::Finished;
            st.threads[id].vc[id] += 1;
            st.live -= 1;
            // Joiners of this thread become runnable again; they take the
            // happens-before edge from our final clock when they resume.
            for t in 0..st.threads.len() {
                if st.threads[t].status == Status::Joining(id) {
                    st.threads[t].status = Status::Runnable;
                }
            }
            match run {
                Ok(()) => {
                    st.push_trace(format!("t{id}: finished"));
                    if !st.aborting {
                        exec.schedule(&mut st, id);
                    }
                }
                Err(p) if p.is::<ModelAbort>() => {}
                Err(p) => {
                    // `&*p`, not `&p`: a `&Box<dyn Any>` would itself
                    // coerce to `&dyn Any` (the Box as the Any) and every
                    // downcast would miss.
                    let msg = panic_message(&*p);
                    exec.violate(&mut st, format!("model thread t{id} panicked: {msg}"));
                }
            }
            exec.cv.notify_all();
        });
        lock(&self.handles).push(h);
    }

    pub(crate) fn lock_st(&self) -> MutexGuard<'_, State> {
        lock(&self.st)
    }

    /// A scheduling point: record a decision, hand the token to the
    /// chosen thread, park until it comes back. Returns with the state
    /// lock held and the token owned — callers perform their operation
    /// under the returned guard.
    pub(crate) fn op_start(&self, me: usize) -> MutexGuard<'_, State> {
        let mut st = lock(&self.st);
        self.schedule(&mut st, me);
        self.wait_token(st, me)
    }

    /// Like [`op_start`](Self::op_start) but for a caller that has just
    /// blocked itself (`Blocked`/`Waiting`/`Joining` already set): forces
    /// a switch and parks until the caller is scheduled again.
    pub(crate) fn block_and_wait<'a>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        me: usize,
    ) -> MutexGuard<'a, State> {
        self.schedule(&mut st, me);
        self.wait_token(st, me)
    }

    /// Picks the next token holder among runnable threads, replaying the
    /// exploration prefix when one is set and defaulting to "stay on the
    /// same thread" (zero preemptions) past its end.
    fn schedule(&self, st: &mut State, prev: usize) {
        if st.aborting {
            return;
        }
        let mut enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        // The running thread, when still enabled, goes first: the default
        // (beyond-prefix) choice is always index 0, so it costs zero
        // preemptions, and the DFS increment `chosen+1..` enumerates every
        // other thread — the enumeration starts at the default and covers
        // the full alternative set.
        if let Some(pos) = enabled.iter().position(|&t| t == prev) {
            enabled.remove(pos);
            enabled.insert(0, prev);
        }
        if enabled.is_empty() {
            if st.live > 0 {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("t{i}: {:?}", t.status))
                    .collect();
                self.violate(
                    st,
                    format!("deadlock: no runnable thread [{}]", blocked.join(", ")),
                );
            }
            self.cv.notify_all();
            return;
        }
        if st.points.len() >= st.max_steps {
            self.violate(
                st,
                format!(
                    "model exceeded {} scheduling points in one run",
                    st.max_steps
                ),
            );
            return;
        }
        let i = st.points.len();
        let chosen = if i < st.prefix.len() {
            st.prefix[i].min(enabled.len() - 1)
        } else {
            0
        };
        let point = Point {
            prev,
            enabled: enabled.clone(),
            chosen,
            preempts_before: st.preempts,
        };
        st.preempts += preempt_cost(&point, chosen);
        st.points.push(point);
        st.current = enabled[chosen];
        self.cv.notify_all();
    }

    /// Parks until the caller owns the token; tears down on abort.
    fn wait_token<'a>(&'a self, mut st: MutexGuard<'a, State>, me: usize) -> MutexGuard<'a, State> {
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(ModelAbort);
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Records the run's first violation and flips the whole run into
    /// abort mode; parked threads unwind via [`ModelAbort`] as they wake.
    pub(crate) fn violate(&self, st: &mut State, message: String) {
        if st.violation.is_none() {
            st.violation = Some(Violation {
                message,
                trace: st.trace.iter().cloned().collect(),
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// [`violate`](Self::violate) for the thread that *caused* the
    /// violation mid-operation: records it and unwinds immediately.
    pub(crate) fn violate_and_abort(&self, mut st: MutexGuard<'_, State>, message: String) -> ! {
        self.violate(&mut st, message);
        drop(st);
        panic::panic_any(ModelAbort)
    }
}

impl State {
    pub(crate) fn push_trace(&mut self, event: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.pop_front();
        }
        self.trace.push_back(event);
    }

    pub(crate) fn alloc_obj(&mut self, meta: ObjMeta) -> usize {
        self.objects.push(meta);
        self.objects.len() - 1
    }

    pub(crate) fn check_thread_budget(&self) -> Result<(), String> {
        if self.threads.len() >= self.max_threads {
            return Err(format!(
                "model spawned more than {} threads — runaway spawn loop?",
                self.max_threads
            ));
        }
        Ok(())
    }
}

/// Computes the next exploration prefix from a completed run's decision
/// log: the deepest point with an untaken alternative whose preemption
/// cost stays within `bound`. `None` once the space is exhausted.
pub(crate) fn next_prefix(points: &[Point], bound: Option<usize>) -> Option<Vec<usize>> {
    for i in (0..points.len()).rev() {
        let p = &points[i];
        for alt in p.chosen + 1..p.enabled.len() {
            let cost = p.preempts_before + preempt_cost(p, alt);
            if bound.is_none_or(|b| cost <= b) {
                let mut prefix: Vec<usize> = points[..i].iter().map(|q| q.chosen).collect();
                prefix.push(alt);
                return Some(prefix);
            }
        }
    }
    None
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
