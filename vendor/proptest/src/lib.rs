//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface its property tests use: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`),
//! [`Strategy`](strategy::Strategy) with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, [`arbitrary::any`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Cases are generated from a deterministic per-test seed. There is no
//! shrinking: a failing case reports its inputs' assertion message and the
//! case number instead. Swap this path dependency for the real
//! `proptest = "1"` once a registry is reachable; no call-site changes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Map, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempt: u32 = 0;
            // Rejections (prop_assume!) don't count toward `cases`; cap the
            // total effort so a pathological assume can't spin forever.
            while accepted < config.cases && attempt < config.cases.saturating_mul(16) {
                attempt += 1;
                let mut rng = $crate::test_runner::TestRng::new(
                    base ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed on case {} (seed {:#x}): {}",
                            stringify!($name), attempt, base, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}
