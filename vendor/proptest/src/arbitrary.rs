//! `any::<T>()` for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}
