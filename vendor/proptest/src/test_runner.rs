//! Test-runner plumbing: config, case errors, and the deterministic RNG
//! that drives value generation.

pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(&'static str),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "{m}"),
        }
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64: tiny, seedable, good-enough stream for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128).wrapping_mul(bound as u128)) >> 64) as usize
    }
}

/// FNV-1a over the test path: a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
