//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, and `prop_map` adapters. Values are generated directly (no
//! shrinking trees).

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
