//! Collection strategies: `prop::collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifiers: an exact `usize`, `lo..hi`, or `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
