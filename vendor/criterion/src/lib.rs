//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface its benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Timing is a plain wall-clock mean over `sample_size` iterations — no
//! statistics, outlier rejection, or HTML reports. It is enough to compare
//! the paper's algorithms at an order-of-magnitude level and to keep every
//! bench target compiling. Swap this path dependency for the real
//! `criterion = "0.5"` once a registry is reachable; no call-site changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 10;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id().id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!(
        "{name:<48} {:>12.3} µs/iter ({} iters)",
        per_iter * 1e6,
        b.iters
    );
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
