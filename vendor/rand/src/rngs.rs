//! Concrete generators. Only [`SmallRng`] is provided: a xoshiro256++
//! (Blackman & Vigna), the same family the real `rand::rngs::SmallRng`
//! uses on 64-bit platforms.

use crate::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}
