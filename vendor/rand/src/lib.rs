//! Minimal, dependency-free stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors exactly the surface the reproduction uses:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (same family as the real
//!   `SmallRng` on 64-bit targets), seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding for experiments.
//! * [`Rng::random_range`] / [`Rng::random_bool`] — uniform sampling over
//!   integer and float ranges.
//!
//! The generator is deterministic for a given seed, which is all the
//! simulator and the test-suite require. Swap this path dependency for the
//! real `rand = "0.9"` once a registry is reachable; no call-site changes.

pub mod rngs;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed (the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform f64 in `[0, 1)` from the top 53 bits of one draw.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample empty range {low}..{high}");
                // Lemire-style widening multiply: maps next_u64 onto the span
                // with negligible bias for test/simulation purposes.
                let v = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..{high}");
                let u = unit_f64(rng) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_in(rng, start, end, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.random_range(0..u64::MAX);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }
}
