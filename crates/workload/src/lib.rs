//! Workload generation (§6.1): synthetic datasets standing in for NE and
//! RD, Zipf-distributed object sizes, the Poisson query process (think
//! time), the range/kNN/join query mix, and the drifting-k schedule of the
//! §6.4 adaptivity experiment.

pub mod datasets;
pub mod dist;
pub mod querygen;

pub use datasets::{ne_like, rd_like, uniform, DatasetKind};
pub use querygen::{DriftingK, QueryGenerator, QueryMix, WorkloadConfig};
