//! Synthetic datasets substituting the paper's real ones (rtreeportal.org
//! is long gone; see DESIGN.md §3 for the substitution argument):
//!
//! * [`ne_like`] ↔ **NE** (123,593 postal zones of New York, Philadelphia
//!   and Boston): three metro-area gaussian mixtures with sub-clusters,
//!   stored as point (degenerate) MBRs.
//! * [`rd_like`] ↔ **RD** (594,103 railroad/road segments of North
//!   America): thin elongated rectangles laid along a jittered
//!   grid-plus-diagonal network.
//! * [`uniform`] — the uninteresting control used by tests.
//!
//! All coordinates are normalized to the unit square (§6.1) and all object
//! sizes follow the Table 6.1 Zipf distribution with a 10 KB mean.

use crate::dist::{gaussian, ZipfSizes};
use pc_geom::{Point, Rect};
use pc_rtree::{ObjectId, ObjectStore, SpatialObject};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which synthetic dataset to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// NE substitute (clustered points).
    Ne,
    /// RD substitute (road-like segments).
    Rd,
    /// Uniform control.
    Uniform,
}

impl DatasetKind {
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Ne => "NE-like",
            DatasetKind::Rd => "RD-like",
            DatasetKind::Uniform => "uniform",
        }
    }

    /// The paper's cardinality for this dataset (uniform defaults to NE's).
    pub fn paper_cardinality(&self) -> usize {
        match self {
            DatasetKind::Ne | DatasetKind::Uniform => 123_593,
            DatasetKind::Rd => 594_103,
        }
    }

    pub fn generate(&self, n: usize, seed: u64) -> ObjectStore {
        match self {
            DatasetKind::Ne => ne_like(n, seed),
            DatasetKind::Rd => rd_like(n, seed),
            DatasetKind::Uniform => uniform(n, seed),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Minimum spacing between NE-like centroids. Real postal-zone centroids
/// never coincide — adjacent zones sit hundreds of meters apart, i.e.
/// ~1e-4 of the normalized space. This *inhibition* is what makes the
/// paper's 5e-5 distance join nearly result-free (a pure index/CPU
/// stressor); a plain gaussian mixture would pile points arbitrarily close
/// and turn every join into a megabyte-scale download, wrecking every
/// byte-metric shape. See DESIGN.md §3.
const NE_MIN_SPACING: f64 = 1.5e-4;

/// A hash grid for min-distance (hard-core) thinning.
struct SpacingGrid {
    cell: f64,
    map: std::collections::HashMap<(i32, i32), Vec<Point>>,
}

impl SpacingGrid {
    fn new(cell: f64) -> Self {
        SpacingGrid {
            cell,
            map: std::collections::HashMap::new(),
        }
    }

    fn key(&self, p: &Point) -> (i32, i32) {
        ((p.x / self.cell) as i32, (p.y / self.cell) as i32)
    }

    fn too_close(&self, p: &Point, dist: f64) -> bool {
        let (kx, ky) = self.key(p);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(pts) = self.map.get(&(kx + dx, ky + dy)) {
                    if pts.iter().any(|q| q.dist(p) < dist) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn insert(&mut self, p: Point) {
        let k = self.key(&p);
        self.map.entry(k).or_default().push(p);
    }
}

/// NE substitute: `n` postal-zone centroids drawn from three metro-area
/// mixtures (weights 0.5/0.3/0.2), each with 8–14 gaussian sub-clusters,
/// thinned to a hard-core minimum spacing (`NE_MIN_SPACING`).
pub fn ne_like(n: usize, seed: u64) -> ObjectStore {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4e45);
    let sizes = ZipfSizes::paper();

    // Metro centers roughly along a diagonal corridor (NYC/Philly/Boston
    // sit on a line; the exact placement is irrelevant, the skew is not).
    let metros = [
        (Point::new(0.30, 0.35), 0.5),
        (Point::new(0.55, 0.55), 0.3),
        (Point::new(0.75, 0.80), 0.2),
    ];
    let mut subcenters: Vec<(Point, f64)> = Vec::new();
    for (center, weight) in metros {
        let k = rng.random_range(8..=14);
        for _ in 0..k {
            let c = Point::new(
                clamp01(gaussian(&mut rng, center.x, 0.07)),
                clamp01(gaussian(&mut rng, center.y, 0.07)),
            );
            subcenters.push((c, weight / k as f64));
        }
    }
    let total_w: f64 = subcenters.iter().map(|(_, w)| w).sum();

    let mut grid = SpacingGrid::new(NE_MIN_SPACING);
    let objects = (0..n)
        .map(|i| {
            let mut p = Point::new(0.5, 0.5);
            for attempt in 0..64 {
                // Pick a sub-cluster by weight; widen the spread on retries
                // so saturated cluster cores spill outward instead of
                // looping forever.
                let mut u: f64 = rng.random_range(0.0..total_w);
                let mut chosen = subcenters[0].0;
                for (c, w) in &subcenters {
                    if u < *w {
                        chosen = *c;
                        break;
                    }
                    u -= w;
                }
                let sigma = 0.012 * (1.0 + attempt as f64 * 0.25);
                p = Point::new(
                    clamp01(gaussian(&mut rng, chosen.x, sigma)),
                    clamp01(gaussian(&mut rng, chosen.y, sigma)),
                );
                if !grid.too_close(&p, NE_MIN_SPACING) {
                    break;
                }
            }
            grid.insert(p);
            SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(p),
                size_bytes: sizes.sample(&mut rng),
            }
        })
        .collect();
    ObjectStore::new(objects)
}

/// RD substitute: `n` thin road segments along a jittered grid of streets
/// plus a few diagonal highways.
pub fn rd_like(n: usize, seed: u64) -> ObjectStore {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5244);
    let sizes = ZipfSizes::paper();

    // Street network: horizontal and vertical lines at jittered offsets,
    // plus diagonal highways.
    #[derive(Clone, Copy)]
    enum Road {
        H(f64),          // y = const
        V(f64),          // x = const
        Diag(f64, bool), // y = ±x + offset
    }
    let mut roads = Vec::new();
    let streets = 40;
    for i in 0..streets {
        let at = (i as f64 + rng.random_range(0.1..0.9)) / streets as f64;
        roads.push(Road::H(at));
        let at = (i as f64 + rng.random_range(0.1..0.9)) / streets as f64;
        roads.push(Road::V(at));
    }
    for _ in 0..6 {
        roads.push(Road::Diag(
            rng.random_range(-0.5..0.5),
            rng.random_bool(0.5),
        ));
    }

    // Segments sit at regular slots along their road with a small jitter,
    // mirroring how real road segments tile a carriageway end to end
    // (random placement would Poisson-clump segments into heaps of
    // sub-5e-5 join pairs that real road data does not have; crossings
    // between different roads still contribute a few genuine pairs).
    let per_road = (n / roads.len()).max(1);
    let objects = (0..n)
        .map(|i| {
            let road = roads[i % roads.len()];
            let slot = (i / roads.len()) % per_road;
            let spacing = 1.0 / per_road as f64;
            let along: f64 = (slot as f64 + rng.random_range(0.1..0.9)) * spacing;
            let len: f64 = rng.random_range(0.002f64..0.010).min(spacing * 0.8);
            let width: f64 = rng.random_range(0.0001..0.0005);
            let mbr = match road {
                Road::H(y) => {
                    let y = clamp01(y + gaussian(&mut rng, 0.0, 0.001));
                    Rect::from_coords(
                        clamp01(along),
                        clamp01(y - width / 2.0),
                        clamp01(along + len),
                        clamp01(y + width / 2.0),
                    )
                }
                Road::V(x) => {
                    let x = clamp01(x + gaussian(&mut rng, 0.0, 0.001));
                    Rect::from_coords(
                        clamp01(x - width / 2.0),
                        clamp01(along),
                        clamp01(x + width / 2.0),
                        clamp01(along + len),
                    )
                }
                Road::Diag(off, up) => {
                    let x = along;
                    let y = if up { x + off } else { 1.0 - x + off };
                    Rect::from_coords(
                        clamp01(x),
                        clamp01(y),
                        clamp01(x + len / 1.4),
                        clamp01(y + len / 1.4),
                    )
                }
            };
            SpatialObject {
                id: ObjectId(i as u32),
                mbr,
                size_bytes: sizes.sample(&mut rng),
            }
        })
        .collect();
    ObjectStore::new(objects)
}

/// Uniform control dataset: point objects spread evenly.
pub fn uniform(n: usize, seed: u64) -> ObjectStore {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x554e);
    let sizes = ZipfSizes::paper();
    let objects = (0..n)
        .map(|i| SpatialObject {
            id: ObjectId(i as u32),
            mbr: Rect::from_point(Point::new(
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            )),
            size_bytes: sizes.sample(&mut rng),
        })
        .collect();
    ObjectStore::new(objects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(store: &ObjectStore) -> f64 {
        // Mean squared distance from the centroid — a crude dispersion
        // measure that separates clustered from uniform data.
        let n = store.len() as f64;
        let cx = store.iter().map(|o| o.mbr.center().x).sum::<f64>() / n;
        let cy = store.iter().map(|o| o.mbr.center().y).sum::<f64>() / n;
        store
            .iter()
            .map(|o| {
                let c = o.mbr.center();
                (c.x - cx).powi(2) + (c.y - cy).powi(2)
            })
            .sum::<f64>()
            / n
    }

    #[test]
    fn cardinalities_and_bounds() {
        for kind in [DatasetKind::Ne, DatasetKind::Rd, DatasetKind::Uniform] {
            let store = kind.generate(2000, 9);
            assert_eq!(store.len(), 2000, "{kind}");
            for o in store.iter() {
                assert!(Rect::UNIT.contains_rect(&o.mbr), "{kind}: {:?}", o.mbr);
            }
        }
    }

    #[test]
    fn sizes_average_near_ten_kb() {
        let store = ne_like(20_000, 1);
        let mean = store.total_bytes() as f64 / store.len() as f64;
        assert!((mean - 10_240.0).abs() < 500.0, "mean {mean}");
    }

    #[test]
    fn ne_is_clustered_relative_to_uniform() {
        let ne = ne_like(5000, 2);
        let un = uniform(5000, 2);
        assert!(
            spread(&ne) < spread(&un) * 0.8,
            "NE-like should be visibly clustered: {} vs {}",
            spread(&ne),
            spread(&un)
        );
    }

    #[test]
    fn rd_objects_are_thin() {
        let rd = rd_like(3000, 3);
        let thin = rd
            .iter()
            .filter(|o| {
                let w = o.mbr.width();
                let h = o.mbr.height();
                w.min(h) <= 0.001
            })
            .count();
        // Grid segments are thin; diagonals are small squares. Most must be
        // thin.
        assert!(thin * 10 >= rd.len() * 8, "{thin}/{}", rd.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ne_like(500, 7);
        let b = ne_like(500, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = ne_like(500, 8);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x != y));
    }

    #[test]
    fn paper_cardinalities_match_the_paper() {
        assert_eq!(DatasetKind::Ne.paper_cardinality(), 123_593);
        assert_eq!(DatasetKind::Rd.paper_cardinality(), 594_103);
    }
}
