//! Query generation (§6.1): "The event of client issuing queries is
//! modeled as a Poisson process … the client waits for an exponentially
//! distributed random period (called thinking time) … The query type is
//! randomly selected from range, kNN, and join."

use crate::dist::exponential;
use pc_geom::{Point, Rect};
use pc_rtree::proto::QuerySpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Relative weights of the three query types.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryMix {
    pub range: f64,
    pub knn: f64,
    pub join: f64,
}

impl QueryMix {
    /// The paper's uniform mix.
    pub fn paper() -> Self {
        QueryMix {
            range: 1.0,
            knn: 1.0,
            join: 1.0,
        }
    }

    /// Range and kNN only (used when comparing against SEM on its home
    /// turf, and by several tests).
    pub fn no_join() -> Self {
        QueryMix {
            range: 1.0,
            knn: 1.0,
            join: 0.0,
        }
    }

    pub fn knn_only() -> Self {
        QueryMix {
            range: 0.0,
            knn: 1.0,
            join: 0.0,
        }
    }
}

/// Workload parameters (Table 6.1).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Mean think time in seconds (50 s).
    pub think_mean_s: f64,
    /// Average range-window area (1e-6 of the unit square).
    pub area_wnd: f64,
    /// Distance-join threshold (5e-5).
    pub dist_join: f64,
    /// kNN k drawn uniformly from 1..=k_max (5).
    pub k_max: u32,
    pub mix: QueryMix,
}

impl WorkloadConfig {
    pub fn paper() -> Self {
        WorkloadConfig {
            think_mean_s: 50.0,
            area_wnd: 1e-6,
            dist_join: 5e-5,
            k_max: 5,
            mix: QueryMix::paper(),
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper()
    }
}

/// Draws think times and location-dependent queries.
#[derive(Clone, Debug)]
pub struct QueryGenerator {
    cfg: WorkloadConfig,
    rng: SmallRng,
}

impl QueryGenerator {
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        QueryGenerator {
            cfg,
            rng: SmallRng::seed_from_u64(seed ^ 0x5147),
        }
    }

    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Exponential think time before the next query.
    pub fn think_time(&mut self) -> f64 {
        exponential(&mut self.rng, self.cfg.think_mean_s)
    }

    /// The next query, issued from the client's current position.
    pub fn next_query(&mut self, pos: Point) -> QuerySpec {
        let total = self.cfg.mix.range + self.cfg.mix.knn + self.cfg.mix.join;
        assert!(total > 0.0, "query mix must have positive weight");
        let mut u: f64 = self.rng.random_range(0.0..total);
        if u < self.cfg.mix.range {
            // Window centered at the client, area ~ U[0.5, 1.5]·area_wnd.
            let area = self.cfg.area_wnd * self.rng.random_range(0.5..1.5);
            return QuerySpec::Range {
                window: Rect::centered_square(pos, area.sqrt()),
            };
        }
        u -= self.cfg.mix.range;
        if u < self.cfg.mix.knn {
            return QuerySpec::Knn {
                center: pos,
                k: self.rng.random_range(1..=self.cfg.k_max),
            };
        }
        QuerySpec::Join {
            dist: self.cfg.dist_join,
        }
    }
}

/// The §6.4 drifting-k schedule: "The average k decreases gradually from
/// 10 to 1 for the first 5,000 queries, and then increases gradually up to
/// 10 for the second 5,000 queries." Individual ks jitter ±1 around the
/// schedule.
#[derive(Clone, Debug)]
pub struct DriftingK {
    total: usize,
    issued: usize,
    k_hi: f64,
    k_lo: f64,
    rng: SmallRng,
}

impl DriftingK {
    pub fn new(total: usize, k_hi: u32, k_lo: u32, seed: u64) -> Self {
        assert!(total >= 2 && k_hi >= k_lo && k_lo >= 1);
        DriftingK {
            total,
            issued: 0,
            k_hi: k_hi as f64,
            k_lo: k_lo as f64,
            rng: SmallRng::seed_from_u64(seed ^ 0x444b),
        }
    }

    /// The schedule's average k at query index `i`.
    pub fn average_at(&self, i: usize) -> f64 {
        let half = self.total as f64 / 2.0;
        let i = i as f64;
        if i < half {
            self.k_hi - (self.k_hi - self.k_lo) * (i / half)
        } else {
            self.k_lo + (self.k_hi - self.k_lo) * ((i - half) / half)
        }
    }

    /// The next kNN query at `pos`.
    pub fn next_query(&mut self, pos: Point) -> QuerySpec {
        let avg = self.average_at(self.issued);
        self.issued += 1;
        let jitter: i64 = self.rng.random_range(-1..=1);
        let k = (avg.round() as i64 + jitter).clamp(1, 2 * self.k_hi as i64) as u32;
        QuerySpec::Knn { center: pos, k }
    }

    pub fn issued(&self) -> usize {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_time_mean_matches_config() {
        let mut g = QueryGenerator::new(WorkloadConfig::paper(), 1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.think_time()).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean think {mean}");
    }

    #[test]
    fn mix_proportions_are_respected() {
        let mut g = QueryGenerator::new(WorkloadConfig::paper(), 2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            match g.next_query(Point::new(0.5, 0.5)) {
                QuerySpec::Range { .. } => counts[0] += 1,
                QuerySpec::Knn { .. } => counts[1] += 1,
                QuerySpec::Join { .. } => counts[2] += 1,
            }
        }
        for c in counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn knn_only_mix_yields_knn() {
        let cfg = WorkloadConfig {
            mix: QueryMix::knn_only(),
            ..WorkloadConfig::paper()
        };
        let mut g = QueryGenerator::new(cfg, 3);
        for _ in 0..100 {
            assert!(matches!(g.next_query(Point::ORIGIN), QuerySpec::Knn { .. }));
        }
    }

    #[test]
    fn range_windows_are_centered_with_paper_area() {
        let mut g = QueryGenerator::new(
            WorkloadConfig {
                mix: QueryMix {
                    range: 1.0,
                    knn: 0.0,
                    join: 0.0,
                },
                ..WorkloadConfig::paper()
            },
            4,
        );
        let pos = Point::new(0.4, 0.6);
        for _ in 0..200 {
            let QuerySpec::Range { window } = g.next_query(pos) else {
                panic!("expected range")
            };
            assert!(window.center().dist(&pos) < 1e-12);
            let area = window.area();
            assert!(
                (0.5e-6 - 1e-12..=1.5e-6 + 1e-12).contains(&area),
                "area {area}"
            );
        }
    }

    #[test]
    fn knn_k_stays_in_bounds() {
        let cfg = WorkloadConfig {
            mix: QueryMix::knn_only(),
            ..WorkloadConfig::paper()
        };
        let mut g = QueryGenerator::new(cfg, 5);
        for _ in 0..500 {
            let QuerySpec::Knn { k, .. } = g.next_query(Point::ORIGIN) else {
                panic!()
            };
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn drifting_k_traces_a_v_shape() {
        let d = DriftingK::new(10_000, 10, 1, 6);
        assert!((d.average_at(0) - 10.0).abs() < 1e-9);
        assert!((d.average_at(5_000) - 1.0).abs() < 0.01);
        assert!((d.average_at(9_999) - 10.0).abs() < 0.01);
        // Monotone down then up.
        assert!(d.average_at(1000) > d.average_at(3000));
        assert!(d.average_at(6000) < d.average_at(9000));
    }

    #[test]
    fn drifting_k_samples_track_the_schedule() {
        let mut d = DriftingK::new(10_000, 10, 1, 7);
        let mut early = 0.0;
        for _ in 0..500 {
            let QuerySpec::Knn { k, .. } = d.next_query(Point::ORIGIN) else {
                panic!()
            };
            early += k as f64;
        }
        early /= 500.0;
        // Skip to the valley.
        while d.issued() < 4_750 {
            d.next_query(Point::ORIGIN);
        }
        let mut mid = 0.0;
        for _ in 0..500 {
            let QuerySpec::Knn { k, .. } = d.next_query(Point::ORIGIN) else {
                panic!()
            };
            mid += k as f64;
        }
        mid /= 500.0;
        assert!(early > 8.0, "early {early}");
        assert!(mid < 3.0, "mid {mid}");
    }
}
