//! Small samplers used by the workload: exponential think times (the
//! Poisson query process of §6.1), Zipf-class object sizes (θ = 0.8,
//! 10 KB average) and a Box–Muller gaussian for the clustered datasets.

use rand::Rng;

/// Exponentially distributed value with the given mean (inverse-CDF).
#[inline]
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Standard-normal sample (Box–Muller, one value per call).
#[inline]
pub fn gaussian<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sigma * z
}

/// A Zipf sampler over `classes` size classes with exponent `theta`:
/// `P(class c) ∝ c^(-theta)`, sampled by binary search on the precomputed
/// CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(classes: usize, theta: f64) -> Self {
        assert!(classes >= 1);
        let mut cdf = Vec::with_capacity(classes);
        let mut acc = 0.0;
        for c in 1..=classes {
            acc += (c as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a 1-based class.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i + 1,
        }
    }

    /// Expected class value `E[c]`.
    pub fn mean_class(&self) -> f64 {
        let mut mean = 0.0;
        let mut prev = 0.0;
        for (i, &p) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (p - prev);
            prev = p;
        }
        mean
    }
}

/// Object sizes: "the sizes of individual objects follow a Zipf
/// distribution with the skewness parameter θ being 0.8" around a 10 KB
/// average (Table 6.1). Sizes are `class · scale` over `classes` classes,
/// with `scale` normalizing the mean to `mean_bytes`. (The raw rank-Zipf
/// reading would put a single ~27 MB object in a 1.2 MB cache, so the paper
/// setup only makes sense as bounded size classes; see DESIGN.md.)
#[derive(Clone, Debug)]
pub struct ZipfSizes {
    zipf: Zipf,
    scale: f64,
}

impl ZipfSizes {
    pub fn new(theta: f64, mean_bytes: f64, classes: usize) -> Self {
        let zipf = Zipf::new(classes, theta);
        let scale = mean_bytes / zipf.mean_class();
        ZipfSizes { zipf, scale }
    }

    /// Table 6.1 defaults: θ = 0.8, 10 KB mean, 100 size classes
    /// (≈ 2.6 KB – 260 KB per object).
    pub fn paper() -> Self {
        ZipfSizes::new(0.8, 10_240.0, 100)
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let c = self.zipf.sample(rng);
        (c as f64 * self.scale).round().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn zipf_prefers_low_classes() {
        let z = Zipf::new(100, 0.8);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
        // P(1)/P(10) should be ≈ 10^0.8 ≈ 6.3.
        let ratio = counts[0] as f64 / counts[9] as f64;
        assert!((ratio - 6.3).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn zipf_single_class_is_constant() {
        let z = Zipf::new(1, 0.8);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sizes_average_near_ten_kb() {
        let sizes = ZipfSizes::paper();
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 60_000;
        let sum: u64 = (0..n).map(|_| sizes.sample(&mut rng) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 10_240.0).abs() < 300.0,
            "mean object size {mean} not near 10 KB"
        );
    }

    #[test]
    fn sizes_are_skewed() {
        let sizes = ZipfSizes::paper();
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u32> = (0..20_000).map(|_| sizes.sample(&mut rng)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        assert!(median < mean, "Zipf sizes must be right-skewed");
    }
}
