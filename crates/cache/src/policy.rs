//! Replacement policies evaluated in §6.3 (Fig. 10), plus the GRD2
//! reference against which Theorem 5.5 is property-tested.

/// Which victim-selection rule the cache uses when over capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used hierarchy leaf.
    Lru,
    /// Most-recently-used hierarchy leaf ("always the worst of all", §6.3 —
    /// kept for completeness of the Fig. 10 comparison).
    Mru,
    /// Farthest-Away-Replacement (Ren & Dunham \[15\]): evict the leaf whose
    /// MBR center is farthest from the client's current position.
    Far,
    /// The EBRS greedy of §5.1 — the costly reference implementation that
    /// recomputes expected bitwise response-time saving for every item.
    Grd2,
    /// The paper's efficient equivalent (Definition 5.1): evict hierarchy
    /// leaves in increasing `prob` order, with the B-swap guarantee step.
    Grd3,
}

impl ReplacementPolicy {
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Mru,
        ReplacementPolicy::Far,
        ReplacementPolicy::Grd2,
        ReplacementPolicy::Grd3,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Mru => "MRU",
            ReplacementPolicy::Far => "FAR",
            ReplacementPolicy::Grd2 => "GRD2",
            ReplacementPolicy::Grd3 => "GRD3",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ReplacementPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), ReplacementPolicy::ALL.len());
    }
}
