//! The proactive cache (§3.2, §5): stores result **objects** and the
//! supporting **index** (BPT cell antichains per R-tree node) as a single
//! item population with the §5.2 metadata, enforces the byte capacity, and
//! implements the replacement policies of §5/§6.3: GRD2, GRD3 (the paper's
//! contribution), LRU, MRU and FAR.
//!
//! Items form the hierarchy of the constrained knapsack problem: a node
//! item's children are its cached child-node items and cached result
//! objects. All policies evict *hierarchy leaves* (items with no cached
//! children), which by Lemma 5.4 is exactly what the optimal greedy GRD2
//! does anyway, and keeps the "evict an item ⇒ evict its descendants"
//! constraint trivially satisfied — an evicted object or childless node
//! never strands descendants.

mod cache;
mod item;
mod node_view;
mod policy;
mod view;

pub use cache::{CacheStats, InsertOutcome, ProactiveCache};
pub use item::{Item, ItemData, ItemKey, ItemMeta};
pub use node_view::CachedNodeView;
pub use policy::ReplacementPolicy;
pub use view::{CacheView, Catalog};

#[cfg(test)]
mod proptests;
