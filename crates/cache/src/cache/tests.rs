//! Unit tests for the cache: absorption, hierarchy maintenance, byte
//! accounting and victim selection per policy.

use super::*;
use pc_geom::Rect;
use pc_rtree::bpt::Code;
use pc_rtree::proto::{CellRecord, NodeShipment, ServerReply};
use pc_rtree::SpatialObject;

fn cell(code: Code, x: f64, kind: CellKind) -> CellRecord {
    CellRecord {
        code,
        mbr: Rect::from_coords(x, 0.0, x + 0.05, 0.05),
        kind,
    }
}

fn n(i: u32) -> NodeId {
    NodeId(i)
}
fn o(i: u32) -> ObjectId {
    ObjectId(i)
}

/// A two-level reply: root node 0 with entries to leaves 1 and 2; leaf 1
/// holds objects 10 and 11, leaf 2 holds object 12. Objects 10..12 are
/// transmitted with 1000-byte payloads.
fn sample_reply() -> ServerReply {
    let c0 = Code::ROOT.child(false);
    let c1 = Code::ROOT.child(true);
    ServerReply {
        confirmed: vec![],
        objects: vec![
            SpatialObject {
                id: o(10),
                mbr: Rect::from_coords(0.0, 0.0, 0.01, 0.01),
                size_bytes: 1000,
            },
            SpatialObject {
                id: o(11),
                mbr: Rect::from_coords(0.1, 0.0, 0.11, 0.01),
                size_bytes: 1000,
            },
            SpatialObject {
                id: o(12),
                mbr: Rect::from_coords(0.5, 0.0, 0.51, 0.01),
                size_bytes: 1000,
            },
        ],
        pairs: vec![],
        index: vec![
            NodeShipment {
                node: n(0),
                level: 1,
                parent: None,
                cells: vec![
                    cell(c0, 0.0, CellKind::Node(n(1))),
                    cell(c1, 0.5, CellKind::Node(n(2))),
                ],
            },
            NodeShipment {
                node: n(1),
                level: 0,
                parent: Some(n(0)),
                cells: vec![
                    cell(c0, 0.0, CellKind::Object(o(10))),
                    cell(c1, 0.1, CellKind::Object(o(11))),
                ],
            },
            NodeShipment {
                node: n(2),
                level: 0,
                parent: Some(n(0)),
                cells: vec![cell(Code::ROOT, 0.5, CellKind::Object(o(12)))],
            },
        ],
        expansions: 0,
    }
}

fn big_cache(policy: ReplacementPolicy) -> ProactiveCache {
    ProactiveCache::new(1 << 20, policy)
}

#[test]
fn absorb_builds_hierarchy_and_accounts_bytes() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    let out = c.absorb(&sample_reply(), 1, Point::ORIGIN);
    c.validate().unwrap();
    assert_eq!(out.skipped_objects, 0);
    assert_eq!(out.evicted_items, 0);
    assert_eq!(c.len(), 6); // 3 node items + 3 objects
    assert!(c.contains_object(o(10)));
    assert!(c.contains_object(o(12)));
    assert!(!c.contains_object(o(99)));
    // Hierarchy: root has leaves 1,2 as children; leaf 1 has two objects.
    let root = c.get(ItemKey::Node(n(0))).unwrap();
    assert_eq!(root.children.len(), 2);
    let leaf1 = c.get(ItemKey::Node(n(1))).unwrap();
    assert_eq!(leaf1.children.len(), 2);
    assert_eq!(leaf1.meta.parent, Some(ItemKey::Node(n(0))));
    let stats = c.stats();
    assert_eq!(stats.object_items, 3);
    assert_eq!(stats.node_items, 3);
    assert_eq!(stats.object_bytes, 3 * (OBJECT_HEADER_BYTES + 1000));
    assert_eq!(stats.used_bytes, c.used_bytes());
}

#[test]
fn absorb_is_idempotent_for_objects() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let used = c.used_bytes();
    c.absorb(&sample_reply(), 2, Point::ORIGIN);
    c.validate().unwrap();
    assert_eq!(c.used_bytes(), used, "re-absorbing must not double count");
    assert_eq!(c.len(), 6);
}

#[test]
fn touch_updates_hits_and_recency() {
    let mut c = big_cache(ReplacementPolicy::Lru);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let before = c.get(ItemKey::Object(o(10))).unwrap().meta.hits;
    c.touch(ItemKey::Object(o(10)), 5);
    let item = c.get(ItemKey::Object(o(10))).unwrap();
    assert_eq!(item.meta.hits, before + 1);
    assert_eq!(item.meta.last_access, 5);
    // Touching a non-existent item is a no-op.
    c.touch(ItemKey::Object(o(77)), 6);
    c.validate().unwrap();
}

#[test]
fn capacity_is_enforced_and_structure_stays_valid() {
    for policy in ReplacementPolicy::ALL {
        // Room for roughly two of the three objects plus index.
        let mut c = ProactiveCache::new(2600, policy);
        c.absorb(&sample_reply(), 1, Point::new(0.0, 0.0));
        assert!(
            c.used_bytes() <= c.capacity(),
            "{policy}: {} > {}",
            c.used_bytes(),
            c.capacity()
        );
        c.validate().unwrap_or_else(|e| panic!("{policy}: {e}"));
    }
}

#[test]
fn lru_evicts_least_recently_used_object() {
    let mut c = big_cache(ReplacementPolicy::Lru);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    // Touch 10 and 12 later; object 11 is the LRU leaf.
    c.touch(ItemKey::Object(o(10)), 7);
    c.touch(ItemKey::Object(o(12)), 8);
    // Shrink capacity to force one eviction.
    c.capacity = c.used_bytes() - 1;
    c.enforce_capacity(9, Point::ORIGIN);
    c.validate().unwrap();
    assert!(!c.contains_object(o(11)), "LRU victim should be object 11");
    assert!(c.contains_object(o(10)));
    assert!(c.contains_object(o(12)));
}

#[test]
fn mru_evicts_most_recently_used_object() {
    let mut c = big_cache(ReplacementPolicy::Mru);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    c.touch(ItemKey::Object(o(11)), 7);
    c.capacity = c.used_bytes() - 1;
    c.enforce_capacity(9, Point::ORIGIN);
    c.validate().unwrap();
    assert!(!c.contains_object(o(11)), "MRU victim should be object 11");
}

#[test]
fn far_evicts_farthest_object() {
    let mut c = big_cache(ReplacementPolicy::Far);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    c.capacity = c.used_bytes() - 1;
    // Client sits at x=0: object 12 (x=0.5) is farthest.
    c.enforce_capacity(9, Point::new(0.0, 0.0));
    c.validate().unwrap();
    assert!(!c.contains_object(o(12)), "FAR victim should be object 12");
    assert!(c.contains_object(o(10)));
}

#[test]
fn grd3_evicts_lowest_prob_first() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    // Give objects 10 and 11 extra hits; object 12 keeps prob = 1/(T-1).
    for t in 2..6 {
        c.touch(ItemKey::Object(o(10)), t);
        c.touch(ItemKey::Object(o(11)), t);
    }
    c.capacity = c.used_bytes() - 1;
    c.enforce_capacity(10, Point::ORIGIN);
    c.validate().unwrap();
    assert!(
        !c.contains_object(o(12)),
        "lowest-prob object must go first"
    );
    assert!(c.contains_object(o(10)));
    assert!(c.contains_object(o(11)));
}

#[test]
fn grd3_cascades_bottom_up_until_fit() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    // Keep barely more than the index: all objects must go, then possibly
    // childless leaves.
    c.capacity = 500;
    c.enforce_capacity(10, Point::ORIGIN);
    c.validate().unwrap();
    assert!(!c.contains_object(o(10)));
    assert!(!c.contains_object(o(11)));
    assert!(!c.contains_object(o(12)));
    assert!(c.used_bytes() <= 500);
}

#[test]
fn node_with_cached_children_is_never_evicted_before_them() {
    // With any policy, evicting leaves first means a leaf node item can
    // only disappear after its objects are gone.
    for policy in ReplacementPolicy::ALL {
        let mut c = big_cache(policy);
        c.absorb(&sample_reply(), 1, Point::new(0.2, 0.2));
        for cap in [3000u64, 2000, 1000, 400, 100] {
            c.capacity = cap;
            c.enforce_capacity(5, Point::new(0.2, 0.2));
            c.validate()
                .unwrap_or_else(|e| panic!("{policy}@{cap}: {e}"));
            // Invariant: any cached object's leaf view is still cached.
            for key in c.keys().collect::<Vec<_>>() {
                if let ItemKey::Object(obj) = key {
                    let parent = c.get(key).unwrap().meta.parent;
                    if let Some(pk) = parent {
                        assert!(c.get(pk).is_some(), "{policy}: orphaned {obj}");
                    }
                }
            }
        }
    }
}

#[test]
fn grd3_b_swap_keeps_the_single_valuable_item() {
    // Construct the pathological knapsack case of Definition 5.1 step (6):
    // one huge, moderately-probable object and several small, fresher ones.
    let big = SpatialObject {
        id: o(50),
        mbr: Rect::from_coords(0.0, 0.0, 0.01, 0.01),
        size_bytes: 10_000,
    };
    let c0 = Code::ROOT.child(false);
    let c1 = Code::ROOT.child(true);
    let reply = ServerReply {
        confirmed: vec![],
        objects: vec![
            big,
            SpatialObject {
                id: o(51),
                mbr: Rect::from_coords(0.1, 0.0, 0.11, 0.01),
                size_bytes: 600,
            },
            SpatialObject {
                id: o(52),
                mbr: Rect::from_coords(0.2, 0.0, 0.21, 0.01),
                size_bytes: 600,
            },
        ],
        pairs: vec![],
        index: vec![NodeShipment {
            node: n(0),
            level: 0,
            parent: None,
            cells: vec![
                cell(c0, 0.0, CellKind::Object(o(50))),
                cell(c1.child(false), 0.1, CellKind::Object(o(51))),
                cell(c1.child(true), 0.2, CellKind::Object(o(52))),
            ],
        }],
        expansions: 0,
    };
    let mut c = ProactiveCache::new(1 << 20, ReplacementPolicy::Grd3);
    c.absorb(&reply, 1, Point::ORIGIN);
    // Age the cache so the big object has the *lowest* prob but the largest
    // benefit: hits(small) high and recent, hits(big) low.
    for t in 2..20 {
        c.touch(ItemKey::Object(o(51)), t);
        c.touch(ItemKey::Object(o(52)), t);
    }
    // Big object: prob = 1/19; benefit ≈ 10040/19 ≈ 528.
    // Small objects: prob ≈ 1; benefit ≈ 640 each... make benefit of B
    // dominate by shrinking the smalls' probability via aging instead:
    // re-check at a much later T where smalls decayed too.
    let now = 2000;
    // smalls: 19/1999 * 640 ≈ 6.1 each; big: 1/1999 * 10040 ≈ 5.0 — close;
    // push big's hits up a little but keep it the first victim by prob.
    c.touch(ItemKey::Object(o(50)), 25);
    // prob(big) = 2/1999 ≈ .001, benefit ≈ 10.0 > Σ smalls ≈ 12.2? Not yet;
    // touch big once more.
    c.touch(ItemKey::Object(o(50)), 26);
    // prob(big) = 3/1999 ≈ .0015 (still the minimum), benefit ≈ 15.1 >
    // 12.2 ⇒ B-swap fires after big is evicted first.
    c.capacity = 11_000;
    let (_evicted, _) = c.enforce_capacity(now, Point::ORIGIN);
    c.validate().unwrap();
    assert!(
        c.contains_object(o(50)),
        "B-swap must keep the high-benefit item"
    );
    assert!(!c.contains_object(o(51)));
    assert!(!c.contains_object(o(52)));
    assert!(c.used_bytes() <= c.capacity());
}

#[test]
fn invalidate_node_drops_the_whole_subtree() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let before = c.used_bytes();
    // Invalidate leaf 1: its two objects go with it.
    let (items, bytes) = c.invalidate_node(n(1));
    assert_eq!(items, 3);
    assert!(bytes > 0);
    assert_eq!(c.used_bytes(), before - bytes);
    assert!(!c.contains_object(o(10)));
    assert!(!c.contains_object(o(11)));
    assert!(c.contains_object(o(12)), "sibling subtree untouched");
    c.validate().unwrap();
    // Idempotent on missing nodes.
    assert_eq!(c.invalidate_node(n(1)), (0, 0));
    assert_eq!(c.invalidate_node(n(99)), (0, 0));
}

#[test]
fn shallow_invalidation_orphans_children_and_readopts() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let before = c.used_bytes();
    // Shallow-drop the root (a cluster's routing layer changed): only the
    // root view goes; both leaf subtrees survive as orphans.
    let (items, bytes) = c.invalidate_node_shallow(n(0));
    assert_eq!(items, 1);
    assert!(bytes > 0);
    assert_eq!(c.used_bytes(), before - bytes);
    c.validate().unwrap();
    assert!(c.get(ItemKey::Node(n(0))).is_none());
    assert!(c.get(ItemKey::Node(n(1))).unwrap().meta.parent.is_none());
    assert!(c.contains_object(o(10)), "leaf contents survive");
    assert!(c.contains_object(o(12)));
    // Idempotent on missing nodes.
    assert_eq!(c.invalidate_node_shallow(n(0)), (0, 0));
    // When the (new) root layout ships, the orphans are adopted back.
    c.absorb(
        &ServerReply {
            confirmed: vec![],
            objects: vec![],
            pairs: vec![],
            index: vec![sample_reply().index[0].clone()],
            expansions: 0,
        },
        2,
        Point::ORIGIN,
    );
    c.validate().unwrap();
    assert_eq!(
        c.get(ItemKey::Node(n(1))).unwrap().meta.parent,
        Some(ItemKey::Node(n(0)))
    );
    assert_eq!(c.get(ItemKey::Node(n(0))).unwrap().children.len(), 2);
}

#[test]
fn clear_empties_the_cache_and_stays_usable() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let before = c.used_bytes();
    assert!(before > 0);
    let (items, bytes) = c.clear();
    assert_eq!(items, 6);
    assert_eq!(bytes, before);
    assert!(c.is_empty());
    assert_eq!(c.used_bytes(), 0);
    c.validate().unwrap();
    // Clearing twice is a harmless no-op, and the cache absorbs again.
    assert_eq!(c.clear(), (0, 0));
    c.absorb(&sample_reply(), 2, Point::ORIGIN);
    assert_eq!(c.used_bytes(), before);
    c.validate().unwrap();
}

#[test]
fn invalidating_the_root_empties_the_cache() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let (items, _) = c.invalidate_node(n(0));
    assert_eq!(items, 6);
    assert!(c.is_empty());
    assert_eq!(c.used_bytes(), 0);
    c.validate().unwrap();
}

#[test]
fn reabsorbing_after_invalidation_adopts_orphans() {
    let mut c = big_cache(ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    // Drop the root only — impossible through the protocol (cascade), so
    // emulate the orphan state the updates extension can produce by
    // invalidating and re-shipping just the root.
    let root_shipment = sample_reply().index[0].clone();
    // Invalidate the root subtree except... cascade removes everything, so
    // rebuild: absorb leaves-only replies to create orphans.
    c.invalidate_node(n(0));
    let mut leaves_only = sample_reply();
    leaves_only.index.remove(0); // leaf shipments reference parent n0
    c.absorb(&leaves_only, 2, Point::ORIGIN);
    c.validate().unwrap();
    // Orphans: leaves cached without parent.
    assert!(c.get(ItemKey::Node(n(1))).unwrap().meta.parent.is_none());
    // Now the root arrives: orphans must be adopted.
    c.absorb(
        &ServerReply {
            confirmed: vec![],
            objects: vec![],
            pairs: vec![],
            index: vec![root_shipment],
            expansions: 0,
        },
        3,
        Point::ORIGIN,
    );
    c.validate().unwrap();
    assert_eq!(
        c.get(ItemKey::Node(n(1))).unwrap().meta.parent,
        Some(ItemKey::Node(n(0)))
    );
    let root = c.get(ItemKey::Node(n(0))).unwrap();
    assert_eq!(root.children.len(), 2, "both leaves adopted");
}

#[test]
fn stats_ratio_tracks_index_share() {
    let mut c = ProactiveCache::new(10_000, ReplacementPolicy::Grd3);
    c.absorb(&sample_reply(), 1, Point::ORIGIN);
    let s = c.stats();
    assert!(s.index_bytes > 0);
    assert!(s.index_to_cache_ratio() > 0.0);
    assert!(s.index_to_cache_ratio() < 1.0);
    assert_eq!(s.index_bytes + s.object_bytes, s.used_bytes);
}
