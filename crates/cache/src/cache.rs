//! The proactive cache proper: item store, byte accounting, reply
//! absorption (stage ③ of Fig. 3) and the §5 replacement machinery.

use crate::item::{Item, ItemData, ItemKey, ItemMeta};
use crate::node_view::CachedNodeView;
use crate::policy::ReplacementPolicy;
use pc_geom::Point;
use pc_rtree::proto::{
    CellKind, NodeShipment, ServerReply, ENTRY_BYTES, OBJECT_HEADER_BYTES, SHIPMENT_HEADER_BYTES,
};
use pc_rtree::{NodeId, ObjectId};
use std::collections::{BinaryHeap, HashMap};

/// What one reply absorption did to the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InsertOutcome {
    pub inserted_bytes: u64,
    pub evicted_items: usize,
    pub evicted_bytes: u64,
    /// Objects whose supporting leaf was unknown and that therefore could
    /// not be cached (pathological; counted for observability).
    pub skipped_objects: usize,
}

/// Aggregate cache statistics (drives the Fig. 11(b) `i/c` series).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    pub capacity: u64,
    pub used_bytes: u64,
    pub node_items: usize,
    pub object_items: usize,
    pub index_bytes: u64,
    pub object_bytes: u64,
}

impl CacheStats {
    /// Ratio of index size to total cache size (Fig. 11(b)).
    pub fn index_to_cache_ratio(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.index_bytes as f64 / self.capacity as f64
    }
}

/// The proactive cache of §3.2/§5.
#[derive(Clone, Debug)]
pub struct ProactiveCache {
    capacity: u64,
    used: u64,
    policy: ReplacementPolicy,
    items: HashMap<ItemKey, Item>,
    /// Leaf node currently known to hold each object's entry — lets reply
    /// absorption link object items to their supporting leaf in O(1).
    object_parents: HashMap<ObjectId, NodeId>,
    /// Whether the most recent GRD3 eviction took the Definition 5.1
    /// step-(6) B-swap (diagnostics; lets the Theorem 5.5 equivalence test
    /// exclude the one step GRD2 does not have).
    last_bswap: bool,
}

impl ProactiveCache {
    pub fn new(capacity: u64, policy: ReplacementPolicy) -> Self {
        ProactiveCache {
            capacity,
            used: 0,
            policy,
            items: HashMap::new(),
            object_parents: HashMap::new(),
            last_bswap: false,
        }
    }

    /// Reconfigures the byte capacity (the next `enforce_capacity` applies
    /// it); used by experiments that sweep |C|.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Whether the most recent GRD3 eviction ended in the B-swap step.
    pub fn took_bswap(&self) -> bool {
        self.last_bswap
    }

    // ------------------------------------------------------------------
    // Lookups
    // ------------------------------------------------------------------

    #[inline]
    pub fn contains_object(&self, id: ObjectId) -> bool {
        self.items.contains_key(&ItemKey::Object(id))
    }

    pub fn node_view(&self, id: NodeId) -> Option<&CachedNodeView> {
        match self.items.get(&ItemKey::Node(id)) {
            Some(Item {
                data: ItemData::Node(v),
                ..
            }) => Some(v),
            _ => None,
        }
    }

    pub fn get(&self, key: ItemKey) -> Option<&Item> {
        self.items.get(&key)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    pub fn keys(&self) -> impl Iterator<Item = ItemKey> + '_ {
        self.items.keys().copied()
    }

    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            capacity: self.capacity,
            used_bytes: self.used,
            ..Default::default()
        };
        for item in self.items.values() {
            match item.data {
                ItemData::Node(_) => {
                    s.node_items += 1;
                    s.index_bytes += item.meta.size;
                }
                ItemData::Object(_) => {
                    s.object_items += 1;
                    s.object_bytes += item.meta.size;
                }
            }
        }
        s
    }

    // ------------------------------------------------------------------
    // Access bookkeeping
    // ------------------------------------------------------------------

    /// Records that query `now` used this item (§5.2 metadata (4)).
    pub fn touch(&mut self, key: ItemKey, now: u64) {
        if let Some(item) = self.items.get_mut(&key) {
            item.meta.hits += 1;
            item.meta.last_access = now;
        }
    }

    // ------------------------------------------------------------------
    // Reply absorption (stage ③: "the cache manager inserts Rr and Ir")
    // ------------------------------------------------------------------

    /// Inserts a server reply — index shipments first (parents before
    /// children), then objects — and evicts per the configured policy until
    /// the capacity holds again.
    pub fn absorb(&mut self, reply: &ServerReply, now: u64, pos: Point) -> InsertOutcome {
        let mut out = InsertOutcome::default();

        let mut shipments: Vec<&NodeShipment> = reply.index.iter().collect();
        shipments.sort_by_key(|s| std::cmp::Reverse(s.level));
        for s in shipments {
            out.inserted_bytes += self.merge_shipment(s, now);
        }

        for obj in &reply.objects {
            if self.items.contains_key(&ItemKey::Object(obj.id)) {
                continue;
            }
            let Some(&leaf) = self.object_parents.get(&obj.id) else {
                out.skipped_objects += 1;
                continue;
            };
            let key = ItemKey::Object(obj.id);
            let size = OBJECT_HEADER_BYTES + obj.size_bytes as u64;
            let parent_key = ItemKey::Node(leaf);
            debug_assert!(self.items.contains_key(&parent_key));
            if let Some(p) = self.items.get_mut(&parent_key) {
                p.children.push(key);
            }
            self.items.insert(
                key,
                Item {
                    meta: ItemMeta {
                        size,
                        t_insert: now,
                        hits: 1,
                        last_access: now,
                        parent: Some(parent_key),
                        mbr: obj.mbr,
                    },
                    data: ItemData::Object(*obj),
                    children: Vec::new(),
                },
            );
            self.used += size;
            out.inserted_bytes += size;
        }

        let (evicted_items, evicted_bytes) = self.enforce_capacity(now, pos);
        out.evicted_items = evicted_items;
        out.evicted_bytes = evicted_bytes;
        out
    }

    /// Merges one node shipment; returns the byte growth.
    fn merge_shipment(&mut self, s: &NodeShipment, now: u64) -> u64 {
        let key = ItemKey::Node(s.node);
        // Track the supporting-leaf mapping for every full object entry.
        for c in &s.cells {
            if let CellKind::Object(o) = c.kind {
                self.object_parents.insert(o, s.node);
            }
        }
        let grown = match self.items.get_mut(&key) {
            Some(item) => {
                let old = item.meta.size;
                let ItemData::Node(view) = &mut item.data else {
                    unreachable!("node key holds node data")
                };
                view.merge(&s.cells);
                let new = node_item_bytes(view);
                item.meta.size = new;
                item.meta.hits += 1;
                item.meta.last_access = now;
                if let Some(mbr) = view.root_mbr() {
                    item.meta.mbr = mbr;
                }
                // Refinement only adds cells, so the frontier (and size)
                // never shrinks; stay correct even if that ever changes.
                if new >= old {
                    self.used += new - old;
                } else {
                    self.used -= old - new;
                }
                new.saturating_sub(old)
            }
            None => {
                let view = CachedNodeView::new(s.level, &s.cells);
                let size = node_item_bytes(&view);
                let mbr = view.root_mbr().expect("shipment is never empty");
                let parent_key = s.parent.map(ItemKey::Node);
                let parent_key = match parent_key {
                    Some(pk) if self.items.contains_key(&pk) => {
                        self.items.get_mut(&pk).unwrap().children.push(key);
                        Some(pk)
                    }
                    Some(_) => {
                        // Parent neither cached nor shipped: tolerated as
                        // an orphan (evictable on its own; re-linked by
                        // `adopt_orphan` if the parent arrives later). This
                        // only arises after update-driven invalidations.
                        None
                    }
                    None => None,
                };
                self.items.insert(
                    key,
                    Item {
                        meta: ItemMeta {
                            size,
                            t_insert: now,
                            hits: 1,
                            last_access: now,
                            parent: parent_key,
                            mbr,
                        },
                        data: ItemData::Node(view),
                        children: Vec::new(),
                    },
                );
                self.used += size;
                size
            }
        };
        // Adopt cached orphans this node's entries point at (orphans
        // appear when the update-extension invalidates an ancestor while a
        // descendant survives a later re-shipment).
        for c in &s.cells {
            match c.kind {
                CellKind::Object(o) => self.adopt_orphan(key, ItemKey::Object(o)),
                CellKind::Node(child) => self.adopt_orphan(key, ItemKey::Node(child)),
                CellKind::Super => {}
            }
        }
        grown
    }

    // ------------------------------------------------------------------
    // Eviction
    // ------------------------------------------------------------------

    /// Evicts until `used ≤ capacity`; returns `(items, bytes)` evicted.
    pub fn enforce_capacity(&mut self, now: u64, pos: Point) -> (usize, u64) {
        if self.used <= self.capacity {
            return (0, 0);
        }
        match self.policy {
            ReplacementPolicy::Grd3 => self.evict_grd3(now),
            ReplacementPolicy::Grd2 => self.evict_grd2(now),
            _ => self.evict_scan(now, pos),
        }
    }

    /// LRU / MRU / FAR: repeatedly scan hierarchy leaves for the victim.
    fn evict_scan(&mut self, now: u64, pos: Point) -> (usize, u64) {
        let mut count = 0;
        let mut bytes = 0;
        while self.used > self.capacity && !self.items.is_empty() {
            let victim = self
                .items
                .iter()
                .filter(|(_, it)| it.is_hierarchy_leaf())
                .min_by(|(ka, a), (kb, b)| {
                    let score = |it: &Item| -> f64 {
                        match self.policy {
                            ReplacementPolicy::Lru => it.meta.last_access as f64,
                            // Negated so min_by picks the *most* recent.
                            ReplacementPolicy::Mru => -(it.meta.last_access as f64),
                            // Negated so min_by picks the *farthest*.
                            ReplacementPolicy::Far => -it.meta.mbr.center().dist(&pos),
                            _ => unreachable!("scan eviction covers LRU/MRU/FAR"),
                        }
                    };
                    score(a).total_cmp(&score(b)).then(ka.cmp(kb))
                })
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            bytes += self.remove_item(victim);
            count += 1;
        }
        let _ = now;
        (count, bytes)
    }

    /// GRD3 (Definition 5.1): a priority queue `G` over hierarchy leaves
    /// keyed by `prob`; evict cheapest; when a parent runs out of cached
    /// children it joins `G`; finally apply the B-swap guarantee step.
    fn evict_grd3(&mut self, now: u64) -> (usize, u64) {
        #[derive(PartialEq)]
        struct Victim(f64, ItemKey);
        impl Eq for Victim {}
        impl PartialOrd for Victim {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Victim {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on (prob, key) via reversed comparison.
                other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
            }
        }

        self.last_bswap = false;
        // Step (1): discard items too large ever to be kept.
        let mut count = 0;
        let mut bytes = 0;
        bytes += self.discard_oversize(&mut count);

        // Step (2): heapify the hierarchy leaves.
        let mut heap: BinaryHeap<Victim> = self
            .items
            .iter()
            .filter(|(_, it)| it.is_hierarchy_leaf())
            .map(|(k, it)| Victim(it.prob(now), *k))
            .collect();

        let mut last_removed: Option<ItemKey> = None;
        let mut last_removed_benefit = 0.0;
        let mut last_removed_item: Option<Item> = None;

        // Steps (3)-(5).
        while self.used > self.capacity {
            let Some(Victim(prob, key)) = heap.pop() else {
                break;
            };
            // Lazy invalidation: skip stale entries.
            let Some(item) = self.items.get(&key) else {
                continue;
            };
            if !item.is_hierarchy_leaf() || (item.prob(now) - prob).abs() > 1e-12 {
                continue;
            }
            last_removed_benefit = prob * item.meta.size as f64;
            last_removed = Some(key);
            last_removed_item = Some(item.clone());
            let parent = item.meta.parent;
            bytes += self.remove_item(key);
            count += 1;
            // Step (4): a parent that just became a leaf joins G.
            if let Some(pk) = parent {
                if let Some(p) = self.items.get(&pk) {
                    if p.is_hierarchy_leaf() {
                        heap.push(Victim(p.prob(now), pk));
                    }
                }
            }
        }

        // Step (6): the B-swap approximation guarantee.
        if let (Some(b_key), Some(b_item)) = (last_removed, last_removed_item) {
            let remaining_benefit: f64 = self
                .items
                .values()
                .map(|it| it.prob(now) * it.meta.size as f64)
                .sum();
            if last_removed_benefit > remaining_benefit && b_item.meta.size <= self.capacity {
                self.last_bswap = true;
                // Remove everything remaining; re-insert B as an orphan.
                let all: Vec<ItemKey> = self.items.keys().copied().collect();
                for k in all {
                    if self.items.contains_key(&k) {
                        bytes += self.remove_subtree(k, &mut count);
                    }
                }
                let mut b = b_item;
                b.meta.parent = None;
                b.children.clear();
                self.used += b.meta.size;
                if let (ItemData::Node(v), ItemKey::Node(nid)) = (&b.data, b_key) {
                    for o in v.object_entries() {
                        self.object_parents.insert(o, nid);
                    }
                }
                bytes = bytes.saturating_sub(b.meta.size);
                self.items.insert(b_key, b);
                count = count.saturating_sub(1);
            }
        }

        (count, bytes)
    }

    /// GRD2 (§5.1): recompute EBRS for every item, evict the minimum with
    /// its whole subtree, repeat. Kept as the reference implementation for
    /// the Theorem 5.5 equivalence tests; quadratic and proud of it.
    ///
    /// Tie handling: a hierarchy leaf's EBRS equals its `prob`
    /// (Corollary 5.1) and Lemma 5.4 guarantees the minimum is attained at
    /// a leaf; when an interior item *ties* with the minimum (degenerate
    /// weighted averages) we prefer the leaf, matching what any greedy that
    /// removes one knapsack item at a time would do.
    fn evict_grd2(&mut self, now: u64) -> (usize, u64) {
        let mut count = 0;
        let mut bytes = 0;
        bytes += self.discard_oversize(&mut count);
        while self.used > self.capacity && !self.items.is_empty() {
            let mut memo: HashMap<ItemKey, (f64, u64)> = HashMap::new(); // (benefit, SIZE)
            let keys: Vec<ItemKey> = self.items.keys().copied().collect();
            for k in &keys {
                self.benefit_size(*k, now, &mut memo);
            }
            // Corollary 5.1 exactness: leaves use `prob` directly instead
            // of the round-tripped (prob·size)/size division.
            let ebrs = |k: &ItemKey| -> f64 {
                let item = &self.items[k];
                if item.is_hierarchy_leaf() {
                    item.prob(now)
                } else {
                    memo[k].0 / memo[k].1 as f64
                }
            };
            // Mathematical ties (equal probs across a subtree) surface as
            // ulp-level EBRS differences after the summation/division, so
            // the comparison treats near-equal values as equal before the
            // leaf-preference and key tie-breaks.
            let cmp_ebrs = |x: f64, y: f64| -> std::cmp::Ordering {
                if (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-300) {
                    std::cmp::Ordering::Equal
                } else {
                    x.total_cmp(&y)
                }
            };
            let victim = keys
                .iter()
                .min_by(|a, b| {
                    let leaf = |k: &ItemKey| !self.items[k].is_hierarchy_leaf();
                    cmp_ebrs(ebrs(a), ebrs(b))
                        .then(leaf(a).cmp(&leaf(b)))
                        .then(a.cmp(b))
                })
                .copied();
            let Some(victim) = victim else { break };
            bytes += self.remove_subtree(victim, &mut count);
        }
        (count, bytes)
    }

    /// Step (1) of Definition 5.1 (shared with the GRD2 reference): discard
    /// any item that could never be kept within the capacity.
    fn discard_oversize(&mut self, count: &mut usize) -> u64 {
        let oversize: Vec<ItemKey> = self
            .items
            .iter()
            .filter(|(_, it)| it.meta.size > self.capacity)
            .map(|(k, _)| *k)
            .collect();
        let mut bytes = 0;
        for k in oversize {
            if self.items.contains_key(&k) {
                bytes += self.remove_subtree(k, count);
            }
        }
        bytes
    }

    /// Subtree benefit `Σ prob·size` and `SIZE` (§5.1) with memoization.
    fn benefit_size(
        &self,
        key: ItemKey,
        now: u64,
        memo: &mut HashMap<ItemKey, (f64, u64)>,
    ) -> (f64, u64) {
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let item = &self.items[&key];
        let mut benefit = item.prob(now) * item.meta.size as f64;
        let mut size = item.meta.size;
        for c in item.children.clone() {
            let (b, s) = self.benefit_size(c, now, memo);
            benefit += b;
            size += s;
        }
        memo.insert(key, (benefit, size));
        (benefit, size)
    }

    /// Re-links a cached orphan under its (about-to-exist or existing)
    /// parent item. No-op unless `child` exists, is parentless, and
    /// `parent` exists.
    fn adopt_orphan(&mut self, parent: ItemKey, child: ItemKey) {
        if parent == child {
            return;
        }
        let is_orphan = matches!(
            self.items.get(&child),
            Some(item) if item.meta.parent.is_none()
        );
        if !is_orphan || !self.items.contains_key(&parent) {
            return;
        }
        if let Some(p) = self.items.get_mut(&parent) {
            p.children.push(child);
        }
        self.items.get_mut(&child).unwrap().meta.parent = Some(parent);
    }

    /// Drops a node item and every cached descendant — the invalidation
    /// primitive of the server-update extension (stale index knowledge must
    /// go, and the §5 constraint says descendants go with it). Returns
    /// `(items, bytes)` dropped; `(0, 0)` when the node is not cached.
    pub fn invalidate_node(&mut self, node: NodeId) -> (usize, u64) {
        let key = ItemKey::Node(node);
        if !self.items.contains_key(&key) {
            return (0, 0);
        }
        let mut count = 0;
        let bytes = self.remove_subtree(key, &mut count);
        (count, bytes)
    }

    /// Drops only `node`'s own view, leaving cached descendants behind as
    /// orphans (parent links cleared; re-linked by `adopt_orphan` when a
    /// fresh shipment for `node` arrives). This is the right response when
    /// the invalidated view is pure *routing* metadata whose children are
    /// independently versioned — a sharded cluster's virtual super-root,
    /// whose shard subtrees carry their own per-shard invalidation
    /// entries. Returns `(items, bytes)` dropped (0 or 1 items).
    pub fn invalidate_node_shallow(&mut self, node: NodeId) -> (usize, u64) {
        let key = ItemKey::Node(node);
        if !self.items.contains_key(&key) {
            return (0, 0);
        }
        let children = std::mem::take(&mut self.items.get_mut(&key).unwrap().children);
        for c in children {
            if let Some(child) = self.items.get_mut(&c) {
                child.meta.parent = None;
            }
        }
        (1, self.remove_item(key))
    }

    /// Drops *everything* — the client's response to a full-refresh
    /// refusal (§7 extension): the server pruned invalidation history below
    /// the client's epoch, so no per-node list exists and the whole cache
    /// is suspect. Returns `(items, bytes)` dropped.
    pub fn clear(&mut self) -> (usize, u64) {
        let count = self.items.len();
        let bytes = self.used;
        self.items.clear();
        self.object_parents.clear();
        self.used = 0;
        self.last_bswap = false;
        (count, bytes)
    }

    /// Removes a single (leaf) item; unlinks it from its parent and cleans
    /// the object-parent map. Returns the bytes freed.
    fn remove_item(&mut self, key: ItemKey) -> u64 {
        let Some(item) = self.items.remove(&key) else {
            return 0;
        };
        debug_assert!(
            item.children.is_empty(),
            "remove_item on non-leaf {key}; use remove_subtree"
        );
        self.used -= item.meta.size;
        if let Some(pk) = item.meta.parent {
            if let Some(p) = self.items.get_mut(&pk) {
                p.children.retain(|&c| c != key);
            }
        }
        if let ItemData::Node(view) = &item.data {
            if let ItemKey::Node(nid) = key {
                for o in view.object_entries() {
                    if self.object_parents.get(&o) == Some(&nid) {
                        self.object_parents.remove(&o);
                    }
                }
            }
        }
        item.meta.size
    }

    /// Removes an item and all cached descendants (the §5 constraint).
    fn remove_subtree(&mut self, key: ItemKey, count: &mut usize) -> u64 {
        let Some(item) = self.items.get(&key) else {
            return 0;
        };
        let children = item.children.clone();
        let mut bytes = 0;
        for c in children {
            bytes += self.remove_subtree(c, count);
        }
        bytes += self.remove_item(key);
        *count += 1;
        bytes
    }

    // ------------------------------------------------------------------
    // Validation (test support)
    // ------------------------------------------------------------------

    /// Structural validation of every §5 invariant; used by tests and
    /// debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let mut sum = 0u64;
        for (key, item) in &self.items {
            sum += item.meta.size;
            if let Some(pk) = item.meta.parent {
                let p = self
                    .items
                    .get(&pk)
                    .ok_or_else(|| format!("{key}: dangling parent {pk}"))?;
                if !p.children.contains(key) {
                    return Err(format!("{key}: parent {pk} does not list it"));
                }
            }
            for c in &item.children {
                let child = self
                    .items
                    .get(c)
                    .ok_or_else(|| format!("{key}: dangling child {c}"))?;
                if child.meta.parent != Some(*key) {
                    return Err(format!("{c}: wrong parent, expected {key}"));
                }
            }
            match (&item.data, key) {
                (ItemData::Node(v), ItemKey::Node(_)) => {
                    v.debug_validate().map_err(|e| format!("{key}: {e}"))?;
                    if item.meta.size != node_item_bytes(v) {
                        return Err(format!("{key}: stale size"));
                    }
                }
                (ItemData::Object(o), ItemKey::Object(id)) => {
                    if o.id != *id {
                        return Err(format!("{key}: object id mismatch"));
                    }
                }
                _ => return Err(format!("{key}: key/data kind mismatch")),
            }
        }
        if sum != self.used {
            return Err(format!("used {} != sum of sizes {sum}", self.used));
        }
        if self.used > self.capacity {
            return Err(format!("over capacity: {} > {}", self.used, self.capacity));
        }
        for (o, n) in &self.object_parents {
            match self.node_view(*n) {
                Some(v) => {
                    if !v.object_entries().any(|x| x == *o) {
                        return Err(format!("object_parents[{o}] = {n} has no entry"));
                    }
                }
                None => return Err(format!("object_parents[{o}] -> missing node {n}")),
            }
        }
        // Every cached object must be supported by a known leaf entry —
        // except B-swap orphans (parent == None), which are harmless
        // payload retained without index support.
        for (key, item) in &self.items {
            if let ItemKey::Object(o) = key {
                if item.meta.parent.is_some() && !self.object_parents.contains_key(o) {
                    return Err(format!("cached object {o} has no supporting leaf"));
                }
            }
        }
        Ok(())
    }
}

/// Byte footprint of a node item: its transmitted frontier plus a header —
/// what the paper charges the cache for index knowledge.
pub(crate) fn node_item_bytes(view: &CachedNodeView) -> u64 {
    SHIPMENT_HEADER_BYTES + view.frontier_len() as u64 * ENTRY_BYTES
}

#[cfg(test)]
mod tests;
