//! Cache items and their §5.2 metadata.

use crate::node_view::CachedNodeView;
use pc_geom::Rect;
use pc_rtree::{NodeId, ObjectId, SpatialObject};

/// Identity of a cached item: an index node's partial view, or an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemKey {
    Node(NodeId),
    Object(ObjectId),
}

impl std::fmt::Display for ItemKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItemKey::Node(n) => write!(f, "{n}"),
            ItemKey::Object(o) => write!(f, "{o}"),
        }
    }
}

/// Per-item metadata, following the paper's §5.2 list: (1) physical address
/// (the map key), (2) size, (3) time of insertion "in terms of the sequence
/// id of the query", (4) number of hit queries, (5) parent item id, (6)
/// number of cached children (here the children list itself, which several
/// policies need anyway).
#[derive(Clone, Copy, Debug)]
pub struct ItemMeta {
    pub size: u64,
    /// Query sequence id at insertion.
    pub t_insert: u64,
    /// Queries that accessed this item.
    pub hits: u64,
    /// Query sequence id of the most recent access (LRU/MRU).
    pub last_access: u64,
    pub parent: Option<ItemKey>,
    /// Representative MBR (node root / object MBR) for the FAR policy.
    pub mbr: Rect,
}

/// Item payload.
#[derive(Clone, Debug)]
pub enum ItemData {
    Node(CachedNodeView),
    Object(SpatialObject),
}

/// A cached item: metadata, payload, and the cached-children list that
/// makes the §5 hierarchy explicit.
#[derive(Clone, Debug)]
pub struct Item {
    pub meta: ItemMeta,
    pub data: ItemData,
    pub children: Vec<ItemKey>,
}

impl Item {
    /// A hierarchy leaf has no cached children — the only kind of item any
    /// policy evicts directly (Lemma 5.4 shows GRD2 never picks anything
    /// else, and leaf-only eviction keeps the §5 cascade constraint free).
    #[inline]
    pub fn is_hierarchy_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The paper's practical access-probability estimate:
    /// `prob = #hit_queries / (T − time_of_insertion)` (§5.2), with the
    /// denominator clamped so an item inserted by the current query has
    /// `prob = hits`.
    #[inline]
    pub fn prob(&self, now: u64) -> f64 {
        self.meta.hits as f64 / (now.saturating_sub(self.meta.t_insert)).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::Point;

    fn obj_item(hits: u64, t_insert: u64) -> Item {
        Item {
            meta: ItemMeta {
                size: 100,
                t_insert,
                hits,
                last_access: t_insert,
                parent: None,
                mbr: Rect::from_point(Point::ORIGIN),
            },
            data: ItemData::Object(SpatialObject {
                id: ObjectId(0),
                mbr: Rect::from_point(Point::ORIGIN),
                size_bytes: 100,
            }),
            children: Vec::new(),
        }
    }

    #[test]
    fn prob_decays_with_age() {
        let item = obj_item(2, 10);
        assert_eq!(item.prob(10), 2.0); // just inserted: denominator clamps to 1
        assert_eq!(item.prob(12), 1.0);
        assert_eq!(item.prob(30), 0.1);
    }

    #[test]
    fn leaf_detection_follows_children() {
        let mut item = obj_item(1, 0);
        assert!(item.is_hierarchy_leaf());
        item.children.push(ItemKey::Object(ObjectId(9)));
        assert!(!item.is_hierarchy_leaf());
    }
}
