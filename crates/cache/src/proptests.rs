//! Property tests for the cache, centered on Theorem 5.5: GRD3 must evict
//! exactly what the EBRS-greedy GRD2 evicts, on randomized item
//! hierarchies, while every structural invariant holds for every policy.

use crate::cache::ProactiveCache;
use crate::item::ItemKey;
use crate::policy::ReplacementPolicy;
use pc_geom::{Point, Rect};
use pc_rtree::bpt::Code;
use pc_rtree::proto::{CellKind, CellRecord, NodeShipment, ServerReply};
use pc_rtree::{NodeId, ObjectId, SpatialObject};
use proptest::prelude::*;

/// Builds a randomized two-level reply: one root, `leaves` leaf nodes, and
/// per-leaf objects with randomized sizes. Returns the reply plus the
/// object ids.
fn synth_reply(leaves: usize, objs_per_leaf: &[usize], sizes: &[u32]) -> ServerReply {
    assert_eq!(leaves, objs_per_leaf.len());
    let mut index = Vec::new();
    let mut objects = Vec::new();
    // Root node 0: a balanced antichain of `leaves` entry cells. For
    // simplicity give every leaf an entry cell on a left-spine antichain:
    // codes 0, 10, 110, ..., 1^k.
    let mut cells = Vec::new();
    let mut code = Code::ROOT;
    let mut next_obj = 100u32;
    for li in 0..leaves {
        let leaf_id = NodeId(1 + li as u32);
        let my_code = if li + 1 == leaves {
            code
        } else {
            let c = code.child(false);
            code = code.child(true);
            c
        };
        let x = li as f64 * 0.1;
        cells.push(CellRecord {
            code: my_code,
            mbr: Rect::from_coords(x, 0.0, x + 0.05, 0.05),
            kind: CellKind::Node(leaf_id),
        });
        // Leaf shipment with its objects on the same spine scheme.
        let mut leaf_cells = Vec::new();
        let mut lcode = Code::ROOT;
        let n_obj = objs_per_leaf[li].max(1);
        for oi in 0..n_obj {
            let oid = ObjectId(next_obj);
            next_obj += 1;
            let oc = if oi + 1 == n_obj {
                lcode
            } else {
                let c = lcode.child(false);
                lcode = lcode.child(true);
                c
            };
            let ox = x + oi as f64 * 0.001;
            let mbr = Rect::from_coords(ox, 0.0, ox + 0.0005, 0.0005);
            leaf_cells.push(CellRecord {
                code: oc,
                mbr,
                kind: CellKind::Object(oid),
            });
            let size = sizes[(li * 7 + oi) % sizes.len()].max(1);
            objects.push(SpatialObject {
                id: oid,
                mbr,
                size_bytes: size,
            });
        }
        index.push(NodeShipment {
            node: leaf_id,
            level: 0,
            parent: Some(NodeId(0)),
            cells: leaf_cells,
        });
    }
    index.insert(
        0,
        NodeShipment {
            node: NodeId(0),
            level: 1,
            parent: None,
            cells,
        },
    );
    ServerReply {
        confirmed: vec![],
        objects,
        pairs: vec![],
        index,
        expansions: 0,
    }
}

fn loaded_cache(
    policy: ReplacementPolicy,
    reply: &ServerReply,
    touches: &[(u32, u64)],
) -> ProactiveCache {
    let mut c = ProactiveCache::new(u64::MAX / 2, policy);
    c.absorb(reply, 1, Point::ORIGIN);
    for &(oid, t) in touches {
        // Touch the ancestor chain too: real traversals access every index
        // node on the way to an object, which is exactly the monotonicity
        // (Lemma 5.3) that makes GRD2 and GRD3 provably equivalent.
        let mut cur = Some(ItemKey::Object(ObjectId(oid)));
        while let Some(k) = cur {
            cur = c.get(k).and_then(|it| it.meta.parent);
            c.touch(k, t);
        }
    }
    c
}

fn surviving_keys(c: &ProactiveCache) -> Vec<ItemKey> {
    let mut keys: Vec<ItemKey> = c.keys().collect();
    keys.sort();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.5 step (2): GRD3's eviction outcome equals GRD2's.
    #[test]
    fn grd3_matches_grd2(
        objs_per_leaf in prop::collection::vec(1usize..4, 1..5),
        sizes in prop::collection::vec(100u32..5000, 3),
        touches in prop::collection::vec((100u32..120, 2u64..40), 0..30),
        cap_frac in 0.2f64..0.95,
        now in 50u64..200,
    ) {
        let leaves = objs_per_leaf.len();
        let reply = synth_reply(leaves, &objs_per_leaf, &sizes);
        let mut g2 = loaded_cache(ReplacementPolicy::Grd2, &reply, &touches);
        let mut g3 = loaded_cache(ReplacementPolicy::Grd3, &reply, &touches);
        let cap = (g2.used_bytes() as f64 * cap_frac) as u64;
        g2.set_capacity(cap);
        g3.set_capacity(cap);
        g2.enforce_capacity(now, Point::ORIGIN);
        g3.enforce_capacity(now, Point::ORIGIN);
        g2.validate().unwrap();
        g3.validate().unwrap();
        // The B-swap (Definition 5.1 step 6) is the one step GRD2 lacks;
        // outcomes are only claimed equal for the greedy phase.
        prop_assume!(!g3.took_bswap());
        prop_assert_eq!(surviving_keys(&g2), surviving_keys(&g3));
    }

    /// All policies keep every invariant under repeated shrinking.
    #[test]
    fn all_policies_maintain_invariants(
        objs_per_leaf in prop::collection::vec(1usize..5, 1..6),
        sizes in prop::collection::vec(100u32..8000, 4),
        touches in prop::collection::vec((100u32..130, 2u64..40), 0..40),
        fracs in prop::collection::vec(0.1f64..0.9, 1..4),
    ) {
        let leaves = objs_per_leaf.len();
        let reply = synth_reply(leaves, &objs_per_leaf, &sizes);
        for policy in ReplacementPolicy::ALL {
            let mut c = loaded_cache(policy, &reply, &touches);
            for (i, f) in fracs.iter().enumerate() {
                let cap = (c.used_bytes() as f64 * f) as u64;
                c.set_capacity(cap);
                c.enforce_capacity(50 + i as u64, Point::new(0.3, 0.3));
                prop_assert!(c.used_bytes() <= cap.max(1) || c.is_empty());
                c.validate().map_err(|e| {
                    TestCaseError::fail(format!("{policy}: {e}"))
                })?;
            }
        }
    }

    /// Absorbing the same reply twice never double-counts bytes.
    #[test]
    fn absorb_idempotent(
        objs_per_leaf in prop::collection::vec(1usize..4, 1..4),
        sizes in prop::collection::vec(100u32..4000, 3),
    ) {
        let reply = synth_reply(objs_per_leaf.len(), &objs_per_leaf, &sizes);
        let mut c = ProactiveCache::new(u64::MAX / 2, ReplacementPolicy::Grd3);
        c.absorb(&reply, 1, Point::ORIGIN);
        let used = c.used_bytes();
        let items = c.len();
        c.absorb(&reply, 2, Point::ORIGIN);
        prop_assert_eq!(c.used_bytes(), used);
        prop_assert_eq!(c.len(), items);
        c.validate().unwrap();
    }
}
