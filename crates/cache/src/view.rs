//! [`CacheView`]: the client's [`IndexView`] over the proactive cache —
//! what stage ① of Fig. 3 navigates. Cells the cache does not hold expand
//! to [`Expansion::Missing`], which the engine turns into remainder-query
//! entries.

use crate::cache::ProactiveCache;
use pc_geom::Rect;
use pc_rtree::engine::{CellChild, Expansion, IndexView, Target};
use pc_rtree::proto::{CellKind, CellRef};
use pc_rtree::{NodeId, RTree};

/// Static catalog metadata the client receives out of band (root id and
/// MBR) — the paper's client must know where the index starts even with a
/// cold cache (its very first remainder is `{Q, [root]}`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Catalog {
    pub root: Option<(NodeId, Rect)>,
}

impl Catalog {
    pub fn from_tree(tree: &RTree) -> Self {
        Catalog {
            root: tree.root_mbr().map(|mbr| (tree.root(), mbr)),
        }
    }

    pub fn empty() -> Self {
        Catalog { root: None }
    }
}

/// Read-only view of the cache for the query engine.
pub struct CacheView<'a> {
    cache: &'a ProactiveCache,
    catalog: Catalog,
}

impl<'a> CacheView<'a> {
    pub fn new(cache: &'a ProactiveCache, catalog: Catalog) -> Self {
        CacheView { cache, catalog }
    }
}

impl IndexView for CacheView<'_> {
    fn root(&self) -> Option<(Rect, CellRef)> {
        self.catalog
            .root
            .map(|(node, mbr)| (mbr, CellRef::node_root(node)))
    }

    fn expand(&self, cell: CellRef) -> Expansion {
        let Some(view) = self.cache.node_view(cell.node) else {
            return Expansion::Missing;
        };
        let Some(vc) = view.cell(cell.code) else {
            // The engine only asks about codes it has seen; an absent code
            // here means the item was reshaped concurrently — treat as a
            // miss rather than corrupting the traversal.
            debug_assert!(false, "unknown cell {cell} in cached view");
            return Expansion::Missing;
        };
        match vc.kind {
            CellKind::Node(child) => Expansion::Children(vec![CellChild {
                mbr: vc.mbr,
                target: Target::Cell(CellRef::node_root(child)),
            }]),
            CellKind::Object(id) => Expansion::Children(vec![CellChild {
                mbr: vc.mbr,
                target: Target::Object {
                    id,
                    cached: self.cache.contains_object(id),
                },
            }]),
            CellKind::Super => match view.children(cell.code) {
                Some(children) => Expansion::Children(
                    children
                        .iter()
                        .map(|(code, c)| CellChild {
                            mbr: c.mbr,
                            target: Target::Cell(CellRef {
                                node: cell.node,
                                code: *code,
                            }),
                        })
                        .collect(),
                ),
                None => Expansion::Missing,
            },
        }
    }

    fn authoritative(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use pc_geom::Point;
    use pc_rtree::bpt::Code;
    use pc_rtree::proto::{CellRecord, NodeShipment, ServerReply};
    use pc_rtree::{ObjectId, SpatialObject};

    fn build_cache() -> ProactiveCache {
        let c0 = Code::ROOT.child(false);
        let c1 = Code::ROOT.child(true);
        let reply = ServerReply {
            confirmed: vec![],
            objects: vec![SpatialObject {
                id: ObjectId(7),
                mbr: Rect::from_coords(0.0, 0.0, 0.01, 0.01),
                size_bytes: 500,
            }],
            pairs: vec![],
            index: vec![
                NodeShipment {
                    node: NodeId(0),
                    level: 1,
                    parent: None,
                    cells: vec![
                        CellRecord {
                            code: c0,
                            mbr: Rect::from_coords(0.0, 0.0, 0.2, 0.2),
                            kind: CellKind::Node(NodeId(1)),
                        },
                        CellRecord {
                            code: c1,
                            mbr: Rect::from_coords(0.5, 0.5, 0.9, 0.9),
                            kind: CellKind::Super,
                        },
                    ],
                },
                NodeShipment {
                    node: NodeId(1),
                    level: 0,
                    parent: Some(NodeId(0)),
                    cells: vec![CellRecord {
                        code: Code::ROOT,
                        mbr: Rect::from_coords(0.0, 0.0, 0.01, 0.01),
                        kind: CellKind::Object(ObjectId(7)),
                    }],
                },
            ],
            expansions: 0,
        };
        let mut cache = ProactiveCache::new(1 << 20, ReplacementPolicy::Grd3);
        cache.absorb(&reply, 1, Point::ORIGIN);
        cache
    }

    #[test]
    fn root_comes_from_catalog() {
        let cache = ProactiveCache::new(1024, ReplacementPolicy::Grd3);
        let catalog = Catalog {
            root: Some((NodeId(0), Rect::UNIT)),
        };
        let view = CacheView::new(&cache, catalog);
        let (mbr, cell) = view.root().unwrap();
        assert_eq!(mbr, Rect::UNIT);
        assert_eq!(cell, CellRef::node_root(NodeId(0)));
        assert!(!view.authoritative());
        let empty = CacheView::new(&cache, Catalog::empty());
        assert!(empty.root().is_none());
    }

    #[test]
    fn expand_missing_node_is_missing() {
        let cache = build_cache();
        let view = CacheView::new(
            &cache,
            Catalog {
                root: Some((NodeId(0), Rect::UNIT)),
            },
        );
        assert_eq!(
            view.expand(CellRef::node_root(NodeId(99))),
            Expansion::Missing
        );
    }

    #[test]
    fn expand_super_frontier_is_missing() {
        let cache = build_cache();
        let view = CacheView::new(
            &cache,
            Catalog {
                root: Some((NodeId(0), Rect::UNIT)),
            },
        );
        // Cell 1 of node 0 is a frontier super entry: no children known.
        let c1 = CellRef {
            node: NodeId(0),
            code: Code::ROOT.child(true),
        };
        assert_eq!(view.expand(c1), Expansion::Missing);
    }

    #[test]
    fn expand_walks_to_cached_object() {
        let cache = build_cache();
        let view = CacheView::new(
            &cache,
            Catalog {
                root: Some((NodeId(0), Rect::UNIT)),
            },
        );
        // Root cell expands to its two BPT children.
        let Expansion::Children(kids) = view.expand(CellRef::node_root(NodeId(0))) else {
            panic!("root must expand")
        };
        assert_eq!(kids.len(), 2);
        // Child 0 is a full entry pointing to node 1.
        let c0 = CellRef {
            node: NodeId(0),
            code: Code::ROOT.child(false),
        };
        let Expansion::Children(kids) = view.expand(c0) else {
            panic!("entry cell must expand")
        };
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].target, Target::Cell(CellRef::node_root(NodeId(1))));
        // Node 1's root cell is a leaf entry for the cached object 7.
        let Expansion::Children(kids) = view.expand(CellRef::node_root(NodeId(1))) else {
            panic!("leaf root must expand")
        };
        assert_eq!(
            kids[0].target,
            Target::Object {
                id: ObjectId(7),
                cached: true
            }
        );
    }
}
