//! The client's partial picture of one R-tree node: a prefix subtree of the
//! node's BPT, grown by merging the covering antichains the server ships
//! (full forms, compact forms, d⁺-level forms — the view cannot tell and
//! does not care).

use pc_geom::Rect;
use pc_rtree::bpt::Code;
use pc_rtree::proto::{CellKind, CellRecord};
use std::collections::HashMap;

/// One known cell of the node's BPT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ViewCell {
    pub mbr: Rect,
    pub kind: CellKind,
}

/// Partial knowledge about one node.
///
/// Invariants (checked by `debug_validate`):
/// * the root code `ε` is always present;
/// * cells come in sibling pairs: for any non-root cell, its sibling is
///   present too (shipments are covering antichains, ancestors are
///   synthesized as unions — see [`CachedNodeView::merge`]).
#[derive(Clone, Debug)]
pub struct CachedNodeView {
    level: u16,
    cells: HashMap<Code, ViewCell>,
}

impl CachedNodeView {
    /// Builds a view from the first shipment for this node.
    pub fn new(level: u16, records: &[CellRecord]) -> Self {
        let mut v = CachedNodeView {
            level,
            cells: HashMap::with_capacity(records.len() * 2),
        };
        v.merge(records);
        v
    }

    pub fn level(&self) -> u16 {
        self.level
    }

    /// Merges a shipment into the view. Shipped cells are inserted verbatim
    /// and every missing ancestor is synthesized as the union of its two
    /// children (sound because each shipment is a *covering antichain* of
    /// the subtree under the cell the client asked about, so sibling
    /// information is always complete up to an already-known cell).
    pub fn merge(&mut self, records: &[CellRecord]) {
        self.merge_records(records);
        if cfg!(debug_assertions) {
            if let Err(e) = self.debug_validate() {
                panic!(
                    "view invariant broken: {e}; level={} records={:?} cells={:?}",
                    self.level,
                    records,
                    self.cells.keys().collect::<Vec<_>>()
                );
            }
        }
    }

    fn merge_records(&mut self, records: &[CellRecord]) {
        for r in records {
            self.cells.insert(
                r.code,
                ViewCell {
                    mbr: r.mbr,
                    kind: r.kind,
                },
            );
        }
        // Synthesize ancestors bottom-up: deepest codes first.
        let mut codes: Vec<Code> = records.iter().map(|r| r.code).collect();
        codes.sort_by_key(|c| std::cmp::Reverse(c.depth()));
        for code in codes {
            let mut cur = code;
            while let Some(parent) = cur.parent() {
                if self.cells.contains_key(&parent) {
                    break;
                }
                let left = parent.child(false);
                let right = parent.child(true);
                let (Some(l), Some(r)) = (self.cells.get(&left), self.cells.get(&right)) else {
                    // Sibling not yet inserted — a later record of this
                    // batch will complete the pair and synthesize upwards.
                    break;
                };
                let mbr = l.mbr.union(&r.mbr);
                self.cells.insert(
                    parent,
                    ViewCell {
                        mbr,
                        kind: CellKind::Super,
                    },
                );
                cur = parent;
            }
        }
    }

    #[inline]
    pub fn cell(&self, code: Code) -> Option<&ViewCell> {
        self.cells.get(&code)
    }

    /// Children of a super cell, if known.
    pub fn children(&self, code: Code) -> Option<[(Code, &ViewCell); 2]> {
        let l = code.child(false);
        let r = code.child(true);
        match (self.cells.get(&l), self.cells.get(&r)) {
            (Some(lc), Some(rc)) => Some([(l, lc), (r, rc)]),
            _ => None,
        }
    }

    /// Number of *frontier* cells: the finest known antichain, i.e. cells
    /// with no children in the view. This is what the cache charges for —
    /// interior cells are synthesized bookkeeping, not transmitted state.
    pub fn frontier_len(&self) -> usize {
        self.cells
            .keys()
            .filter(|c| !self.cells.contains_key(&c.child(false)))
            .count()
    }

    /// All object entries currently known in this (leaf) node's view.
    pub fn object_entries(&self) -> impl Iterator<Item = pc_rtree::ObjectId> + '_ {
        self.cells.values().filter_map(|c| match c.kind {
            CellKind::Object(o) => Some(o),
            _ => None,
        })
    }

    /// All child-node entries currently known in this node's view.
    pub fn node_entries(&self) -> impl Iterator<Item = pc_rtree::NodeId> + '_ {
        self.cells.values().filter_map(|c| match c.kind {
            CellKind::Node(n) => Some(n),
            _ => None,
        })
    }

    /// MBR of the whole node as known (the root cell's MBR).
    pub fn root_mbr(&self) -> Option<Rect> {
        self.cells.get(&Code::ROOT).map(|c| c.mbr)
    }

    /// Exports the finest known antichain as shippable cell records — what
    /// a *peer* serves to a neighbor in the cache-collaboration extension.
    /// The frontier is a covering antichain by construction, so the
    /// receiver can merge it exactly like a server shipment.
    pub fn frontier_records(&self) -> Vec<CellRecord> {
        let mut out: Vec<CellRecord> = self
            .cells
            .iter()
            .filter(|(code, _)| !self.cells.contains_key(&code.child(false)))
            .map(|(code, cell)| CellRecord {
                code: *code,
                mbr: cell.mbr,
                kind: cell.kind,
            })
            .collect();
        out.sort_by_key(|r| r.code);
        out
    }

    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Checks the structural invariants; used by debug assertions and tests.
    pub fn debug_validate(&self) -> Result<(), String> {
        if self.cells.is_empty() {
            return Err("empty view".into());
        }
        if !self.cells.contains_key(&Code::ROOT) {
            return Err("root cell missing".into());
        }
        for code in self.cells.keys() {
            if let Some(parent) = code.parent() {
                let sibling = if code.bit(code.depth() - 1) {
                    parent.child(false)
                } else {
                    parent.child(true)
                };
                if !self.cells.contains_key(&sibling) {
                    return Err(format!("cell {code} lacks sibling"));
                }
                if !self.cells.contains_key(&parent) {
                    return Err(format!("cell {code} lacks parent"));
                }
                // Parent MBR must cover the child.
                let p = &self.cells[&parent];
                let c = &self.cells[code];
                if !p.mbr.contains_rect(&c.mbr) {
                    return Err(format!("parent of {code} does not cover it"));
                }
            }
            if let CellKind::Node(_) | CellKind::Object(_) = self.cells[code].kind {
                if self.cells.contains_key(&code.child(false)) {
                    return Err(format!("entry cell {code} has children"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_rtree::{NodeId, ObjectId};

    fn rec(code: Code, x: f64, kind: CellKind) -> CellRecord {
        CellRecord {
            code,
            mbr: Rect::from_coords(x, 0.0, x + 0.1, 0.1),
            kind,
        }
    }

    #[test]
    fn first_merge_synthesizes_ancestors() {
        // Antichain {0, 10, 11} covering the root.
        let c0 = Code::ROOT.child(false);
        let c10 = Code::ROOT.child(true).child(false);
        let c11 = Code::ROOT.child(true).child(true);
        let v = CachedNodeView::new(
            0,
            &[
                rec(c0, 0.0, CellKind::Super),
                rec(c10, 0.2, CellKind::Object(ObjectId(1))),
                rec(c11, 0.4, CellKind::Object(ObjectId(2))),
            ],
        );
        assert!(v.cell(Code::ROOT).is_some(), "root synthesized");
        assert!(
            v.cell(Code::ROOT.child(true)).is_some(),
            "cell 1 synthesized"
        );
        assert_eq!(v.frontier_len(), 3);
        assert_eq!(v.cell_count(), 5);
        // Synthesized internal MBRs are unions.
        let parent = v.cell(Code::ROOT.child(true)).unwrap();
        assert_eq!(
            parent.mbr,
            v.cell(c10).unwrap().mbr.union(&v.cell(c11).unwrap().mbr)
        );
        v.debug_validate().unwrap();
    }

    #[test]
    fn refining_merge_grows_frontier() {
        let c0 = Code::ROOT.child(false);
        let c1 = Code::ROOT.child(true);
        let mut v = CachedNodeView::new(
            1,
            &[rec(c0, 0.0, CellKind::Super), rec(c1, 0.3, CellKind::Super)],
        );
        assert_eq!(v.frontier_len(), 2);
        // Server later expands cell 0 into two entries (children MBRs lie
        // inside the super entry's MBR, as real BPT cells do).
        v.merge(&[
            CellRecord {
                code: c0.child(false),
                mbr: Rect::from_coords(0.0, 0.0, 0.04, 0.1),
                kind: CellKind::Node(NodeId(7)),
            },
            CellRecord {
                code: c0.child(true),
                mbr: Rect::from_coords(0.05, 0.0, 0.1, 0.1),
                kind: CellKind::Node(NodeId(8)),
            },
        ]);
        assert_eq!(v.frontier_len(), 3);
        assert_eq!(v.node_entries().count(), 2);
        v.debug_validate().unwrap();
    }

    #[test]
    fn children_lookup_requires_both() {
        let c0 = Code::ROOT.child(false);
        let c1 = Code::ROOT.child(true);
        let v = CachedNodeView::new(
            0,
            &[rec(c0, 0.0, CellKind::Super), rec(c1, 0.5, CellKind::Super)],
        );
        assert!(v.children(Code::ROOT).is_some());
        assert!(v.children(c0).is_none(), "no grandchildren shipped");
    }

    #[test]
    fn object_entries_enumerates_objects() {
        let c0 = Code::ROOT.child(false);
        let c1 = Code::ROOT.child(true);
        let v = CachedNodeView::new(
            0,
            &[
                rec(c0, 0.0, CellKind::Object(ObjectId(3))),
                rec(c1, 0.5, CellKind::Super),
            ],
        );
        let objs: Vec<_> = v.object_entries().collect();
        assert_eq!(objs, vec![ObjectId(3)]);
    }

    #[test]
    fn single_entry_node_view() {
        // A node with one entry ships {ε} as a full entry.
        let v = CachedNodeView::new(1, &[rec(Code::ROOT, 0.0, CellKind::Node(NodeId(2)))]);
        assert_eq!(v.frontier_len(), 1);
        assert_eq!(v.cell_count(), 1);
        v.debug_validate().unwrap();
    }

    #[test]
    fn idempotent_merge() {
        let c0 = Code::ROOT.child(false);
        let c1 = Code::ROOT.child(true);
        let recs = [rec(c0, 0.0, CellKind::Super), rec(c1, 0.5, CellKind::Super)];
        let mut v = CachedNodeView::new(0, &recs);
        let before = v.cell_count();
        v.merge(&recs);
        assert_eq!(v.cell_count(), before);
        assert_eq!(v.frontier_len(), 2);
    }
}
