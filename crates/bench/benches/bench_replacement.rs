//! Criterion benchmarks for §5's efficiency claim: GRD3 must be much
//! cheaper than the EBRS-recomputing GRD2 at the same eviction outcome
//! (Theorem 5.5), across cache populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_cache::{ItemKey, ProactiveCache, ReplacementPolicy};
use pc_geom::{Point, Rect};
use pc_rtree::bpt::Code;
use pc_rtree::proto::{CellKind, CellRecord, NodeShipment, ServerReply};
use pc_rtree::{NodeId, ObjectId, SpatialObject};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Balanced antichain codes for `n` siblings (a spine would exceed the
/// 32-bit code depth for the larger cache populations benchmarked here).
fn balanced_codes(n: usize) -> Vec<Code> {
    fn rec(code: Code, n: usize, out: &mut Vec<Code>) {
        if n == 1 {
            out.push(code);
            return;
        }
        let half = n / 2;
        rec(code.child(false), half, out);
        rec(code.child(true), n - half, out);
    }
    let mut out = Vec::with_capacity(n);
    rec(Code::ROOT, n, &mut out);
    out
}

/// Builds a cache with `leaves` leaf nodes of 8 objects each under one
/// root, with randomized hit patterns.
fn build_cache(policy: ReplacementPolicy, leaves: usize, seed: u64) -> ProactiveCache {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cache = ProactiveCache::new(u64::MAX / 2, policy);
    let mut root_cells = Vec::new();
    let codes = balanced_codes(leaves);
    let mut oid = 0u32;
    let mut replies = Vec::new();
    for (li, &my_code) in codes.iter().enumerate() {
        let leaf = NodeId(1 + li as u32);
        let x = (li as f64) / leaves as f64;
        root_cells.push(CellRecord {
            code: my_code,
            mbr: Rect::from_coords(x, 0.0, x + 0.9 / leaves as f64, 0.1),
            kind: CellKind::Node(leaf),
        });
        let mut cells = Vec::new();
        let mut objects = Vec::new();
        let mut lcode = Code::ROOT;
        for oi in 0..8 {
            let id = ObjectId(oid);
            oid += 1;
            let oc = if oi == 7 {
                lcode
            } else {
                let c = lcode.child(false);
                lcode = lcode.child(true);
                c
            };
            let mbr = Rect::from_point(Point::new(x + oi as f64 * 1e-3, 0.05));
            cells.push(CellRecord {
                code: oc,
                mbr,
                kind: CellKind::Object(id),
            });
            objects.push(SpatialObject {
                id,
                mbr,
                size_bytes: rng.random_range(2_000..20_000),
            });
        }
        replies.push(ServerReply {
            confirmed: vec![],
            objects,
            pairs: vec![],
            index: vec![NodeShipment {
                node: leaf,
                level: 0,
                parent: Some(NodeId(0)),
                cells,
            }],
            expansions: 0,
        });
    }
    // Root shipment first, then the leaves.
    cache.absorb(
        &ServerReply {
            confirmed: vec![],
            objects: vec![],
            pairs: vec![],
            index: vec![NodeShipment {
                node: NodeId(0),
                level: 1,
                parent: None,
                cells: root_cells,
            }],
            expansions: 0,
        },
        1,
        Point::ORIGIN,
    );
    for r in &replies {
        cache.absorb(r, 1, Point::ORIGIN);
    }
    // Randomized access history with ancestor-chain touching.
    for t in 2..100u64 {
        let target = ItemKey::Object(ObjectId(rng.random_range(0..oid)));
        let mut cur = Some(target);
        while let Some(k) = cur {
            cur = cache.get(k).and_then(|it| it.meta.parent);
            cache.touch(k, t);
        }
    }
    cache
}

fn bench_eviction(c: &mut Criterion) {
    let mut g = c.benchmark_group("replacement/evict_half");
    // GRD2 is intentionally quadratic (the reference §5.1 algorithm);
    // keep sampling light so the 800-leaf point stays in budget.
    g.sample_size(10);
    for leaves in [50usize, 200, 800] {
        for policy in [
            ReplacementPolicy::Grd3,
            ReplacementPolicy::Grd2,
            ReplacementPolicy::Lru,
            ReplacementPolicy::Far,
        ] {
            g.bench_with_input(
                BenchmarkId::new(policy.name(), leaves),
                &leaves,
                |b, &leaves| {
                    b.iter_batched(
                        || {
                            let mut cache = build_cache(policy, leaves, 7);
                            let cap = cache.used_bytes() / 2;
                            cache.set_capacity(cap);
                            cache
                        },
                        |mut cache| {
                            cache.enforce_capacity(black_box(120), Point::new(0.5, 0.5));
                            cache
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_absorb(c: &mut Criterion) {
    c.bench_function("replacement/absorb_200_leaves", |b| {
        b.iter(|| build_cache(ReplacementPolicy::Grd3, 200, black_box(9)))
    });
}

criterion_group!(benches, bench_eviction, bench_absorb);
criterion_main!(benches);
