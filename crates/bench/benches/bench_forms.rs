//! Criterion benchmarks for §4.2's claims about compact forms:
//!
//! * BPT-guided processing "in the worst case … doubles the processing
//!   time" but is much cheaper on average — compare engine traversal
//!   against the plain recursion;
//! * compact forms are cheaper to ship than full forms;
//! * the server-side CPU drop the paper measured for APRO vs FPRO
//!   (0.0081 s → 0.0067 s) has the right direction.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_geom::{Point, Rect};
use pc_rtree::bpt::BptStore;
use pc_rtree::engine::{execute, AccessLog, NoopTracer};
use pc_rtree::proto::QuerySpec;
use pc_rtree::query::range_query;
use pc_rtree::view::FullView;
use pc_rtree::{RTree, RTreeConfig};
use pc_server::{build_shipments, FormMode};
use pc_workload::datasets;
use std::hint::black_box;

fn setup(n: usize) -> (RTree, BptStore) {
    let store = datasets::ne_like(n, 4);
    let objects: Vec<_> = store.iter().copied().collect();
    let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);
    let bpts = BptStore::build(&tree);
    (tree, bpts)
}

fn bench_bpt_build(c: &mut Criterion) {
    let store = datasets::ne_like(50_000, 5);
    let objects: Vec<_> = store.iter().copied().collect();
    let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);
    let mut g = c.benchmark_group("forms/offline");
    g.sample_size(10);
    g.bench_function("bpt_build_50k", |b| {
        b.iter(|| BptStore::build(black_box(&tree)))
    });
    g.finish();
}

fn bench_engine_vs_plain(c: &mut Criterion) {
    let (tree, bpts) = setup(100_000);
    let view = FullView::new(&tree, &bpts);
    let w = Rect::centered_square(Point::new(0.31, 0.36), 0.02);
    let spec = QuerySpec::Range { window: w };

    let mut g = c.benchmark_group("forms/range_traversal");
    g.bench_function("plain_recursion", |b| {
        b.iter(|| range_query(&tree, black_box(&w)))
    });
    g.bench_function("bpt_engine", |b| {
        b.iter(|| execute(&view, black_box(&spec), &mut NoopTracer))
    });
    g.finish();
}

fn bench_form_construction(c: &mut Criterion) {
    let (tree, bpts) = setup(100_000);
    let view = FullView::new(&tree, &bpts);
    let spec = QuerySpec::Knn {
        center: Point::new(0.31, 0.36),
        k: 5,
    };
    let mut log = AccessLog::default();
    let _ = execute(&view, &spec, &mut log);

    let mut g = c.benchmark_group("forms/build_shipments");
    for (name, mode) in [
        ("full", FormMode::Full),
        ("compact", FormMode::COMPACT),
        ("d2", FormMode::DLevel(2)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| build_shipments(black_box(&log), &tree, &bpts, mode))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bpt_build,
    bench_engine_vs_plain,
    bench_form_construction
);
criterion_main!(benches);
