//! Criterion benchmarks for the end-to-end pipelines: one warm-cache query
//! through each caching model (client stage ① + server stage ② + absorb).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_baselines::{PageCache, SemanticCache};
use pc_cache::{Catalog, ReplacementPolicy};
use pc_client::Client;
use pc_geom::{Point, Rect};
use pc_rtree::proto::QuerySpec;
use pc_rtree::RTreeConfig;
use pc_server::{FormPolicy, Server, ServerConfig};
use pc_workload::datasets;
use std::hint::black_box;

fn make_server(n: usize) -> Server {
    Server::new(
        datasets::ne_like(n, 11),
        RTreeConfig::paper(),
        ServerConfig {
            form: FormPolicy::Adaptive,
            ..Default::default()
        },
    )
}

fn warm_specs() -> Vec<QuerySpec> {
    // A tight cluster of queries around one spot: the warm-up and the
    // benchmarked queries share locality, as in the mobile scenario.
    let p = Point::new(0.31, 0.36);
    vec![
        QuerySpec::Range {
            window: Rect::centered_square(p, 0.02),
        },
        QuerySpec::Knn { center: p, k: 5 },
        QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.315, 0.355), 0.02),
        },
    ]
}

fn bench_proactive(c: &mut Criterion) {
    let server = make_server(50_000);
    c.bench_function("pipeline/proactive_warm_knn", |b| {
        let mut client = Client::new(
            1 << 22,
            ReplacementPolicy::Grd3,
            Catalog::from_tree(server.snapshot().tree()),
        );
        for spec in warm_specs() {
            client.begin_query();
            let local = client.run_local(&spec);
            if let Some(rq) = &local.remainder {
                let reply = server.process_remainder(0, rq);
                client.absorb(&reply, Point::new(0.31, 0.36));
            }
        }
        let spec = QuerySpec::Knn {
            center: Point::new(0.312, 0.358),
            k: 5,
        };
        b.iter(|| {
            client.begin_query();
            let local = client.run_local(black_box(&spec));
            if let Some(rq) = &local.remainder {
                let reply = server.process_remainder(0, rq);
                client.absorb(&reply, Point::new(0.31, 0.36));
            }
            local.saved.len()
        })
    });
}

fn bench_semantic(c: &mut Criterion) {
    let server = make_server(50_000);
    c.bench_function("pipeline/semantic_warm_range", |b| {
        let mut sem = SemanticCache::new(1 << 22);
        let pos = Point::new(0.31, 0.36);
        for spec in warm_specs() {
            sem.query(&server, 0, &spec, pos, 0.0);
        }
        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.312, 0.358), 0.02),
        };
        b.iter(|| {
            sem.query(&server, 0, black_box(&spec), pos, 0.0)
                .objects
                .len()
        })
    });
}

fn bench_page(c: &mut Criterion) {
    let server = make_server(50_000);
    c.bench_function("pipeline/page_warm_range", |b| {
        let mut pag = PageCache::new(1 << 22);
        for spec in warm_specs() {
            pag.query(&server, 0, &spec, 0.0);
        }
        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.312, 0.358), 0.02),
        };
        b.iter(|| pag.query(&server, 0, black_box(&spec), 0.0).objects.len())
    });
}

criterion_group!(benches, bench_proactive, bench_semantic, bench_page);
criterion_main!(benches);
