//! Criterion micro-benchmarks for the flattened query hot path: the old
//! recursive per-entry kernels (`query::baseline`) against the iterative
//! struct-of-arrays kernels with a reused [`QueryScratch`].
//!
//! [`QueryScratch`]: pc_rtree::query::QueryScratch

use criterion::{criterion_group, criterion_main, Criterion};
use pc_geom::{Point, Rect};
use pc_rtree::query::{self, QueryScratch};
use pc_rtree::{RTree, RTreeConfig};
use pc_workload::datasets;
use std::hint::black_box;

fn build_tree(n: usize) -> RTree {
    let store = datasets::ne_like(n, 7);
    let objects: Vec<_> = store.iter().copied().collect();
    RTree::bulk_load(RTreeConfig::paper(), &objects)
}

fn bench_kernels(c: &mut Criterion) {
    let tree = build_tree(100_000);
    let w = Rect::centered_square(Point::new(0.31, 0.36), 0.0316);
    let p = Point::new(0.31, 0.36);

    let mut g = c.benchmark_group("kernel/range_1e-3");
    g.bench_function("recursive", |b| {
        b.iter(|| query::baseline::range_query(&tree, black_box(&w)))
    });
    g.bench_function("soa_iterative", |b| {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            query::range_query_with(&tree, black_box(&w), &mut scratch, &mut out);
            out.len()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("kernel/knn_10");
    g.bench_function("recursive", |b| {
        b.iter(|| query::baseline::knn_query(&tree, black_box(&p), 10))
    });
    g.bench_function("soa_iterative", |b| {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            query::knn_query_with(&tree, black_box(&p), 10, &mut scratch, &mut out);
            out.len()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("kernel/self_join");
    g.sample_size(10);
    g.bench_function("recursive", |b| {
        b.iter(|| query::baseline::distance_self_join(&tree, black_box(6e-5)))
    });
    g.bench_function("soa_iterative", |b| {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            query::distance_self_join_with(&tree, black_box(6e-5), &mut scratch, &mut out);
            out.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
