//! Criterion micro-benchmarks for the R*-tree substrate: bulk loading,
//! dynamic insertion, and the three §3.1 query algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_geom::{Point, Rect};
use pc_rtree::query::{distance_self_join, knn_query, range_query};
use pc_rtree::{RTree, RTreeConfig};
use pc_workload::datasets;
use std::hint::black_box;

fn bench_bulk_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree/bulk_load");
    g.sample_size(10);
    for n in [10_000usize, 50_000] {
        let store = datasets::ne_like(n, 1);
        let objects: Vec<_> = store.iter().copied().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &objects, |b, objs| {
            b.iter(|| RTree::bulk_load(RTreeConfig::paper(), black_box(objs)))
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let store = datasets::ne_like(5_000, 2);
    let objects: Vec<_> = store.iter().copied().collect();
    let mut g = c.benchmark_group("rtree/dynamic");
    g.sample_size(10);
    g.bench_function("insert_5k", |b| {
        b.iter(|| {
            let mut tree = RTree::new(RTreeConfig::paper());
            for o in &objects {
                tree.insert(black_box(o));
            }
            tree
        })
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let store = datasets::ne_like(100_000, 3);
    let objects: Vec<_> = store.iter().copied().collect();
    let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);

    let mut g = c.benchmark_group("rtree/query");
    g.bench_function("range_1e-3", |b| {
        let w = Rect::centered_square(Point::new(0.31, 0.36), 0.0316);
        b.iter(|| range_query(&tree, black_box(&w)))
    });
    g.bench_function("knn_5", |b| {
        let p = Point::new(0.31, 0.36);
        b.iter(|| knn_query(&tree, black_box(&p), 5))
    });
    g.bench_function("self_join", |b| {
        b.iter(|| distance_self_join(&tree, black_box(6e-5)))
    });
    g.finish();
}

criterion_group!(benches, bench_bulk_load, bench_insert, bench_queries);
criterion_main!(benches);
