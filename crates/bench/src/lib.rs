//! Shared harness for the per-figure experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--paper-scale` — Table 6.1 exactly (123,593-object NE-like dataset,
//!   10,000 queries, 1e-6 windows). Expect minutes per model run.
//! * `--objects N`, `--queries N`, `--seed S` — manual overrides.
//!
//! The default is a scaled-down run (20,000 objects, 2,000 queries) whose
//! query selectivity is adjusted so the *absolute* result-set sizes match
//! the paper's (≈0–5 objects per query, tens of join pairs), which is what
//! keeps the relative shapes intact.

use pc_sim::{CacheModel, SimConfig};
use pc_workload::DatasetKind;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    pub paper_scale: bool,
    pub objects: Option<usize>,
    pub queries: Option<usize>,
    pub seed: u64,
    /// Fleet size for multi-client experiments (sessions with ids `0..N`);
    /// `None` lets each binary pick its own default.
    pub clients: Option<u32>,
    /// Worker-thread cap for fleet runs; 0 = host parallelism.
    pub threads: usize,
    /// Route remainder queries through the batched service
    /// (`pc_server::BatchedService`) instead of direct dispatch.
    pub batch: bool,
    /// Flush threshold for `--batch` (requests per batch).
    pub batch_max: usize,
    /// Server updates applied per 100 completed queries while a fleet
    /// runs (`Fleet::churn`); 0 = no churn.
    pub update_rate: u32,
    /// Updates per applied churn batch (one epoch bump per batch).
    pub update_batch: usize,
    /// Shard counts for cluster-scaling experiments (`--shards 1,2,4,8`).
    /// Empty = single-server mode.
    pub shards: Vec<u32>,
    /// Run the fleet over real TCP loopback frames (`pc_server`'s
    /// `WireServer` and `TcpTransport`) instead of in-process dispatch,
    /// cross-checking measured frame bytes against `wire_bytes()`.
    pub wire: bool,
    /// Write machine-readable results (JSON) to this path.
    pub json: Option<String>,
}

impl HarnessOpts {
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            paper_scale: false,
            objects: None,
            queries: None,
            seed: 2005,
            clients: None,
            threads: 0,
            batch: false,
            batch_max: 16,
            update_rate: 0,
            update_batch: 1,
            shards: Vec::new(),
            wire: false,
            json: None,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--paper-scale" => opts.paper_scale = true,
                "--objects" => {
                    i += 1;
                    opts.objects = Some(args[i].parse().expect("--objects N"));
                }
                "--queries" => {
                    i += 1;
                    opts.queries = Some(args[i].parse().expect("--queries N"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed S");
                }
                "--clients" => {
                    i += 1;
                    let n: u32 = args[i].parse().expect("--clients N");
                    assert!(n > 0, "--clients must be ≥ 1");
                    opts.clients = Some(n);
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args[i].parse().expect("--threads N");
                }
                "--batch" => opts.batch = true,
                "--batch-max" => {
                    i += 1;
                    let n: usize = args[i].parse().expect("--batch-max N");
                    assert!(n > 0, "--batch-max must be ≥ 1");
                    opts.batch_max = n;
                }
                "--update-rate" => {
                    i += 1;
                    opts.update_rate = args[i].parse().expect("--update-rate R");
                }
                "--update-batch" => {
                    i += 1;
                    let n: usize = args[i].parse().expect("--update-batch B");
                    assert!(n > 0, "--update-batch must be ≥ 1");
                    opts.update_batch = n;
                }
                "--shards" => {
                    i += 1;
                    opts.shards = args[i]
                        .split(',')
                        .map(|s| {
                            let n: u32 = s.trim().parse().expect("--shards N[,N...]");
                            assert!(n > 0, "--shards entries must be ≥ 1");
                            n
                        })
                        .collect();
                    assert!(!opts.shards.is_empty(), "--shards needs at least one count");
                }
                "--wire" => opts.wire = true,
                "--json" => {
                    i += 1;
                    opts.json = Some(args[i].clone());
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --paper-scale | --objects N | --queries N | --seed S \
                         | --clients N | --threads N | --batch | --batch-max N \
                         | --update-rate R | --update-batch B | --shards N[,N...] \
                         | --wire | --json OUT"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}"),
            }
            i += 1;
        }
        opts
    }

    /// The base configuration for these options (model fields are set by
    /// each experiment afterwards).
    pub fn base_config(&self) -> SimConfig {
        let mut cfg = if self.paper_scale {
            SimConfig::paper()
        } else {
            scaled_default()
        };
        if let Some(n) = self.objects {
            cfg.n_objects = n;
            scale_selectivity(&mut cfg);
        }
        if let Some(q) = self.queries {
            cfg.n_queries = q;
        }
        cfg.seed = self.seed;
        cfg
    }
}

/// The default scaled-down configuration (see module docs).
pub fn scaled_default() -> SimConfig {
    let mut cfg = SimConfig::paper();
    cfg.n_objects = 20_000;
    cfg.n_queries = 2_000;
    cfg.window = 100;
    cfg.verify = false;
    scale_selectivity(&mut cfg);
    cfg
}

/// Rescales the window area so the expected absolute range-result count
/// matches the paper's at this dataset cardinality. The join distance is
/// deliberately *not* scaled: the NE-like dataset has a hard-core minimum
/// spacing (like real postal zones), so the paper's 5e-5 join is a pure
/// index/CPU stressor at every scale — scaling it up would change the
/// experiment's nature, not its resolution.
fn scale_selectivity(cfg: &mut SimConfig) {
    let paper_n = DatasetKind::Ne.paper_cardinality() as f64;
    let n = cfg.n_objects as f64;
    // E[range results] = area · n  (uniform approximation).
    cfg.workload.area_wnd = 1e-6 * paper_n / n;
}

/// Runs one model configuration and returns its summary (convenience for
/// single-threaded binaries).
pub fn run_model(cfg: &SimConfig) -> pc_sim::SimResult {
    pc_sim::run(cfg)
}

/// Runs several configurations on worker threads, preserving order.
pub fn run_parallel(configs: &[SimConfig]) -> Vec<pc_sim::SimResult> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|cfg| scope.spawn(move || pc_sim::run(cfg)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Sets the three models of Fig. 6–9 on a base config.
pub fn three_models(base: &SimConfig) -> Vec<(String, SimConfig)> {
    let mut out = Vec::new();
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let mut cfg = *base;
        cfg.model = model;
        out.push((cfg.model_label().to_string(), cfg));
    }
    out
}

// ---------------------------------------------------------------------
// Machine-readable output
// ---------------------------------------------------------------------

/// Minimal JSON writer for `--json OUT` bench artifacts — the vendored
/// environment has no serde, and the values here are flat numbers,
/// ASCII strings and arrays of objects, so a string builder suffices.
pub mod json {
    /// One `{...}` object under construction.
    #[derive(Default)]
    pub struct Obj {
        fields: Vec<String>,
    }

    impl Obj {
        pub fn new() -> Self {
            Obj::default()
        }

        /// A numeric or boolean field (anything whose `Display` form is a
        /// valid JSON literal; `f64` must be finite).
        pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
            self.fields.push(format!("\"{key}\":{value}"));
            self
        }

        /// A string field (keys and values are ASCII; quotes/backslashes
        /// escaped).
        pub fn str(mut self, key: &str, value: &str) -> Self {
            let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
            self.fields.push(format!("\"{key}\":\"{escaped}\""));
            self
        }

        /// A pre-rendered JSON value (nested object or array).
        pub fn raw(mut self, key: &str, value: &str) -> Self {
            self.fields.push(format!("\"{key}\":{value}"));
            self
        }

        pub fn render(&self) -> String {
            format!("{{{}}}", self.fields.join(","))
        }
    }

    /// Renders pre-rendered values as a JSON array.
    pub fn array<S: AsRef<str>>(items: &[S]) -> String {
        let inner: Vec<&str> = items.iter().map(AsRef::as_ref).collect();
        format!("[{}]", inner.join(","))
    }
}

// ---------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------

/// Renders an aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats bytes human-readably (fixed-point kB for table columns).
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1024.0 * 1024.0 {
        format!("{:.2}MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2}kB", b / 1024.0)
    } else {
        format!("{b:.0}B")
    }
}

pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

pub fn fmt_s(x: f64) -> String {
    format!("{x:.3}s")
}

pub fn fmt_ms(x: f64) -> String {
    format!("{x:.3}ms")
}

/// Experiment banner with reproduction context.
pub fn banner(title: &str, cfg: &SimConfig) {
    println!("=== {title} ===");
    println!(
        "dataset={} objects={} queries={} |C|={}% seed={}",
        cfg.dataset,
        cfg.n_objects,
        cfg.n_queries,
        cfg.cache_frac * 100.0,
        cfg.seed
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["model", "resp"]);
        t.row(vec!["PAG", "5.6"]);
        t.row(vec!["APRO", "1.2"]);
        let s = t.render();
        assert!(s.contains("model"));
        assert!(s.lines().count() == 4);
        // Columns align: every line equally wide.
        let widths: std::collections::HashSet<usize> = s.lines().skip(2).map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn selectivity_scaling_keeps_expected_results() {
        let cfg = scaled_default();
        // E[range results] = area · n ≈ paper's 1e-6 · 123593 ≈ 0.124.
        let expect = cfg.workload.area_wnd * cfg.n_objects as f64;
        assert!((expect - 0.123593).abs() < 1e-6, "{expect}");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(2048.0), "2.00kB");
        assert_eq!(fmt_pct(0.513), "51.3%");
        assert_eq!(fmt_s(1.234567), "1.235s");
    }
}
