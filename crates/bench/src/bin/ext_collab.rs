//! Extension experiment (paper §7, second item): cache collaboration in a
//! mobile ad-hoc neighborhood — "these clients exhibit high query
//! locality, \[so\] such cache collaboration is beneficial in terms of cache
//! reuse and bandwidth saving".
//!
//! Setup: a *convoy* — N clients moving together (same trajectory), the
//! neighborhood query stream split round-robin among them, so each
//! individual cache sees only 1/N of the history. Without collaboration,
//! fragmentation makes every cache colder as N grows. With collaboration
//! (peers within radio range consulted over a broadband local channel
//! before the server), the fleet's union warmth is recovered.
//!
//! Measured per fleet size, with and without collaboration: server contact
//! rate and remote bytes per query (the scarce 3G resource), local bytes
//! (the cheap MANET resource), and peer contributions.

use pc_bench::{fmt_bytes, fmt_pct, HarnessOpts, Table};
use pc_cache::{Catalog, ReplacementPolicy};
use pc_client::Client;
use pc_geom::Point;
use pc_mobility::{MobileClient, MobilityConfig, MobilityModel};
use pc_net::Channel;
use pc_server::{Server, ServerConfig};
use pc_sim::collab::{local_channel, query_with_peers};
use pc_workload::{QueryGenerator, WorkloadConfig};

const RADIO_RANGE: f64 = 0.25;

struct RunStats {
    contact_rate: f64,
    remote_per_q: f64,
    local_per_q: f64,
    peer_served_per_q: f64,
}

fn run_fleet(
    fleet_size: usize,
    max_peers: usize,
    n_objects: usize,
    n_queries: usize,
    seed: u64,
) -> RunStats {
    let store = pc_workload::datasets::ne_like(n_objects, seed);
    let total_bytes = store.total_bytes();
    let server = Server::new(
        store,
        pc_rtree::RTreeConfig::paper(),
        ServerConfig::default(),
    );
    let mut fleet: Vec<Client> = (0..fleet_size)
        .map(|_| {
            Client::new(
                total_bytes / 100,
                ReplacementPolicy::Grd3,
                Catalog::from_tree(server.snapshot().tree()),
            )
        })
        .collect();
    // A convoy: identical trajectories (same mobility seed) — the paper's
    // "clients in the neighborhood".
    let mut mobile = MobileClient::new(MobilityModel::Dir, MobilityConfig::paper(), seed ^ 0xC0);
    let mut qgen = QueryGenerator::new(
        {
            let mut w = WorkloadConfig::paper();
            w.area_wnd = 1e-6 * 123_593.0 / n_objects as f64;
            w
        },
        seed ^ 0xD1,
    );
    let local = local_channel();
    let remote = Channel::paper();

    let mut contacts = 0u64;
    let mut remote_bytes = 0u64;
    let mut local_bytes = 0u64;
    let mut peer_served = 0u64;

    for q in 0..n_queries {
        mobile.advance(qgen.think_time());
        let origin = q % fleet_size;
        let positions: Vec<Point> = vec![mobile.position(); fleet_size];
        let spec = qgen.next_query(positions[origin]);
        let out = query_with_peers(
            &mut fleet,
            &positions,
            origin,
            RADIO_RANGE,
            max_peers,
            &server,
            &spec,
            (&local, &remote),
            0.008,
        );
        contacts += out.server_contacted as u64;
        remote_bytes += out.remote_bytes;
        local_bytes += out.local_bytes;
        peer_served += out.peer_served as u64;
    }

    let q = n_queries as f64;
    RunStats {
        contact_rate: contacts as f64 / q,
        remote_per_q: remote_bytes as f64 / q,
        local_per_q: local_bytes as f64 / q,
        peer_served_per_q: peer_served as f64 / q,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let n_objects = opts.objects.unwrap_or(10_000);
    let n_queries = opts.queries.unwrap_or(900);
    println!("=== Extension: peer cache collaboration (§7, MANET convoy) ===");
    println!(
        "objects={n_objects} queries={n_queries} range={RADIO_RANGE} seed={}\n",
        opts.seed
    );

    let mut t = Table::new(vec![
        "fleet",
        "mode",
        "server contacts",
        "remote B/q",
        "local B/q",
        "peer-served",
    ]);
    for fleet_size in [1usize, 2, 4, 8] {
        for (mode, max_peers) in [("solo", 0usize), ("collab", 3)] {
            if fleet_size == 1 && mode == "collab" {
                continue; // no peers to consult
            }
            let s = run_fleet(fleet_size, max_peers, n_objects, n_queries, opts.seed);
            t.row(vec![
                format!("{fleet_size}"),
                mode.to_string(),
                fmt_pct(s.contact_rate),
                fmt_bytes(s.remote_per_q),
                fmt_bytes(s.local_per_q),
                format!("{:.2}/q", s.peer_served_per_q),
            ]);
        }
    }
    t.print();
    println!("\nexpectation: without collaboration the fleet fragments the cache —");
    println!("contact rate and remote bytes climb with N; with collaboration the");
    println!("union warmth is recovered over the cheap local channel.");
}
