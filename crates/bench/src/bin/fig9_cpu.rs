//! Figure 9: client CPU time per query under different cache sizes (RAN).
//!
//! Paper expectations: APRO costs the most client CPU in absolute terms
//! (it partially executes queries, especially joins) but is the *least
//! sensitive* to cache size thanks to the cached index structure — PAG and
//! SEM scan their caches sequentially, so their CPU grows with |C|.
//!
//! CPU here is measured wall-clock on the host, so absolute values differ
//! from the paper's Pentium 4; the comparison is relative (see DESIGN.md).

use pc_bench::{banner, fmt_ms, run_parallel, three_models, HarnessOpts, Table};
use pc_mobility::MobilityModel;

const FRACS: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.mobility = MobilityModel::Ran;
    banner("Figure 9: client CPU per query vs cache size (RAN)", &base);

    let mut configs = Vec::new();
    for frac in FRACS {
        let mut b = base;
        b.cache_frac = frac;
        for (_, cfg) in three_models(&b) {
            configs.push(cfg);
        }
    }
    let results = run_parallel(&configs);

    let mut t = Table::new(vec!["|C|", "PAG", "SEM", "APRO", "APRO expansions"]);
    for (fi, frac) in FRACS.iter().enumerate() {
        t.row(vec![
            format!("{}%", frac * 100.0),
            fmt_ms(results[fi * 3].summary.avg_client_cpu_ms),
            fmt_ms(results[fi * 3 + 1].summary.avg_client_cpu_ms),
            fmt_ms(results[fi * 3 + 2].summary.avg_client_cpu_ms),
            format!("{:.1}", results[fi * 3 + 2].summary.avg_client_expansions),
        ]);
    }
    t.print();

    println!("\nserver CPU per query (sanity: communication still dominates):");
    let mut t = Table::new(vec!["|C|", "PAG", "SEM", "APRO"]);
    for (fi, frac) in FRACS.iter().enumerate() {
        let row: Vec<String> = (0..3)
            .map(|mi| fmt_ms(results[fi * 3 + mi].summary.avg_server_cpu_ms))
            .collect();
        t.row(vec![
            format!("{}%", frac * 100.0),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    t.print();

    println!("\npaper expectations: APRO mostly the most expensive but flattest in");
    println!("|C|; the CPU-to-communication gap stays > 1 order of magnitude.");
}
