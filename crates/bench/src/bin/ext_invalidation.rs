//! Extension experiment (paper §7 future work): the cost of server updates
//! under the epoch-stamped invalidation protocol.
//!
//! A proactive client runs a local mixed workload while the server applies
//! update batches at increasing rates. Measured per rate: extra round
//! trips caused by stale refusals, items dropped by invalidation, the
//! cache hit rate, and the average response time. Expectation: cache
//! effectiveness decays gracefully with the update rate — invalidation
//! costs grow linearly, and correctness at contacts is never traded away.

use pc_bench::{fmt_pct, fmt_s, HarnessOpts, Table};
use pc_cache::{Catalog, ReplacementPolicy};
use pc_geom::{Point, Rect};
use pc_mobility::{MobileClient, MobilityModel};
use pc_net::Channel;
use pc_rtree::ObjectId;
use pc_server::{Server, ServerConfig, Update};
use pc_sim::UpdatingClient;
use pc_workload::{QueryGenerator, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Updates applied per 100 queries.
const UPDATE_RATES: [u32; 5] = [0, 5, 20, 50, 100];

fn main() {
    let opts = HarnessOpts::from_args();
    let n_objects = opts.objects.unwrap_or(15_000);
    let n_queries = opts.queries.unwrap_or(1_500);
    println!("=== Extension: server updates & cache invalidation (§7) ===");
    println!(
        "objects={n_objects} queries={n_queries} seed={}\n",
        opts.seed
    );

    let mut t = Table::new(vec![
        "upd/100q",
        "stale retries",
        "items dropped",
        "hit_c",
        "resp",
        "contact rate",
    ]);

    for rate in UPDATE_RATES {
        let store = pc_workload::datasets::ne_like(n_objects, opts.seed);
        let total_bytes = store.total_bytes();
        let server = Server::new(
            store,
            pc_rtree::RTreeConfig::paper(),
            ServerConfig::default(),
        );
        let mut client = UpdatingClient::new(
            total_bytes / 100, // |C| = 1 %
            ReplacementPolicy::Grd3,
            Catalog::from_tree(server.snapshot().tree()),
        )
        .with_client(1)
        .at_epoch(server.snapshot().epoch());
        let mut mobile = MobileClient::new(
            MobilityModel::Dir,
            pc_mobility::MobilityConfig::paper(),
            opts.seed ^ 0xEE,
        );
        let mut workload = WorkloadConfig::paper();
        workload.area_wnd = 1e-6 * 123_593.0 / n_objects as f64;
        let mut qgen = QueryGenerator::new(workload, opts.seed ^ 0xFF);
        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xAB);
        let channel = Channel::paper();

        let mut retries = 0u64;
        let mut dropped = 0u64;
        let mut saved = 0u64;
        let mut results = 0u64;
        let mut resp_sum = 0.0;
        let mut resp_n = 0u64;
        let mut contacts = 0u64;

        for q in 0..n_queries {
            // Poisson-ish update arrivals at `rate` per 100 queries.
            if rate > 0 && rng.random_range(0..100) < rate.min(100) {
                let n_live = server.snapshot().store().len() as u32;
                let update = match rng.random_range(0..3) {
                    0 => Update::Move {
                        id: ObjectId(rng.random_range(0..n_live.min(n_objects as u32))),
                        to: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                    },
                    1 => Update::Insert {
                        mbr: Rect::from_point(Point::new(
                            rng.random_range(0.0..1.0),
                            rng.random_range(0.0..1.0),
                        )),
                        size_bytes: 10_000,
                    },
                    _ => {
                        Update::Delete(ObjectId(rng.random_range(0..n_live.min(n_objects as u32))))
                    }
                };
                server.apply_updates(&[update]);
            }

            mobile.advance(qgen.think_time());
            let pos = mobile.position();
            let spec = qgen.next_query(pos);
            let out = client.query(&server, &spec, pos, 0.008);
            let _ = q;
            retries += out.round_trips.saturating_sub(1) as u64;
            dropped += out.invalidated_items as u64;
            saved += out.ledger.saved_bytes;
            results += out.ledger.result_bytes();
            let r = out.ledger.response(&channel);
            if r.result_bytes > 0 {
                resp_sum += r.avg_response_s;
                resp_n += 1;
            }
            contacts += out.ledger.contacted_server as u64;
            mobile.advance(r.completion_s);
        }

        t.row(vec![
            format!("{rate}"),
            format!("{retries}"),
            format!("{dropped}"),
            fmt_pct(if results > 0 {
                saved as f64 / results as f64
            } else {
                0.0
            }),
            fmt_s(if resp_n > 0 {
                resp_sum / resp_n as f64
            } else {
                0.0
            }),
            fmt_pct(contacts as f64 / n_queries as f64),
        ]);
    }
    t.print();
    println!("\nexpectation: hit_c decays and stale retries grow with the update");
    println!("rate; answers at contacts stay exact throughout (asserted in tests).");
}
