//! Ablation (DESIGN.md §8): the adaptive scheme's sensitivity `s` and
//! report period. Table 6.1 fixes s = 20 % and the paper does not sweep
//! it; this harness does, on the Fig. 11 drifting-k workload.
//!
//! Expectations: tiny `s` makes d twitchy (index share oscillates), huge
//! `s` freezes d (APRO degenerates towards its initial form); the paper's
//! 20 % sits in the stable middle. Longer report periods slow adaptation
//! the same way Fig. 11 notes a "certain degree of delay".

use pc_bench::{fmt_s, HarnessOpts, Table};
use pc_mobility::MobilityModel;
use pc_server::FormPolicy;
use pc_sim::{self as sim, CacheModel};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.model = CacheModel::Proactive;
    base.form = FormPolicy::Adaptive;
    base.mobility = MobilityModel::Ran;
    base.cache_frac = 0.001;
    base.drifting_k = Some((10, 1));
    base.workload.mix = pc_workload::QueryMix::knn_only();
    pc_bench::banner("Ablation: adaptive sensitivity s and report period", &base);

    println!("sweep of s (report period = {}):", base.fmr_report_period);
    let mut t = Table::new(vec!["s", "fmr", "i/c (mean)", "resp"]);
    for s in [0.05, 0.1, 0.2, 0.4, 0.8] {
        let mut cfg = base;
        cfg.sensitivity = s;
        let r = sim::run(&cfg);
        let ic =
            r.windows.iter().map(|w| w.index_to_cache).sum::<f64>() / r.windows.len().max(1) as f64;
        t.row(vec![
            format!("{:.0}%", s * 100.0),
            format!("{:.3}", r.summary.fmr),
            format!("{ic:.3}"),
            fmt_s(r.summary.avg_response_s),
        ]);
    }
    t.print();

    println!("\nsweep of the report period (s = 20%):");
    let mut t = Table::new(vec!["period", "fmr", "i/c (mean)", "resp"]);
    for period in [10usize, 25, 50, 100, 250] {
        let mut cfg = base;
        cfg.fmr_report_period = period;
        let r = sim::run(&cfg);
        let ic =
            r.windows.iter().map(|w| w.index_to_cache).sum::<f64>() / r.windows.len().max(1) as f64;
        t.row(vec![
            format!("{period}"),
            format!("{:.3}", r.summary.fmr),
            format!("{ic:.3}"),
            fmt_s(r.summary.avg_response_s),
        ]);
    }
    t.print();
}
