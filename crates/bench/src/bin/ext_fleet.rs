//! Fleet scaling extension: one shared server, a growing population of
//! concurrent proactive clients. The paper's server keeps per-client
//! adaptive d⁺ state (§4.3) but its experiments simulate one client at a
//! time; here the `Send + Sync` server core serves N sessions on worker
//! threads — through the typed `Transport` protocol — and we watch
//! aggregate throughput and per-client response time as the fleet grows.
//!
//! With `--batch`, remainder queries are routed through the
//! `BatchedService` front-end instead of direct dispatch: concurrently
//! arriving requests coalesce per shard (flush threshold `--batch-max`)
//! and execute against the shared core in one pass. Per-client results are
//! identical either way (pinned by `tests/fleet.rs`); the batch columns
//! report how much coalescing the fleet actually produced.
//!
//! Columns:
//! * `sim q/s` — offered load the server absorbs in *simulated* time
//!   (client streams run in parallel in the simulated world, so this
//!   scales with the fleet regardless of host cores);
//! * `wall q/s` — queries processed per wall-clock second across the
//!   whole fleet run (scales with host parallelism);
//! * `resp` — mean per-client §4.1 response time (cache effects only:
//!   the channel model is per-client, so this stays flat as N grows);
//! * `hit_c` / `fmr` — merged cache hit and false-miss rates;
//! * `batches` / `avg b` — flushes and mean requests per flush (`--batch`
//!   only; `avg b = 1.00` means no coalescing happened).
//!
//! Defaults to doubling fleet sizes up to `--clients` (default 8); each
//! client issues `--queries` (default 500) queries. Sessions disconnect
//! (`Forget`) when their budget completes, so the adaptive table drains
//! between rows on its own.

use pc_bench::{banner, fmt_pct, fmt_s, HarnessOpts, Table};
use pc_server::{BatchConfig, BatchedService, ServerHandle};
use pc_sim::{build_server, CacheModel, Fleet, FleetResult};

fn main() {
    let opts = HarnessOpts::from_args();
    let max_clients = opts.clients.unwrap_or(8);
    let mut cfg = opts.base_config();
    cfg.model = CacheModel::Proactive;
    if !opts.paper_scale && opts.queries.is_none() {
        cfg.n_queries = 500;
    }
    banner(
        if opts.batch {
            "ext: concurrent client fleet (batched remainder service)"
        } else {
            "ext: concurrent client fleet (shared Send+Sync server)"
        },
        &cfg,
    );

    let server = build_server(&cfg);
    let mut sizes = Vec::new();
    let mut n = 1;
    while n < max_clients {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(max_clients);

    let mut table = Table::new(vec![
        "clients", "threads", "queries", "wall", "sim q/s", "wall q/s", "resp", "hit_c", "fmr",
        "batches", "avg b",
    ]);
    let mut last_sim_qps = 0.0;
    let mut monotone = true;
    for &clients in &sizes {
        let fleet = Fleet::new(cfg).clients(clients).threads(opts.threads);
        let (out, batch_cols): (FleetResult, [String; 2]) = if opts.batch {
            let service = BatchedService::new(
                &server,
                BatchConfig {
                    max_batch: opts.batch_max,
                    queue_cap: opts.batch_max.max(4) * 4,
                    ..BatchConfig::default()
                },
            );
            let out = fleet.run(&service);
            let stats = service.stats();
            (
                out,
                [
                    stats.batches.to_string(),
                    format!("{:.2}", stats.mean_batch()),
                ],
            )
        } else {
            let handle: &dyn ServerHandle = &server;
            (fleet.run(handle), ["-".to_string(), "-".to_string()])
        };
        let s = &out.merged.summary;
        let [batches, avg_b] = batch_cols;
        table.row(vec![
            clients.to_string(),
            if opts.threads == 0 {
                "auto".to_string()
            } else {
                opts.threads.to_string()
            },
            out.total_queries().to_string(),
            fmt_s(out.wall_s),
            format!("{:.2}", out.sim_qps()),
            format!("{:.0}", out.wall_qps()),
            fmt_s(s.avg_response_s),
            fmt_pct(s.hit_c),
            fmt_pct(s.fmr),
            batches,
            avg_b,
        ]);
        monotone &= out.sim_qps() > last_sim_qps;
        last_sim_qps = out.sim_qps();
    }
    table.print();
    println!();
    println!(
        "aggregate throughput {} with fleet size ({} dispatch); \
         {} client states remain tracked after disconnects",
        if monotone {
            "scales monotonically"
        } else {
            "did NOT scale monotonically"
        },
        if opts.batch { "batched" } else { "direct" },
        server.tracked_clients()
    );
}
