//! Fleet scaling extension: one shared server, a growing population of
//! concurrent proactive clients. The paper's server keeps per-client
//! adaptive d⁺ state (§4.3) but its experiments simulate one client at a
//! time; here the `Send + Sync` server core serves N sessions on worker
//! threads — through the typed `Transport` protocol — and we watch
//! aggregate throughput and per-client response time as the fleet grows.
//!
//! With `--batch`, remainder queries are routed through the
//! `BatchedService` front-end instead of direct dispatch: concurrently
//! arriving requests coalesce per shard (flush threshold `--batch-max`)
//! and execute against the shared core in one pass. Per-client results are
//! identical either way (pinned by `tests/fleet.rs`); the batch columns
//! report how much coalescing the fleet actually produced.
//!
//! With `--update-rate R` (updates per 100 completed queries, batches of
//! `--update-batch`), an update-driver thread churns the object set
//! *while* the fleet runs, through the epoch-swap `&self` update path:
//! sessions speak the §7 versioned protocol, resubmitting after `Stale`
//! refusals with every invalidation byte charged to their ledgers. A
//! 0-rate run is bit-identical to the update-free fleet.
//!
//! `--json OUT` additionally writes the table as a JSON artifact
//! (`BENCH_fleet.json` in CI) so the perf trajectory is recorded per push.
//!
//! Columns:
//! * `sim q/s` — offered load the server absorbs in *simulated* time
//!   (client streams run in parallel in the simulated world, so this
//!   scales with the fleet regardless of host cores);
//! * `wall q/s` — queries processed per wall-clock second across the
//!   whole fleet run (scales with host parallelism);
//! * `resp` — mean per-client §4.1 response time (cache effects only:
//!   the channel model is per-client, so this stays flat as N grows);
//! * `hit_c` / `fmr` — merged cache hit and false-miss rates;
//! * `upd` / `stale` / `refr` / `inv` — updates applied under the run, stale
//!   retries suffered, full-refresh refusals recovered from (the client
//!   fell below the server's pruned invalidation horizon), and
//!   invalidation downlink bytes (churn only);
//! * `batches` / `avg b` — flushes and mean requests per flush (`--batch`
//!   only; `avg b = 1.00` means no coalescing happened).
//!
//! With `--wire`, the binary switches to *measured-bytes* mode: each row
//! serves the fleet over real TCP loopback frames — a
//! [`pc_server::WireServer`] accept loop (optionally batched with
//! `--batch`) behind a [`pc_server::TcpTransport`] client — and the table
//! reports measured frame bytes next to what the `wire_bytes()` model
//! charged for the same traffic. Every row asserts the reconciliation
//! identity `measured == modeled + itemized framing overhead` in both
//! directions; `--json OUT` writes `BENCH_wire.json`-style rows.
//!
//! With `--shards N[,N...]`, the binary switches to *cluster scaling*
//! mode: the fleet size is held fixed (`--clients`, default 8) and each
//! row runs the same workload against a fresh spatially-sharded
//! [`pc_server::Cluster`] with that many `ServerCore` shards behind the
//! scatter-gather router. The scaling metric is `wall q/s` — shards
//! execute remainders and update publishes in parallel, so aggregate
//! throughput should grow with the shard count on a multi-core host.
//! `--json OUT` writes `BENCH_shard.json`-style rows keyed by shard count.
//!
//! Defaults to doubling fleet sizes up to `--clients` (default 8); each
//! client issues `--queries` (default 500) queries. Sessions disconnect
//! (`Forget`) when their budget completes, so the adaptive table drains
//! between rows on its own.

use std::sync::Arc;

use pc_bench::{banner, fmt_bytes, fmt_pct, fmt_s, json, HarnessOpts, Table};
use pc_server::{
    BatchConfig, BatchedService, ServerHandle, TcpTransport, WireServer, WireServerConfig,
};
use pc_sim::{build_cluster, build_server, CacheModel, ChurnConfig, Fleet, FleetResult};

fn main() {
    let opts = HarnessOpts::from_args();
    let max_clients = opts.clients.unwrap_or(8);
    let mut cfg = opts.base_config();
    cfg.model = CacheModel::Proactive;
    if !opts.paper_scale && opts.queries.is_none() {
        cfg.n_queries = 500;
    }
    let churn = ChurnConfig {
        rate_per_100: opts.update_rate,
        batch: opts.update_batch,
        seed: opts.seed ^ 0x5EED_CAFE,
    };
    if !opts.shards.is_empty() {
        assert!(
            !opts.wire,
            "--wire and --shards are mutually exclusive: the wire transport \
             fronts a single server, not the cluster router"
        );
        shard_scaling(&opts, cfg, churn, max_clients);
        return;
    }
    if opts.wire {
        wire_fleet(&opts, cfg, churn, max_clients);
        return;
    }
    banner(
        if opts.batch {
            "ext: concurrent client fleet (batched remainder service)"
        } else {
            "ext: concurrent client fleet (shared Send+Sync server)"
        },
        &cfg,
    );
    if opts.update_rate > 0 {
        println!(
            "churn: {} updates / 100 queries, {} per epoch (versioned protocol)\n",
            opts.update_rate, opts.update_batch
        );
    }

    let shared_server = build_server(&cfg);
    let mut sizes = Vec::new();
    let mut n = 1;
    while n < max_clients {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(max_clients);

    let mut table = Table::new(vec![
        "clients", "threads", "queries", "wall", "sim q/s", "wall q/s", "resp", "hit_c", "fmr",
        "upd", "stale", "refr", "inv", "batches", "avg b",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut last_sim_qps = 0.0;
    let mut monotone = true;
    let mut tracked_after = 0;
    for &clients in &sizes {
        // Churn mutates the dataset, so each churned row gets a fresh
        // server — rows stay comparable (same seed world, per-row epochs)
        // instead of inheriting the previous row's drift. Update-free
        // rows share one server (dataset generation dominates setup).
        let fresh_server;
        let server = if opts.update_rate > 0 {
            fresh_server = build_server(&cfg);
            &fresh_server
        } else {
            &shared_server
        };
        let fleet = Fleet::new(cfg)
            .clients(clients)
            .threads(opts.threads)
            .churn(churn);
        let (out, stats): (FleetResult, Option<pc_server::ServiceStats>) = if opts.batch {
            let service = BatchedService::new(
                server,
                BatchConfig {
                    max_batch: opts.batch_max,
                    queue_cap: opts.batch_max.max(4) * 4,
                    ..BatchConfig::default()
                },
            );
            let out = fleet.run(&service);
            (out, Some(service.stats()))
        } else {
            let handle: &dyn ServerHandle = server;
            (fleet.run(handle), None)
        };
        tracked_after = server.tracked_clients();
        let s = &out.merged.summary;
        let (batches, avg_b) = match stats {
            Some(st) => (st.batches.to_string(), format!("{:.2}", st.mean_batch())),
            None => ("-".to_string(), "-".to_string()),
        };
        table.row(vec![
            clients.to_string(),
            if opts.threads == 0 {
                "auto".to_string()
            } else {
                opts.threads.to_string()
            },
            out.total_queries().to_string(),
            fmt_s(out.wall_s),
            format!("{:.2}", out.sim_qps()),
            format!("{:.0}", out.wall_qps()),
            fmt_s(s.avg_response_s),
            fmt_pct(s.hit_c),
            fmt_pct(s.fmr),
            out.updates_applied.to_string(),
            s.totals.stale_retries.to_string(),
            s.totals.full_refreshes.to_string(),
            fmt_bytes(s.totals.invalidation_bytes as f64),
            batches,
            avg_b,
        ]);
        json_rows.push(
            json::Obj::new()
                .num("clients", clients)
                .num("queries", out.total_queries())
                .num("wall_s", out.wall_s)
                .num("sim_qps", out.sim_qps())
                .num("wall_qps", out.wall_qps())
                .num("avg_response_s", s.avg_response_s)
                .num("hit_c", s.hit_c)
                .num("fmr", s.fmr)
                .num("contacts", s.totals.contacts)
                .num("stale_retries", s.totals.stale_retries)
                .num("full_refreshes", s.totals.full_refreshes)
                .num("invalidation_bytes", s.totals.invalidation_bytes)
                .num("updates_applied", out.updates_applied)
                .num("final_epoch", out.final_epoch)
                .num("log_records", out.log_records)
                .num("batches", stats.map_or(0, |st| st.batches))
                .num("mean_batch", stats.map_or(0.0, |st| st.mean_batch()))
                .render(),
        );
        monotone &= out.sim_qps() > last_sim_qps;
        last_sim_qps = out.sim_qps();
    }
    table.print();
    println!();
    println!(
        "aggregate throughput {} with fleet size ({} dispatch); \
         {} client states remain tracked after disconnects",
        if monotone {
            "scales monotonically"
        } else {
            "did NOT scale monotonically"
        },
        if opts.batch { "batched" } else { "direct" },
        tracked_after
    );

    if let Some(path) = &opts.json {
        let doc = json::Obj::new()
            .str("bench", "ext_fleet")
            .str("mode", if opts.batch { "batched" } else { "direct" })
            .num("seed", opts.seed)
            .num("objects", cfg.n_objects)
            .num("queries_per_client", cfg.n_queries)
            .num("update_rate_per_100", opts.update_rate)
            .num("update_batch", opts.update_batch)
            .raw("rows", &json::array(&json_rows))
            .render();
        std::fs::write(path, doc + "\n").expect("write --json output");
        println!("wrote {path}");
    }
}

/// Measured-bytes mode (`--wire`): the same doubling fleet, but every
/// request crosses TCP loopback as a real `pc_wire` frame. Each row
/// spawns a fresh [`WireServer`] (its accept loop is per-row state) and a
/// [`TcpTransport`] whose counters record actual encoded frame lengths
/// alongside the `wire_bytes()` model; the row asserts the reconciliation
/// identity before it is reported.
fn wire_fleet(opts: &HarnessOpts, cfg: pc_sim::SimConfig, churn: ChurnConfig, max_clients: u32) {
    banner(
        if opts.batch {
            "ext: client fleet over TCP loopback (batched remainder service)"
        } else {
            "ext: client fleet over TCP loopback (measured wire frames)"
        },
        &cfg,
    );
    if opts.update_rate > 0 {
        println!(
            "churn: {} updates / 100 queries, {} per epoch (versioned protocol)\n",
            opts.update_rate, opts.update_batch
        );
    }

    let shared_server = Arc::new(build_server(&cfg));
    let mut sizes = Vec::new();
    let mut n = 1;
    while n < max_clients {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(max_clients);

    let mut table = Table::new(vec![
        "clients", "queries", "wall", "wall q/s", "resp", "hit_c", "fmr", "upd", "tx", "rx",
        "tx ovh", "rx ovh", "frames", "recon",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for &clients in &sizes {
        // Churn mutates the dataset, so each churned row gets a fresh
        // server (same reasoning as the in-process mode); update-free rows
        // share one.
        let server: Arc<pc_server::Server> = if opts.update_rate > 0 {
            Arc::new(build_server(&cfg))
        } else {
            Arc::clone(&shared_server)
        };
        let wire_cfg = WireServerConfig::default();
        let (mut ws, service) = if opts.batch {
            let (ws, service) = WireServer::spawn_batched(
                Arc::clone(&server),
                BatchConfig {
                    max_batch: opts.batch_max,
                    queue_cap: opts.batch_max.max(4) * 4,
                    ..BatchConfig::default()
                },
                wire_cfg,
            )
            .expect("bind wire server");
            (ws, Some(service))
        } else {
            let handle: Arc<dyn ServerHandle> = Arc::clone(&server) as Arc<dyn ServerHandle>;
            (
                WireServer::spawn(handle, wire_cfg).expect("bind wire server"),
                None,
            )
        };
        // Metadata calls (core(), apply_updates, bootstrap_root) stay
        // in-process through the inner handle; only Request/Response
        // envelopes cross the socket.
        let transport =
            TcpTransport::connect(ws.addr(), Arc::clone(&server) as Arc<dyn ServerHandle>);
        let fleet = Fleet::new(cfg)
            .clients(clients)
            .threads(opts.threads)
            .churn(churn);
        let out: FleetResult = fleet.run(&transport);
        let t = transport.stats();
        assert!(
            t.reconciles(),
            "measured frame bytes must equal modeled + itemized overhead: {t:?}"
        );
        drop(transport);
        ws.shutdown();
        let srv = ws.stats();
        assert_eq!(
            srv.requests_served, t.rx_frames,
            "every request frame the client counted was served"
        );
        let s = &out.merged.summary;
        table.row(vec![
            clients.to_string(),
            out.total_queries().to_string(),
            fmt_s(out.wall_s),
            format!("{:.0}", out.wall_qps()),
            fmt_s(s.avg_response_s),
            fmt_pct(s.hit_c),
            fmt_pct(s.fmr),
            out.updates_applied.to_string(),
            fmt_bytes(t.tx_bytes as f64),
            fmt_bytes(t.rx_bytes as f64),
            fmt_bytes(t.tx_overhead_bytes as f64),
            fmt_bytes(t.rx_overhead_bytes as f64),
            (t.tx_frames + t.rx_frames).to_string(),
            "ok".to_string(),
        ]);
        json_rows.push(
            json::Obj::new()
                .num("clients", clients)
                .num("queries", out.total_queries())
                .num("wall_s", out.wall_s)
                .num("wall_qps", out.wall_qps())
                .num("avg_response_s", s.avg_response_s)
                .num("hit_c", s.hit_c)
                .num("fmr", s.fmr)
                .num("modeled_uplink_bytes", t.modeled_tx_bytes)
                .num("modeled_downlink_bytes", t.modeled_rx_bytes)
                .num("measured_tx_bytes", t.tx_bytes)
                .num("measured_rx_bytes", t.rx_bytes)
                .num("tx_overhead_bytes", t.tx_overhead_bytes)
                .num("rx_overhead_bytes", t.rx_overhead_bytes)
                .num("tx_frames", t.tx_frames)
                .num("rx_frames", t.rx_frames)
                .num("reconciles", t.reconciles())
                .num("connections_accepted", srv.connections_accepted)
                .num("requests_served", srv.requests_served)
                .num("frames_rejected", srv.frames_rejected)
                .num("stale_retries", s.totals.stale_retries)
                .num("full_refreshes", s.totals.full_refreshes)
                .num("updates_applied", out.updates_applied)
                .num("final_epoch", out.final_epoch)
                .num(
                    "batches",
                    service.as_ref().map_or(0, |sv| sv.stats().batches),
                )
                .num(
                    "mean_batch",
                    service.as_ref().map_or(0.0, |sv| sv.stats().mean_batch()),
                )
                .render(),
        );
    }
    table.print();
    println!();
    println!(
        "every row reconciled: measured frame bytes == wire_bytes() model \
         + itemized framing overhead, both directions"
    );

    if let Some(path) = &opts.json {
        let doc = json::Obj::new()
            .str("bench", "ext_fleet_wire")
            .str("mode", if opts.batch { "batched" } else { "direct" })
            .num("seed", opts.seed)
            .num("objects", cfg.n_objects)
            .num("queries_per_client", cfg.n_queries)
            .num("update_rate_per_100", opts.update_rate)
            .num("update_batch", opts.update_batch)
            .raw("rows", &json::array(&json_rows))
            .render();
        std::fs::write(path, doc + "\n").expect("write --json output");
        println!("wrote {path}");
    }
}

/// Cluster-scaling mode (`--shards`): a fixed fleet against a fresh
/// spatially-sharded cluster per shard count. Remainder dispatch is
/// direct — the scatter-gather router already fans work out across
/// shards, which is the parallelism under measurement here.
fn shard_scaling(opts: &HarnessOpts, cfg: pc_sim::SimConfig, churn: ChurnConfig, clients: u32) {
    assert!(
        !opts.batch,
        "--batch and --shards are mutually exclusive: the cluster router \
         is its own fan-out front-end"
    );
    banner("ext: shard scaling (spatially-sharded cluster)", &cfg);
    println!(
        "fleet fixed at {clients} clients; shard counts {:?}{}\n",
        opts.shards,
        if opts.update_rate > 0 {
            format!(
                "; churn {} updates / 100 queries, {} per epoch",
                opts.update_rate, opts.update_batch
            )
        } else {
            String::new()
        }
    );

    let mut table = Table::new(vec![
        "shards", "clients", "queries", "wall", "sim q/s", "wall q/s", "resp", "hit_c", "fmr",
        "upd", "stale", "refr", "inv",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    let mut first_qps = 0.0;
    let mut last_qps = 0.0;
    for &shards in &opts.shards {
        // A fresh cluster per row: shard count changes the partitioning of
        // the *same* seed world, and churned rows must not inherit the
        // previous row's dataset drift.
        let cluster = build_cluster(&cfg, shards);
        let fleet = Fleet::new(cfg)
            .clients(clients)
            .threads(opts.threads)
            .churn(churn);
        let handle: &dyn ServerHandle = &cluster;
        let out: FleetResult = fleet.run(handle);
        let s = &out.merged.summary;
        table.row(vec![
            shards.to_string(),
            clients.to_string(),
            out.total_queries().to_string(),
            fmt_s(out.wall_s),
            format!("{:.2}", out.sim_qps()),
            format!("{:.0}", out.wall_qps()),
            fmt_s(s.avg_response_s),
            fmt_pct(s.hit_c),
            fmt_pct(s.fmr),
            out.updates_applied.to_string(),
            s.totals.stale_retries.to_string(),
            s.totals.full_refreshes.to_string(),
            fmt_bytes(s.totals.invalidation_bytes as f64),
        ]);
        json_rows.push(
            json::Obj::new()
                .num("shards", shards)
                .num("clients", clients)
                .num("queries", out.total_queries())
                .num("wall_s", out.wall_s)
                .num("sim_qps", out.sim_qps())
                .num("wall_qps", out.wall_qps())
                .num("avg_response_s", s.avg_response_s)
                .num("hit_c", s.hit_c)
                .num("fmr", s.fmr)
                .num("contacts", s.totals.contacts)
                .num("stale_retries", s.totals.stale_retries)
                .num("full_refreshes", s.totals.full_refreshes)
                .num("invalidation_bytes", s.totals.invalidation_bytes)
                .num("updates_applied", out.updates_applied)
                .num("final_epoch", out.final_epoch)
                .num("log_records", out.log_records)
                .render(),
        );
        if first_qps == 0.0 {
            first_qps = out.wall_qps();
        }
        last_qps = out.wall_qps();
    }
    table.print();
    println!();
    println!(
        "wall-clock throughput {} from {:.0} q/s ({} shard{}) to {:.0} q/s ({} shards)",
        if last_qps > first_qps {
            "grew"
        } else {
            "did NOT grow"
        },
        first_qps,
        opts.shards[0],
        if opts.shards[0] == 1 { "" } else { "s" },
        last_qps,
        opts.shards[opts.shards.len() - 1],
    );

    if let Some(path) = &opts.json {
        let doc = json::Obj::new()
            .str("bench", "ext_fleet_shard")
            .num("seed", opts.seed)
            .num("objects", cfg.n_objects)
            .num("queries_per_client", cfg.n_queries)
            .num("clients", clients)
            .num("update_rate_per_100", opts.update_rate)
            .num("update_batch", opts.update_batch)
            .raw("rows", &json::array(&json_rows))
            .render();
        std::fs::write(path, doc + "\n").expect("write --json output");
        println!("wrote {path}");
    }
}
