//! Query hot-path extension experiment: what did flattening the node layout
//! buy on the read side?
//!
//! The server answers every remainder query (and the epoch snapshots answer
//! every direct query) through the `pc_rtree` kernels, so their cost is the
//! floor under all Fig. 6–9 response times. This binary sweeps dataset sizes
//! up to `--objects` (use `--objects 1000000` for the million-object run)
//! and, at each size, times the three §3.1 algorithms twice:
//!
//! * **base** — the recursive per-entry baseline (`query::baseline`), the
//!   pre-SoA code shape: one `Vec`/`BinaryHeap` allocation per call and an
//!   `Entry` materialised per comparison;
//! * **soa** — the iterative struct-of-arrays kernels driven by one reused
//!   [`QueryScratch`] and caller-owned result buffers (zero steady-state
//!   allocations).
//!
//! Both variants answer the *same* queries and the results are
//! cross-checked before timing, so the speedup column never compares
//! different work. `--json OUT` writes the rows as `BENCH_hotpath.json`
//! for the CI artifact trail.
//!
//! [`QueryScratch`]: pc_rtree::query::QueryScratch

use pc_bench::{json, HarnessOpts, Table};
use pc_geom::{Point, Rect};
use pc_rtree::query::{self, QueryScratch};
use pc_rtree::{ObjectId, RTree, RTreeConfig};
use pc_workload::datasets;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Neighbours requested per kNN query (the paper's NN experiments use
/// small k; 10 keeps the heap non-trivial).
const K: usize = 10;

/// Self-join distance — the paper's 5e-5 scale; the NE-like hard-core
/// spacing makes this a pure index/CPU stressor at every cardinality.
const JOIN_DIST: f64 = 6e-5;

struct Row {
    objects: usize,
    kind: &'static str,
    queries: usize,
    base_us: f64,
    soa_us: f64,
    results: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.base_us / self.soa_us.max(1e-9)
    }
}

/// Times `queries` runs of `f` and returns (µs per query, checksum).
fn time_each<F: FnMut() -> u64>(queries: usize, mut f: F) -> (f64, u64) {
    let mut checksum = 0u64;
    let t = Instant::now();
    for _ in 0..queries {
        checksum = checksum.wrapping_add(f());
    }
    (t.elapsed().as_secs_f64() * 1e6 / queries as f64, checksum)
}

fn measure(n: usize, queries: usize, seed: u64) -> Vec<Row> {
    let store = datasets::ne_like(n, seed);
    let objects: Vec<_> = store.iter().copied().collect();
    let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x407);

    // Fixed window area (1e-4 of the unit square): result counts grow with
    // n, which is exactly what stresses the qualification loop.
    let side = 0.01;
    let windows: Vec<Rect> = (0..queries)
        .map(|_| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            Rect::centered_square(p, side)
        })
        .collect();
    let centers: Vec<Point> = (0..queries)
        .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();

    // Cross-check before timing: both variants must answer identically.
    let mut scratch = QueryScratch::default();
    let mut ids: Vec<ObjectId> = Vec::new();
    query::range_query_with(&tree, &windows[0], &mut scratch, &mut ids);
    ids.sort_unstable();
    let mut rec = query::baseline::range_query(&tree, &windows[0]);
    rec.sort_unstable();
    assert_eq!(ids, rec, "range kernels disagree");
    let mut knn = Vec::new();
    query::knn_query_with(&tree, &centers[0], K, &mut scratch, &mut knn);
    assert_eq!(
        knn,
        query::baseline::knn_query(&tree, &centers[0], K),
        "kNN kernels disagree"
    );
    let mut pairs = Vec::new();
    query::distance_self_join_with(&tree, JOIN_DIST, &mut scratch, &mut pairs);
    assert_eq!(
        pairs,
        query::baseline::distance_self_join(&tree, JOIN_DIST),
        "join kernels disagree"
    );

    let mut rows = Vec::new();
    // `move` closures below capture these shared borrows (Copy), not the
    // owned values.
    let tree = &tree;
    let windows = &windows[..];
    let centers = &centers[..];

    let (base_us, base_sum) = time_each(queries, {
        let mut i = 0;
        move || {
            let w = &windows[i % windows.len()];
            i += 1;
            query::baseline::range_query(tree, black_box(w)).len() as u64
        }
    });
    let (soa_us, soa_sum) = time_each(queries, {
        let mut i = 0;
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        move || {
            let w = &windows[i % windows.len()];
            i += 1;
            query::range_query_with(tree, black_box(w), &mut scratch, &mut out);
            out.len() as u64
        }
    });
    assert_eq!(base_sum, soa_sum, "range checksums diverged");
    rows.push(Row {
        objects: n,
        kind: "range",
        queries,
        base_us,
        soa_us,
        results: soa_sum,
    });

    let (base_us, base_sum) = time_each(queries, {
        let mut i = 0;
        move || {
            let p = &centers[i % centers.len()];
            i += 1;
            query::baseline::knn_query(tree, black_box(p), K).len() as u64
        }
    });
    let (soa_us, soa_sum) = time_each(queries, {
        let mut i = 0;
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        move || {
            let p = &centers[i % centers.len()];
            i += 1;
            query::knn_query_with(tree, black_box(p), K, &mut scratch, &mut out);
            out.len() as u64
        }
    });
    assert_eq!(base_sum, soa_sum, "kNN checksums diverged");
    rows.push(Row {
        objects: n,
        kind: "knn",
        queries,
        base_us,
        soa_us,
        results: soa_sum,
    });

    // The self-join walks the whole tree; a handful of repetitions is
    // plenty of work at every size in the sweep.
    let join_reps = 3;
    let (base_us, base_sum) = time_each(join_reps, || {
        query::baseline::distance_self_join(tree, black_box(JOIN_DIST)).len() as u64
    });
    let (soa_us, soa_sum) = time_each(join_reps, {
        let mut scratch = QueryScratch::default();
        let mut out = Vec::new();
        move || {
            query::distance_self_join_with(tree, black_box(JOIN_DIST), &mut scratch, &mut out);
            out.len() as u64
        }
    });
    assert_eq!(base_sum, soa_sum, "join checksums diverged");
    rows.push(Row {
        objects: n,
        kind: "join",
        queries: join_reps,
        base_us,
        soa_us,
        results: soa_sum,
    });

    rows
}

fn main() {
    let opts = HarnessOpts::from_args();
    let max_objects = opts.objects.unwrap_or(200_000);
    let queries = opts.queries.unwrap_or(1_000);
    println!("=== ext: query hot path (recursive baseline vs iterative SoA kernels) ===");
    println!(
        "k={K} join_dist={JOIN_DIST} queries/size={queries} seed={}\n",
        opts.seed
    );

    let mut sizes = vec![max_objects];
    while *sizes.last().unwrap() > 40_000 {
        sizes.push(sizes.last().unwrap() / 4);
    }
    sizes.reverse();

    let mut t = Table::new(vec![
        "objects", "kind", "queries", "base/q", "soa/q", "speedup", "results",
    ]);
    let mut json_rows = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &n in &sizes {
        for r in measure(n, queries, opts.seed) {
            t.row(vec![
                r.objects.to_string(),
                r.kind.to_string(),
                r.queries.to_string(),
                format!("{:.1}us", r.base_us),
                format!("{:.1}us", r.soa_us),
                format!("{:.2}x", r.speedup()),
                r.results.to_string(),
            ]);
            json_rows.push(
                json::Obj::new()
                    .num("objects", r.objects)
                    .str("kind", r.kind)
                    .num("queries", r.queries)
                    .num("base_us_per_query", r.base_us)
                    .num("soa_us_per_query", r.soa_us)
                    .num("speedup", r.speedup())
                    .num("results", r.results)
                    .render(),
            );
            if n == max_objects {
                speedups.push((r.kind.to_string(), r.speedup()));
            }
        }
    }
    t.print();

    let summary: Vec<String> = speedups
        .iter()
        .map(|(k, s)| format!("{k} {s:.2}x"))
        .collect();
    println!("\nat {max_objects} objects: {}", summary.join(", "));

    if let Some(path) = &opts.json {
        let doc = json::Obj::new()
            .str("bench", "ext_hotpath")
            .num("seed", opts.seed)
            .num("k", K)
            .num("join_dist", JOIN_DIST)
            .num("queries_per_size", queries)
            .num("max_objects", max_objects)
            .raw("rows", &json::array(&json_rows))
            .render();
        std::fs::write(path, doc + "\n").expect("write --json output");
        println!("wrote {path}");
    }
}
