//! Figure 7: performance under the two mobility models.
//! (a) response time of PAG/SEM/APRO under RAN and DIR;
//! (b) false miss rate of SEM and APRO under RAN and DIR.
//!
//! Paper expectations: DIR is slower than RAN for every model (worse query
//! locality); APRO's response time barely moves because its proactively
//! cached index already covers newly visited areas — visible in (b) as an
//! almost flat false-miss rate across mobility models.

use pc_bench::{banner, fmt_pct, fmt_s, run_parallel, three_models, HarnessOpts, Table};
use pc_mobility::MobilityModel;

fn main() {
    let opts = HarnessOpts::from_args();
    let base = opts.base_config();
    banner("Figure 7: mobility models (|C|=1%)", &base);

    let mut configs = Vec::new();
    let mut labels = Vec::new();
    for mobility in [MobilityModel::Ran, MobilityModel::Dir] {
        let mut b = base;
        b.mobility = mobility;
        for (name, cfg) in three_models(&b) {
            labels.push((mobility, name));
            configs.push(cfg);
        }
    }
    let results = run_parallel(&configs);

    println!("(a) response time");
    let mut t = Table::new(vec!["model", "RAN", "DIR"]);
    for model_idx in 0..3 {
        let name = &labels[model_idx].1;
        let ran = &results[model_idx].summary;
        let dir = &results[3 + model_idx].summary;
        t.row(vec![
            name.clone(),
            fmt_s(ran.avg_response_s),
            fmt_s(dir.avg_response_s),
        ]);
    }
    t.print();

    println!("\n(b) false miss rate");
    let mut t = Table::new(vec!["model", "RAN", "DIR"]);
    for model_idx in 1..3 {
        // SEM and APRO only (PAG's fmr is 1 by construction).
        let name = &labels[model_idx].1;
        let ran = &results[model_idx].summary;
        let dir = &results[3 + model_idx].summary;
        t.row(vec![name.clone(), fmt_pct(ran.fmr), fmt_pct(dir.fmr)]);
    }
    t.print();

    println!("\npaper expectations: resp(DIR) > resp(RAN) for all models; APRO's");
    println!("increase is the smallest and its fmr stays nearly flat across models.");
}
