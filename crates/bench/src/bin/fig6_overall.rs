//! Figure 6: Overall Performance Comparison — PAG vs SEM vs APRO on uplink
//! bytes, downlink bytes, cache hit rate, byte hit rate and response time
//! (DIR mobility, |C| = 1 %, NE dataset, mixed range/kNN/join workload).
//!
//! The paper normalizes each metric to \[0, 1\] and reports the maximum in
//! parentheses; this binary prints both the raw values and the normalized
//! view, plus the paper's qualitative expectations for eyeballing.

use pc_bench::{banner, fmt_bytes, fmt_pct, fmt_s, run_parallel, three_models, HarnessOpts, Table};
use pc_mobility::MobilityModel;

type MetricFn = Box<dyn Fn(&pc_sim::Summary) -> f64>;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.mobility = MobilityModel::Dir;
    base.cache_frac = 0.01;
    banner("Figure 6: overall comparison (DIR, |C|=1%)", &base);

    let models = three_models(&base);
    let results = run_parallel(&models.iter().map(|(_, c)| *c).collect::<Vec<_>>());

    let mut t = Table::new(vec![
        "model", "uplink", "downlink", "hit_c", "hit_b", "resp",
    ]);
    for ((name, _), r) in models.iter().zip(&results) {
        let s = &r.summary;
        t.row(vec![
            name.clone(),
            fmt_bytes(s.avg_uplink_bytes),
            fmt_bytes(s.avg_downlink_bytes),
            fmt_pct(s.hit_c),
            fmt_pct(s.hit_b),
            fmt_s(s.avg_response_s),
        ]);
    }
    t.print();

    // Normalized view (paper style: value / max, max in parens).
    println!("\nnormalized to the per-metric maximum:");
    let max = |f: &dyn Fn(&pc_sim::Summary) -> f64| {
        results
            .iter()
            .map(|r| f(&r.summary))
            .fold(f64::MIN, f64::max)
    };
    let metrics: Vec<(&str, MetricFn, String)> = vec![
        (
            "Uplink Bytes",
            Box::new(|s: &pc_sim::Summary| s.avg_uplink_bytes),
            fmt_bytes(max(&|s| s.avg_uplink_bytes)),
        ),
        (
            "Downlink Bytes",
            Box::new(|s: &pc_sim::Summary| s.avg_downlink_bytes),
            fmt_bytes(max(&|s| s.avg_downlink_bytes)),
        ),
        (
            "Cache Hit Rate",
            Box::new(|s: &pc_sim::Summary| s.hit_c),
            fmt_pct(max(&|s| s.hit_c)),
        ),
        (
            "Byte Hit Rate",
            Box::new(|s: &pc_sim::Summary| s.hit_b),
            fmt_pct(max(&|s| s.hit_b)),
        ),
        (
            "Response Time",
            Box::new(|s: &pc_sim::Summary| s.avg_response_s),
            fmt_s(max(&|s| s.avg_response_s)),
        ),
    ];
    let mut t = Table::new(vec!["metric (max)", "PAG", "SEM", "APRO"]);
    for (name, f, maxs) in &metrics {
        let m = max(&|s| f(s));
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                if m > 0.0 {
                    format!("{:.2}", f(&r.summary) / m)
                } else {
                    "0.00".into()
                }
            })
            .collect();
        t.row(vec![
            format!("{name} ({maxs})"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t.print();

    println!("\npaper expectations: PAG highest uplink & zero hit_c; SEM highest");
    println!("downlink & ~1/3 of APRO's hit_c; APRO best response time with");
    println!("downlink only slightly above PAG's.");
}
