//! Ablation (DESIGN.md §8): does §4.2's choice of the *R\* split* for
//! binary partition trees actually matter, versus a naïve midpoint cut?
//!
//! Same tree, two BPT stores. For a batch of cold kNN/range remainders we
//! compare (a) compact-form sizes — worse partitions overlap more, so the
//! query's grey subtree is bigger — and (b) engine cell expansions, the
//! paper's CPU proxy.

use pc_bench::{fmt_bytes, HarnessOpts, Table};
use pc_geom::{Point, Rect};
use pc_rtree::bpt::{BptStore, SplitPolicy};
use pc_rtree::engine::{execute, AccessLog};
use pc_rtree::proto::QuerySpec;
use pc_rtree::view::FullView;
use pc_rtree::{RTree, RTreeConfig};
use pc_server::{build_shipments, FormMode};
use pc_workload::datasets;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = HarnessOpts::from_args();
    let n = opts.objects.unwrap_or(50_000);
    let queries = opts.queries.unwrap_or(400);
    println!("=== Ablation: BPT split policy (R* vs midpoint) ===");
    println!("objects={n} queries={queries} seed={}\n", opts.seed);

    let store = datasets::ne_like(n, opts.seed);
    let objects: Vec<_> = store.iter().copied().collect();
    let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);

    let mut table = Table::new(vec![
        "policy",
        "compact bytes/query",
        "full bytes/query",
        "saving",
        "expansions/query",
        "BPT build",
    ]);
    for policy in [SplitPolicy::RStar, SplitPolicy::Midpoint] {
        let t0 = std::time::Instant::now();
        let bpts = BptStore::build_with(&tree, policy);
        let build_time = t0.elapsed();
        let view = FullView::new(&tree, &bpts);

        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xB7);
        let mut compact_bytes = 0u64;
        let mut full_bytes = 0u64;
        let mut expansions = 0u64;
        for i in 0..queries {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            let spec = if i % 2 == 0 {
                QuerySpec::Knn {
                    center: p,
                    k: rng.random_range(1..8),
                }
            } else {
                QuerySpec::Range {
                    window: Rect::centered_square(p, rng.random_range(0.005..0.05)),
                }
            };
            let mut log = AccessLog::default();
            let out = execute(&view, &spec, &mut log);
            expansions += out.expansions;
            compact_bytes += build_shipments(&log, &tree, &bpts, FormMode::COMPACT)
                .iter()
                .map(|s| s.wire_bytes())
                .sum::<u64>();
            full_bytes += build_shipments(&log, &tree, &bpts, FormMode::Full)
                .iter()
                .map(|s| s.wire_bytes())
                .sum::<u64>();
        }
        let q = queries as f64;
        table.row(vec![
            format!("{policy:?}"),
            fmt_bytes(compact_bytes as f64 / q),
            fmt_bytes(full_bytes as f64 / q),
            format!(
                "{:.1}%",
                (1.0 - compact_bytes as f64 / full_bytes as f64) * 100.0
            ),
            format!("{:.1}", expansions as f64 / q),
            format!("{:.2?}", build_time),
        ]);
    }
    table.print();
    println!("\nexpectation: the R* policy compacts better (bigger saving) at a");
    println!("higher one-time build cost; midpoint trees overlap more, touching");
    println!("more cells per query.");
}
