//! Table 6.1: System Parameters Settings — prints the simulator defaults
//! next to the paper's values so any drift is immediately visible.

use pc_bench::{HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::from_args();
    let cfg = opts.base_config();
    println!("=== Table 6.1: System Parameters Settings ===\n");
    let mut t = Table::new(vec!["parameter", "paper", "this run"]);
    t.row(vec![
        "spd".into(),
        "0.0001".into(),
        format!("{}", cfg.mobility_cfg.speed),
    ]);
    t.row(vec![
        "think time".into(),
        "50s".into(),
        format!("{}s", cfg.workload.think_mean_s),
    ]);
    t.row(vec![
        "Area_wnd".into(),
        "1e-6".into(),
        format!("{:.3e}", cfg.workload.area_wnd),
    ]);
    t.row(vec![
        "Dist_join".into(),
        "5e-5".into(),
        format!("{:.3e}", cfg.workload.dist_join),
    ]);
    t.row(vec![
        "K_max".into(),
        "5".into(),
        format!("{}", cfg.workload.k_max),
    ]);
    t.row(vec![
        "bandwidth".into(),
        "384Kbps".into(),
        format!("{}Kbps", cfg.channel.bandwidth_bps / 1000),
    ]);
    t.row(vec![
        "|C|".into(),
        "0.1%~5% (1%)".into(),
        format!("{}%", cfg.cache_frac * 100.0),
    ]);
    t.row(vec![
        "|o|".to_string(),
        "10KB".to_string(),
        "10KB (Zipf mean)".to_string(),
    ]);
    t.row(vec![
        "theta".to_string(),
        "0.8".to_string(),
        "0.8".to_string(),
    ]);
    t.row(vec![
        "s".into(),
        "20%".into(),
        format!("{}%", cfg.sensitivity * 100.0),
    ]);
    t.row(vec![
        "dataset".into(),
        "NE (123,593)".into(),
        format!("{} ({})", cfg.dataset, cfg.n_objects),
    ]);
    t.row(vec![
        "queries/run".into(),
        "10,000".into(),
        format!("{}", cfg.n_queries),
    ]);
    t.print();
}
