//! Figure 11: adaptive vs non-adaptive proactive caching under a drifting
//! kNN workload — time series (windows of 500 queries in the paper) of
//! (a) false miss rate, (b) index share of the cache `i/c`, and
//! (c) response time, for FPRO (full form), CPRO (normal compact form)
//! and APRO (adaptive d⁺-level).
//!
//! Setup follows §6.4: kNN-only queries whose average k drifts 10 → 1 → 10
//! across the run, a small cache (|C| = 0.1 %), RAN mobility.
//!
//! Paper expectations: CPRO's fmr mirrors the k schedule (its forms carry
//! no slack); FPRO's fmr is lowest and flattest but its index eats ~half
//! the cache; APRO holds fmr steady with a small index share, growing it
//! only when k is small, and has the best response time nearly throughout.

use pc_bench::{banner, run_parallel, HarnessOpts, Table};
use pc_mobility::MobilityModel;
use pc_server::FormPolicy;
use pc_sim::CacheModel;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.model = CacheModel::Proactive;
    base.mobility = MobilityModel::Ran;
    base.cache_frac = 0.001;
    base.drifting_k = Some((10, 1));
    base.workload.mix = pc_workload::QueryMix::knn_only();
    // The paper plots every 500 of 10,000 queries: 20 points per series.
    base.window = (base.n_queries / 20).max(1);
    banner(
        "Figure 11: adaptive vs non-adaptive forms (kNN drift 10→1→10)",
        &base,
    );

    let forms = [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive];
    let configs: Vec<_> = forms
        .iter()
        .map(|f| {
            let mut cfg = base;
            cfg.form = *f;
            cfg
        })
        .collect();
    let results = run_parallel(&configs);

    for (title, pick) in [
        (
            "(a) false miss rate",
            &(|w: &pc_sim::WindowPoint| format!("{:.3}", w.fmr)) as &dyn Fn(_) -> String,
        ),
        ("(b) index / cache ratio", &|w: &pc_sim::WindowPoint| {
            format!("{:.3}", w.index_to_cache)
        }),
        ("(c) response time (s)", &|w: &pc_sim::WindowPoint| {
            format!("{:.3}", w.avg_response_s)
        }),
    ] {
        println!("\n{title}");
        let mut t = Table::new(vec!["query", "FPRO", "CPRO", "APRO"]);
        let points = results[0].windows.len();
        for i in 0..points {
            t.row(vec![
                format!("{}", results[0].windows[i].query_end),
                pick(&results[0].windows[i]),
                pick(&results[1].windows[i]),
                pick(&results[2].windows[i]),
            ]);
        }
        t.print();
    }

    println!("\nsummary over the whole run:");
    let mut t = Table::new(vec!["form", "fmr", "i/c (end)", "resp"]);
    for (f, r) in forms.iter().zip(&results) {
        t.row(vec![
            f.name().to_string(),
            format!("{:.3}", r.summary.fmr),
            format!(
                "{:.3}",
                r.windows.last().map(|w| w.index_to_cache).unwrap_or(0.0)
            ),
            pc_bench::fmt_s(r.summary.avg_response_s),
        ]);
    }
    t.print();
}
