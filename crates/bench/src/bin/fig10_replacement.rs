//! Figure 10: APRO response time under different cache replacement schemes
//! (LRU, FAR, GRD3; MRU is included for completeness — the paper notes it
//! is "always the worst of all" and omits it from the plot), under both
//! mobility models.
//!
//! Paper expectations: LRU wins under DIR (stale areas age out fast), loses
//! under RAN (it evicts objects the walk returns to); FAR and GRD3 are
//! position/history based and win under RAN; GRD3 is the most stable across
//! both models.

use pc_bench::{banner, fmt_s, run_parallel, HarnessOpts, Table};
use pc_cache::ReplacementPolicy;
use pc_mobility::MobilityModel;
use pc_sim::CacheModel;

const POLICIES: [ReplacementPolicy; 4] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Mru,
    ReplacementPolicy::Far,
    ReplacementPolicy::Grd3,
];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.model = CacheModel::Proactive;
    banner("Figure 10: APRO under replacement schemes", &base);

    let mut configs = Vec::new();
    for mobility in [MobilityModel::Ran, MobilityModel::Dir] {
        for policy in POLICIES {
            let mut cfg = base;
            cfg.mobility = mobility;
            cfg.policy = policy;
            configs.push(cfg);
        }
    }
    let results = run_parallel(&configs);

    let mut t = Table::new(vec![
        "policy",
        "RAN resp",
        "RAN hit_c",
        "DIR resp",
        "DIR hit_c",
    ]);
    for (pi, policy) in POLICIES.iter().enumerate() {
        let ran = &results[pi].summary;
        let dir = &results[4 + pi].summary;
        t.row(vec![
            policy.name().to_string(),
            fmt_s(ran.avg_response_s),
            pc_bench::fmt_pct(ran.hit_c),
            fmt_s(dir.avg_response_s),
            pc_bench::fmt_pct(dir.hit_c),
        ]);
    }
    t.print();

    println!("\npaper expectations: MRU worst everywhere; LRU best under DIR;");
    println!("FAR/GRD3 better under RAN; GRD3 most stable across both.");
}
