//! Figure 8: response time under cache sizes |C| ∈ {0.1 %, 0.5 %, 1 %, 5 %}
//! of the dataset, RAN mobility, three models.
//!
//! Paper expectations: PAG saturates and even worsens beyond 1 % (its
//! uplink manifest grows with |C|); SEM saturates after 1 % (per-type
//! limits); APRO keeps improving through 5 % thanks to cross-type sharing.

use pc_bench::{banner, fmt_s, run_parallel, three_models, HarnessOpts, Table};
use pc_mobility::MobilityModel;

const FRACS: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut base = opts.base_config();
    base.mobility = MobilityModel::Ran;
    banner("Figure 8: response time vs cache size (RAN)", &base);

    let mut configs = Vec::new();
    for frac in FRACS {
        let mut b = base;
        b.cache_frac = frac;
        for (_, cfg) in three_models(&b) {
            configs.push(cfg);
        }
    }
    let results = run_parallel(&configs);

    let mut t = Table::new(vec!["|C|", "PAG", "SEM", "APRO"]);
    for (fi, frac) in FRACS.iter().enumerate() {
        let row: Vec<String> = (0..3)
            .map(|mi| fmt_s(results[fi * 3 + mi].summary.avg_response_s))
            .collect();
        t.row(vec![
            format!("{}%", frac * 100.0),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    t.print();

    println!("\nuplink bytes (the PAG saturation mechanism):");
    let mut t = Table::new(vec!["|C|", "PAG", "SEM", "APRO"]);
    for (fi, frac) in FRACS.iter().enumerate() {
        let row: Vec<String> = (0..3)
            .map(|mi| pc_bench::fmt_bytes(results[fi * 3 + mi].summary.avg_uplink_bytes))
            .collect();
        t.row(vec![
            format!("{}%", frac * 100.0),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    t.print();

    println!("\npaper expectations: PAG flat/worsening past 1%; SEM saturates at");
    println!("1%; APRO still gains at 5%.");
}
