//! §6.4 statistics: R*-tree index sizes and binary-partition-tree overhead
//! for the NE-like and RD-like datasets. The paper reports, at full scale:
//! R*-tree 3.8 MB (NE) / 18.5 MB (RD); BPTs 4.2 MB (NE) / 23.7 MB (RD) —
//! i.e. the BPT overhead stays under twice the index size (§4.2's bound).

use pc_bench::{fmt_bytes, HarnessOpts, Table};
use pc_rtree::bpt::BptStore;
use pc_rtree::{RTree, RTreeConfig};
use pc_workload::DatasetKind;

fn main() {
    let opts = HarnessOpts::from_args();
    println!("=== Index and BPT sizes (§6.4) ===\n");
    let mut t = Table::new(vec![
        "dataset",
        "objects",
        "nodes",
        "height",
        "R-tree",
        "BPTs",
        "BPT/index",
    ]);
    for kind in [DatasetKind::Ne, DatasetKind::Rd] {
        let n = if opts.paper_scale {
            kind.paper_cardinality()
        } else {
            opts.objects.unwrap_or(50_000)
        };
        let store = kind.generate(n, opts.seed);
        let objects: Vec<_> = store.iter().copied().collect();
        let tree = RTree::bulk_load(RTreeConfig::paper(), &objects);
        let bpts = BptStore::build(&tree);
        let stats = tree.stats();
        let aux = bpts.total_aux_bytes();
        t.row(vec![
            kind.name().to_string(),
            format!("{n}"),
            format!("{}", stats.node_count),
            format!("{}", stats.height),
            fmt_bytes(stats.index_bytes as f64),
            fmt_bytes(aux as f64),
            format!("{:.2}x", aux as f64 / stats.index_bytes as f64),
        ]);
    }
    t.print();
    println!("\npaper (full scale): NE 3.8MB R-tree / 4.2MB BPTs; RD 18.5MB / 23.7MB.");
    println!("invariant: BPT overhead <= 2x the index (§4.2).");
}
