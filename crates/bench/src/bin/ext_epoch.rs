//! Epoch-cost extension experiment: what does publishing one update epoch
//! cost now that snapshots are structurally shared?
//!
//! Before this change, `apply_updates` deep-cloned the whole world (tree,
//! BPTs, object store, update log) per batch — O(dataset) time and fresh
//! memory per epoch. With `Arc`-per-node copy-on-write slots, `Arc`-per-BPT
//! stores and chunked store segments, a publish copies only what the batch
//! touches: the root-to-leaf spines of edited nodes, the dirtied nodes'
//! BPTs, and the store segments mutated objects live in.
//!
//! Two sweeps make that measurable:
//!
//! * **fixed batch, growing dataset** — publish latency and freshly
//!   allocated bytes should stay ~flat (per-update work is O(depth), and
//!   depth grows logarithmically);
//! * **fixed dataset, growing batch** — both should grow ~linearly with
//!   the batch.
//!
//! Per row: mean publish wall time, copied node slots / rebuilt BPTs /
//! copied store segments per publish (diagnosed by `Arc` pointer equality
//! against the previous pin), an estimate of freshly allocated bytes, and
//! the update log's retained record count (bounded by pruning).
//!
//! `--json OUT` writes the rows as `BENCH_epoch.json` for the CI artifact
//! trail.

use pc_bench::{fmt_bytes, json, HarnessOpts, Table};
use pc_rtree::proto::PAGE_BYTES;
use pc_server::{Server, ServerConfig};
use pc_sim::generate_update;
use pc_workload::datasets;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Update batches applied (and averaged over) per row.
const ROUNDS: usize = 24;

/// One row of measurements: `ROUNDS` batches of `batch` updates against a
/// server of `n_objects`, averaging publish latency and sharing diagnostics.
struct Row {
    objects: usize,
    batch: usize,
    nodes: usize,
    publish_us: f64,
    copied_nodes: f64,
    copied_node_chunks: f64,
    rebuilt_bpts: f64,
    copied_bpt_chunks: f64,
    copied_chunks: f64,
    fresh_bytes: f64,
    log_records: usize,
}

fn measure(n_objects: usize, batch: usize, seed: u64) -> Row {
    let server = Server::new(
        datasets::ne_like(n_objects, seed),
        pc_rtree::RTreeConfig::paper(),
        ServerConfig::default(),
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE60C);
    let mut publish_s = 0.0;
    let mut copied_nodes = 0usize;
    let mut copied_node_chunks = 0usize;
    let mut rebuilt_bpts = 0usize;
    let mut copied_bpt_chunks = 0usize;
    let mut copied_chunks = 0usize;
    let mut fresh_bytes = 0u64;
    for _ in 0..ROUNDS {
        let old = server.core().pin();
        let n_live = old.store().len() as u32;
        let updates: Vec<_> = (0..batch)
            .map(|_| generate_update(&mut rng, n_live))
            .collect();
        let t = Instant::now();
        server.apply_updates(&updates);
        publish_s += t.elapsed().as_secs_f64();
        let new = server.core().pin();

        let copied = new.tree().slab_len() - new.tree().shared_node_slots(old.tree());
        copied_nodes += copied;
        let node_chunks = new.tree().node_chunk_count() - new.tree().shared_node_chunks(old.tree());
        copied_node_chunks += node_chunks;
        let rebuilt = new.bpts().node_count() - new.bpts().shared_bpts(old.bpts());
        rebuilt_bpts += rebuilt;
        let bpt_chunks = new.bpts().chunk_count() - new.bpts().shared_chunks(old.bpts());
        copied_bpt_chunks += bpt_chunks;
        let chunks = new.store().chunk_count() - new.store().shared_chunks(old.store());
        copied_chunks += chunks;
        // Freshly allocated bytes per publish: copied index pages, the
        // rebuilt BPTs (at the store's mean aux size), copied store
        // segments (40 bytes per object record) and the copied chunk
        // spines (one `Arc` pointer per slot).
        let mean_bpt = new.bpt_bytes() / new.bpts().node_count().max(1) as u64;
        fresh_bytes += copied as u64 * PAGE_BYTES
            + rebuilt as u64 * mean_bpt
            + chunks as u64 * pc_rtree::STORE_CHUNK_LEN as u64 * 40
            + (node_chunks as u64 * pc_rtree::NODE_CHUNK_LEN as u64
                + bpt_chunks as u64 * pc_rtree::bpt::BPT_CHUNK_LEN as u64)
                * 8;
    }
    let snap = server.snapshot();
    let rounds = ROUNDS as f64;
    Row {
        objects: n_objects,
        batch,
        nodes: snap.tree().slab_len(),
        publish_us: publish_s * 1e6 / rounds,
        copied_nodes: copied_nodes as f64 / rounds,
        copied_node_chunks: copied_node_chunks as f64 / rounds,
        rebuilt_bpts: rebuilt_bpts as f64 / rounds,
        copied_bpt_chunks: copied_bpt_chunks as f64 / rounds,
        copied_chunks: copied_chunks as f64 / rounds,
        fresh_bytes: fresh_bytes as f64 / rounds,
        log_records: snap.update_log().retained_records(),
    }
}

fn render(rows: &[Row], sweep: &str) -> (Table, Vec<String>) {
    let mut t = Table::new(vec![
        "objects", "batch", "nodes", "publish", "copied n", "n-chunk", "bpts", "b-chunk", "chunks",
        "fresh", "log",
    ]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row(vec![
            r.objects.to_string(),
            r.batch.to_string(),
            r.nodes.to_string(),
            format!("{:.0}us", r.publish_us),
            format!("{:.1}", r.copied_nodes),
            format!("{:.1}", r.copied_node_chunks),
            format!("{:.1}", r.rebuilt_bpts),
            format!("{:.1}", r.copied_bpt_chunks),
            format!("{:.1}", r.copied_chunks),
            fmt_bytes(r.fresh_bytes),
            r.log_records.to_string(),
        ]);
        json_rows.push(
            json::Obj::new()
                .str("sweep", sweep)
                .num("objects", r.objects)
                .num("batch", r.batch)
                .num("nodes", r.nodes)
                .num("publish_us", r.publish_us)
                .num("copied_nodes", r.copied_nodes)
                .num("copied_node_chunks", r.copied_node_chunks)
                .num("rebuilt_bpts", r.rebuilt_bpts)
                .num("copied_bpt_chunks", r.copied_bpt_chunks)
                .num("copied_chunks", r.copied_chunks)
                .num("fresh_bytes", r.fresh_bytes)
                .num("log_records", r.log_records)
                .render(),
        );
    }
    (t, json_rows)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let max_objects = opts.objects.unwrap_or(40_000);
    let batch = opts.update_batch.max(2);
    println!("=== ext: epoch publish cost (structurally-shared snapshots) ===");
    println!("rounds={ROUNDS} seed={}\n", opts.seed);

    // Sweep 1: fixed batch, growing dataset — publish cost must not grow
    // with the dataset (that was the deep-clone regime).
    let mut sizes = vec![max_objects];
    while *sizes.last().unwrap() > 6_000 {
        sizes.push(sizes.last().unwrap() / 2);
    }
    sizes.reverse();
    println!("fixed batch = {batch} updates, growing dataset:");
    let dataset_rows: Vec<Row> = sizes
        .iter()
        .map(|&n| measure(n, batch, opts.seed))
        .collect();
    let (t, mut json_rows) = render(&dataset_rows, "dataset");
    t.print();

    // Sweep 2: fixed dataset, growing batch — cost should scale with the
    // batch instead.
    println!("\nfixed dataset = {max_objects} objects, growing batch:");
    let batch_rows: Vec<Row> = [1usize, 4, 16, 64]
        .iter()
        .map(|&b| measure(max_objects, b, opts.seed))
        .collect();
    let (t, batch_json) = render(&batch_rows, "batch");
    t.print();
    json_rows.extend(batch_json);

    let first = &dataset_rows[0];
    let last = dataset_rows.last().unwrap();
    let growth = last.fresh_bytes / first.fresh_bytes.max(1.0);
    let data_growth = last.objects as f64 / first.objects as f64;
    println!(
        "\n{}x dataset -> {:.2}x fresh bytes per publish (deep cloning would be ~{}x); \
         publish latency {:.0}us -> {:.0}us",
        data_growth, growth, data_growth, first.publish_us, last.publish_us
    );

    if let Some(path) = &opts.json {
        let doc = json::Obj::new()
            .str("bench", "ext_epoch")
            .num("seed", opts.seed)
            .num("rounds", ROUNDS)
            .num("fixed_batch", batch)
            .num("max_objects", max_objects)
            .raw("rows", &json::array(&json_rows))
            .render();
        std::fs::write(path, doc + "\n").expect("write --json output");
        println!("wrote {path}");
    }
}
