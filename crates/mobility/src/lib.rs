//! Client mobility models (§6.1): **random waypoint** (RAN, Broch et
//! al. \[4\]) and **directed movement** (DIR, Ren & Dunham \[15\]) — "DIR
//! restricts the selection of the next destination so that the moving
//! direction is roughly preserved. This is a better model for on-purpose
//! movements."
//!
//! Both models run on the simulated clock: the simulator advances them by
//! the think time plus the query's response time, so spatial locality
//! emerges exactly as in the paper (spd · think ≈ 0.5 % of the unit square
//! per query under Table 6.1 defaults).

use pc_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which mobility model to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MobilityModel {
    /// Random waypoint.
    Ran,
    /// Directed movement.
    Dir,
}

impl MobilityModel {
    pub fn name(&self) -> &'static str {
        match self {
            MobilityModel::Ran => "RAN",
            MobilityModel::Dir => "DIR",
        }
    }
}

impl std::fmt::Display for MobilityModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Movement parameters (Table 6.1: `spd = 0.0001` units/second).
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Mean speed in units per second.
    pub speed: f64,
    /// Speeds are drawn uniformly from `speed · [1-jitter, 1+jitter]`
    /// ("moves to it at a randomly chosen speed").
    pub speed_jitter: f64,
    /// Pause at each waypoint is uniform in `[0, pause_max_s]`.
    pub pause_max_s: f64,
    /// DIR: the heading may turn by at most this angle (radians) when a
    /// new destination is chosen.
    pub max_turn: f64,
    /// DIR: leg length range (fraction of the unit square).
    pub leg_range: (f64, f64),
}

impl MobilityConfig {
    pub fn paper() -> Self {
        MobilityConfig {
            speed: 1e-4,
            speed_jitter: 0.5,
            pause_max_s: 60.0,
            max_turn: std::f64::consts::FRAC_PI_6,
            leg_range: (0.05, 0.3),
        }
    }
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig::paper()
    }
}

/// A moving client.
#[derive(Clone, Debug)]
pub struct MobileClient {
    model: MobilityModel,
    cfg: MobilityConfig,
    rng: SmallRng,
    pos: Point,
    dest: Point,
    speed: f64,
    pause_left: f64,
    /// Current heading (radians); meaningful for DIR.
    heading: f64,
}

impl MobileClient {
    pub fn new(model: MobilityModel, cfg: MobilityConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pos = Point::new(rng.random_range(0.2..0.8), rng.random_range(0.2..0.8));
        let mut client = MobileClient {
            model,
            cfg,
            rng,
            pos,
            dest: pos,
            speed: cfg.speed,
            pause_left: 0.0,
            heading: 0.0,
        };
        client.heading = client.rng.random_range(0.0..std::f64::consts::TAU);
        client.pick_destination();
        client
    }

    pub fn model(&self) -> MobilityModel {
        self.model
    }

    #[inline]
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Advances the simulated clock by `dt` seconds: move, pause, re-plan.
    pub fn advance(&mut self, mut dt: f64) {
        while dt > 0.0 {
            if self.pause_left > 0.0 {
                let t = self.pause_left.min(dt);
                self.pause_left -= t;
                dt -= t;
                continue;
            }
            let remaining = self.pos.dist(&self.dest);
            if remaining <= f64::EPSILON {
                self.start_pause();
                self.pick_destination();
                continue;
            }
            let step = self.speed * dt;
            if step >= remaining {
                // Arrive, consume the proportional time, then pause.
                dt -= remaining / self.speed;
                self.pos = self.dest;
                self.start_pause();
                self.pick_destination();
            } else {
                let t = step / remaining;
                self.pos = self.pos.lerp(&self.dest, t);
                dt = 0.0;
            }
        }
    }

    fn start_pause(&mut self) {
        self.pause_left = self.rng.random_range(0.0..=self.cfg.pause_max_s);
    }

    fn pick_destination(&mut self) {
        self.speed = self.cfg.speed
            * self
                .rng
                .random_range(1.0 - self.cfg.speed_jitter..=1.0 + self.cfg.speed_jitter);
        match self.model {
            MobilityModel::Ran => {
                self.dest = Point::new(
                    self.rng.random_range(0.0..1.0),
                    self.rng.random_range(0.0..1.0),
                );
                self.heading = (self.dest.y - self.pos.y).atan2(self.dest.x - self.pos.x);
            }
            MobilityModel::Dir => {
                // Roughly preserve the direction; widen the turn window on
                // retries if the leg would leave the unit square, then fall
                // back to turning towards the center.
                for attempt in 0..8 {
                    let turn = self
                        .rng
                        .random_range(-self.cfg.max_turn..=self.cfg.max_turn)
                        * (1.0 + attempt as f64 * 0.5);
                    let heading = self.heading + turn;
                    let len = self
                        .rng
                        .random_range(self.cfg.leg_range.0..=self.cfg.leg_range.1);
                    let cand = Point::new(
                        self.pos.x + len * heading.cos(),
                        self.pos.y + len * heading.sin(),
                    );
                    if cand.x >= 0.0 && cand.x <= 1.0 && cand.y >= 0.0 && cand.y <= 1.0 {
                        self.heading = heading;
                        self.dest = cand;
                        return;
                    }
                }
                // Head back toward the center of the space.
                let center = Point::new(0.5, 0.5);
                self.heading = (center.y - self.pos.y).atan2(center.x - self.pos.x);
                let len = self
                    .rng
                    .random_range(self.cfg.leg_range.0..=self.cfg.leg_range.1);
                self.dest = Point::new(
                    self.pos.x + len * self.heading.cos(),
                    self.pos.y + len * self.heading.sin(),
                )
                .clamp_unit();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(model: MobilityModel, seed: u64, steps: usize, dt: f64) -> Vec<Point> {
        let mut c = MobileClient::new(model, MobilityConfig::paper(), seed);
        (0..steps)
            .map(|_| {
                c.advance(dt);
                c.position()
            })
            .collect()
    }

    #[test]
    fn positions_stay_in_unit_square() {
        for model in [MobilityModel::Ran, MobilityModel::Dir] {
            for p in run(model, 7, 5000, 120.0) {
                assert!((0.0..=1.0).contains(&p.x), "{model}: {p:?}");
                assert!((0.0..=1.0).contains(&p.y), "{model}: {p:?}");
            }
        }
    }

    #[test]
    fn movement_speed_is_bounded() {
        let cfg = MobilityConfig::paper();
        for model in [MobilityModel::Ran, MobilityModel::Dir] {
            let mut c = MobileClient::new(model, cfg, 3);
            let mut prev = c.position();
            for _ in 0..2000 {
                c.advance(100.0);
                let d = c.position().dist(&prev);
                assert!(
                    d <= cfg.speed * (1.0 + cfg.speed_jitter) * 100.0 + 1e-12,
                    "{model}: moved {d} in 100 s"
                );
                prev = c.position();
            }
        }
    }

    #[test]
    fn directed_movement_preserves_heading_better_than_ran() {
        // Mean cosine between successive displacement vectors, sampled at
        // leg scale (several thousand seconds) so waypoint turns dominate:
        // DIR must be notably more persistent.
        let persistence = |model| {
            let pts = run(model, 11, 800, 5000.0);
            let mut cos_sum = 0.0;
            let mut count = 0;
            for w in pts.windows(3) {
                let v1 = (w[1].x - w[0].x, w[1].y - w[0].y);
                let v2 = (w[2].x - w[1].x, w[2].y - w[1].y);
                let n1 = (v1.0 * v1.0 + v1.1 * v1.1).sqrt();
                let n2 = (v2.0 * v2.0 + v2.1 * v2.1).sqrt();
                if n1 > 1e-9 && n2 > 1e-9 {
                    cos_sum += (v1.0 * v2.0 + v1.1 * v2.1) / (n1 * n2);
                    count += 1;
                }
            }
            cos_sum / count as f64
        };
        let ran = persistence(MobilityModel::Ran);
        let dir = persistence(MobilityModel::Dir);
        assert!(
            dir > ran + 0.05,
            "DIR persistence {dir} not above RAN {ran}"
        );
    }

    #[test]
    fn trajectories_are_deterministic_per_seed() {
        let a = run(MobilityModel::Dir, 42, 500, 60.0);
        let b = run(MobilityModel::Dir, 42, 500, 60.0);
        assert_eq!(a, b);
        let c = run(MobilityModel::Dir, 43, 500, 60.0);
        assert_ne!(a, c);
    }

    #[test]
    fn ran_eventually_covers_the_space() {
        let pts = run(MobilityModel::Ran, 5, 20_000, 600.0);
        let (mut minx, mut maxx, mut miny, mut maxy) = (1.0f64, 0.0f64, 1.0f64, 0.0f64);
        for p in pts {
            minx = minx.min(p.x);
            maxx = maxx.max(p.x);
            miny = miny.min(p.y);
            maxy = maxy.max(p.y);
        }
        assert!(maxx - minx > 0.5, "x coverage too narrow");
        assert!(maxy - miny > 0.5, "y coverage too narrow");
    }

    #[test]
    fn zero_dt_is_a_no_op() {
        let mut c = MobileClient::new(MobilityModel::Ran, MobilityConfig::paper(), 1);
        let p = c.position();
        c.advance(0.0);
        assert_eq!(c.position(), p);
    }
}
