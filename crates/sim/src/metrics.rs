//! Per-query records, aggregate summaries, and the 500-query time series
//! the §6.4 figures plot. Summaries carry their raw accumulators
//! ([`SummaryTotals`]) so results from independent client sessions merge
//! exactly — the fleet driver folds per-client [`SimResult`]s into one.

use pc_rtree::proto::QuerySpec;

/// Query type tag for per-kind breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryKind {
    #[default]
    Range,
    Knn,
    Join,
}

impl QueryKind {
    pub fn of(spec: &QuerySpec) -> Self {
        match spec {
            QuerySpec::Range { .. } => QueryKind::Range,
            QuerySpec::Knn { .. } => QueryKind::Knn,
            QuerySpec::Join { .. } => QueryKind::Join,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Range => "range",
            QueryKind::Knn => "knn",
            QueryKind::Join => "join",
        }
    }
}

/// Everything measured for one query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryRecord {
    pub kind: QueryKind,
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
    pub saved_bytes: u64,
    pub confirmed_bytes: u64,
    pub transmitted_bytes: u64,
    pub result_bytes: u64,
    /// Payload bytes of results that were cached at issue time (`R ∩ C`).
    pub cached_result_bytes: u64,
    pub avg_response_s: f64,
    pub completion_s: f64,
    pub result_count: u32,
    /// Result objects cached at issue time.
    pub cached_results: u32,
    /// Of those, not served locally (the numerator of fmr).
    pub false_misses: u32,
    pub contacted: bool,
    /// Extra round trips caused by stale refusals (§7 invalidation
    /// protocol; 0 unless the run uses versioned remainders under churn).
    pub stale_retries: u32,
    /// Full-refresh refusals (the client fell below the server's pruned
    /// invalidation horizon and dropped its whole cache).
    pub full_refreshes: u32,
    /// Downlink bytes of invalidation lists + epoch stamps piggybacked on
    /// versioned replies (already included in `downlink_bytes`).
    pub invalidation_bytes: u64,
    pub client_cpu_s: f64,
    pub server_cpu_s: f64,
    pub client_expansions: u64,
}

/// The raw sums a [`Summary`] is derived from. Kept alongside the derived
/// rates so two summaries combine exactly: integer sums add losslessly and
/// ratios are re-derived from the combined sums, never averaged.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryTotals {
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
    pub result_bytes: u64,
    pub saved_bytes: u64,
    pub cached_result_bytes: u64,
    pub cached_results: u64,
    pub false_misses: u64,
    pub contacts: u64,
    pub stale_retries: u64,
    pub full_refreshes: u64,
    pub invalidation_bytes: u64,
    pub client_expansions: u64,
    /// Sum of per-query §4.1 response times over queries with results.
    pub response_s: f64,
    /// Number of queries with results (the response average's denominator).
    pub response_queries: u64,
    pub client_cpu_s: f64,
    pub server_cpu_s: f64,
}

impl SummaryTotals {
    fn push(&mut self, r: &QueryRecord) {
        self.uplink_bytes += r.uplink_bytes;
        self.downlink_bytes += r.downlink_bytes;
        self.result_bytes += r.result_bytes;
        self.saved_bytes += r.saved_bytes;
        self.cached_result_bytes += r.cached_result_bytes;
        self.cached_results += r.cached_results as u64;
        self.false_misses += r.false_misses as u64;
        self.contacts += r.contacted as u64;
        self.stale_retries += r.stale_retries as u64;
        self.full_refreshes += r.full_refreshes as u64;
        self.invalidation_bytes += r.invalidation_bytes;
        self.client_expansions += r.client_expansions;
        if r.result_bytes > 0 {
            self.response_s += r.avg_response_s;
            self.response_queries += 1;
        }
        self.client_cpu_s += r.client_cpu_s;
        self.server_cpu_s += r.server_cpu_s;
    }

    /// Field-wise sum (commutative: `a.combine(&b) == b.combine(&a)`).
    pub fn combine(&self, other: &SummaryTotals) -> SummaryTotals {
        SummaryTotals {
            uplink_bytes: self.uplink_bytes + other.uplink_bytes,
            downlink_bytes: self.downlink_bytes + other.downlink_bytes,
            result_bytes: self.result_bytes + other.result_bytes,
            saved_bytes: self.saved_bytes + other.saved_bytes,
            cached_result_bytes: self.cached_result_bytes + other.cached_result_bytes,
            cached_results: self.cached_results + other.cached_results,
            false_misses: self.false_misses + other.false_misses,
            contacts: self.contacts + other.contacts,
            stale_retries: self.stale_retries + other.stale_retries,
            full_refreshes: self.full_refreshes + other.full_refreshes,
            invalidation_bytes: self.invalidation_bytes + other.invalidation_bytes,
            client_expansions: self.client_expansions + other.client_expansions,
            response_s: self.response_s + other.response_s,
            response_queries: self.response_queries + other.response_queries,
            client_cpu_s: self.client_cpu_s + other.client_cpu_s,
            server_cpu_s: self.server_cpu_s + other.server_cpu_s,
        }
    }
}

/// Aggregates over a whole run (or a window).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub queries: usize,
    pub avg_uplink_bytes: f64,
    pub avg_downlink_bytes: f64,
    /// Mean of the per-query §4.1 response time, over queries with results.
    pub avg_response_s: f64,
    /// Cache hit rate `hit_c = Σ|Rs| / Σ|R|` (bytes).
    pub hit_c: f64,
    /// Byte hit rate `hit_b = Σ|R∩C| / Σ|R|` (bytes).
    pub hit_b: f64,
    /// False-miss rate `P(o ∉ Rs | o ∈ R∩C)` (objects).
    pub fmr: f64,
    pub avg_client_cpu_ms: f64,
    pub avg_server_cpu_ms: f64,
    /// Fraction of queries that contacted the server.
    pub contact_rate: f64,
    /// Stale refusals per server contact (§7 invalidation under churn).
    pub stale_retry_rate: f64,
    pub avg_client_expansions: f64,
    /// The raw sums this summary derives from (basis for exact merging).
    pub totals: SummaryTotals,
}

impl Summary {
    /// Summarizes a batch of records from scratch.
    pub fn from_records(records: &[QueryRecord]) -> Summary {
        let mut totals = SummaryTotals::default();
        for r in records {
            totals.push(r);
        }
        Summary::from_totals(records.len(), totals)
    }

    /// Derives the averages and rates from raw sums.
    pub fn from_totals(queries: usize, totals: SummaryTotals) -> Summary {
        if queries == 0 {
            return Summary::default();
        }
        let nf = queries as f64;
        Summary {
            queries,
            avg_uplink_bytes: totals.uplink_bytes as f64 / nf,
            avg_downlink_bytes: totals.downlink_bytes as f64 / nf,
            avg_response_s: if totals.response_queries > 0 {
                totals.response_s / totals.response_queries as f64
            } else {
                0.0
            },
            hit_c: ratio(totals.saved_bytes, totals.result_bytes),
            hit_b: ratio(totals.cached_result_bytes, totals.result_bytes),
            fmr: ratio(totals.false_misses, totals.cached_results),
            avg_client_cpu_ms: totals.client_cpu_s * 1e3 / nf,
            avg_server_cpu_ms: totals.server_cpu_s * 1e3 / nf,
            contact_rate: totals.contacts as f64 / nf,
            stale_retry_rate: ratio(totals.stale_retries, totals.contacts),
            avg_client_expansions: totals.client_expansions as f64 / nf,
            totals,
        }
    }

    /// Combines two summaries as if their underlying runs were one: sums
    /// add, rates re-derive. Commutative, and exact for every field backed
    /// by integer accumulators.
    pub fn merge(&self, other: &Summary) -> Summary {
        Summary::from_totals(
            self.queries + other.queries,
            self.totals.combine(&other.totals),
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One point of the Fig. 11 time series (aggregated over `window` queries).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowPoint {
    /// Index of the last query in the window (1-based).
    pub query_end: usize,
    pub fmr: f64,
    /// Index bytes / cache capacity at window end (Fig. 11(b)'s `i/c`).
    pub index_to_cache: f64,
    pub avg_response_s: f64,
    pub hit_c: f64,
}

/// Full simulation output — one client's stream, or (after
/// [`SimResult::merge`]) the concatenation of several clients' streams.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    pub records: Vec<QueryRecord>,
    pub summary: Summary,
    pub windows: Vec<WindowPoint>,
    /// Simulated seconds this client's stream spanned (think times plus
    /// reply completions). Merging takes the max: fleet clients run in
    /// parallel in simulated time.
    pub sim_elapsed_s: f64,
    window_size: usize,
    window_start: usize,
    last_index_bytes: u64,
    last_capacity: u64,
}

impl SimResult {
    pub(crate) fn new(window_size: usize) -> Self {
        SimResult {
            window_size: window_size.max(1),
            ..Default::default()
        }
    }

    pub(crate) fn push(
        &mut self,
        record: QueryRecord,
        _cache_used: u64,
        index_bytes: u64,
        capacity: u64,
    ) {
        self.records.push(record);
        self.last_index_bytes = index_bytes;
        self.last_capacity = capacity;
        if self.records.len() - self.window_start == self.window_size {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let slice = &self.records[self.window_start..];
        let s = Summary::from_records(slice);
        self.windows.push(WindowPoint {
            query_end: self.records.len(),
            fmr: s.fmr,
            index_to_cache: ratio(self.last_index_bytes, self.last_capacity),
            avg_response_s: s.avg_response_s,
            hit_c: s.hit_c,
        });
        self.window_start = self.records.len();
    }

    pub(crate) fn finish(&mut self) {
        if self.records.len() > self.window_start {
            self.close_window();
        }
        self.summary = Summary::from_records(&self.records);
    }

    /// Folds another (finished) result into this one: records concatenate,
    /// window points keep their per-stream shape with `query_end` offset
    /// into the concatenation, summaries combine exactly via their totals,
    /// and the simulated span takes the max (parallel streams).
    pub fn merge(&mut self, other: &SimResult) {
        let offset = self.records.len();
        self.records.extend_from_slice(&other.records);
        self.windows.extend(other.windows.iter().map(|w| {
            let mut w = *w;
            w.query_end += offset;
            w
        }));
        self.summary = self.summary.merge(&other.summary);
        self.sim_elapsed_s = self.sim_elapsed_s.max(other.sim_elapsed_s);
        self.window_start = self.records.len();
    }

    /// Per-kind summaries (range / knn / join).
    pub fn by_kind(&self, kind: QueryKind) -> Summary {
        let filtered: Vec<QueryRecord> = self
            .records
            .iter()
            .copied()
            .filter(|r| r.kind == kind)
            .collect();
        Summary::from_records(&filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(saved: u64, cached: u64, total: u64, fm: u32, cobj: u32) -> QueryRecord {
        QueryRecord {
            kind: QueryKind::Range,
            saved_bytes: saved,
            cached_result_bytes: cached,
            result_bytes: total,
            false_misses: fm,
            cached_results: cobj,
            avg_response_s: 1.0,
            uplink_bytes: 100,
            downlink_bytes: 200,
            contacted: true,
            ..Default::default()
        }
    }

    #[test]
    fn summary_rates() {
        let mut r = SimResult::new(10);
        r.push(rec(500, 800, 1000, 1, 4), 0, 0, 1);
        r.push(rec(0, 0, 1000, 0, 0), 0, 0, 1);
        r.finish();
        let s = r.summary;
        assert_eq!(s.queries, 2);
        assert!((s.hit_c - 0.25).abs() < 1e-12);
        assert!((s.hit_b - 0.4).abs() < 1e-12);
        assert!((s.fmr - 0.25).abs() < 1e-12);
        assert!((s.avg_uplink_bytes - 100.0).abs() < 1e-12);
        assert!((s.avg_downlink_bytes - 200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_summary_is_zero() {
        let mut r = SimResult::new(5);
        r.finish();
        assert_eq!(r.summary.queries, 0);
        assert_eq!(r.summary.hit_c, 0.0);
        assert!(r.windows.is_empty());
    }

    #[test]
    fn windows_close_on_boundary_and_at_end() {
        let mut r = SimResult::new(2);
        for _ in 0..5 {
            r.push(rec(0, 0, 100, 0, 0), 0, 50, 100);
        }
        r.finish();
        assert_eq!(r.windows.len(), 3, "2+2+1 queries");
        assert_eq!(r.windows[0].query_end, 2);
        assert_eq!(r.windows[2].query_end, 5);
        assert!((r.windows[0].index_to_cache - 0.5).abs() < 1e-12);
    }

    #[test]
    fn response_average_skips_empty_results() {
        let mut r = SimResult::new(10);
        let mut empty = rec(0, 0, 0, 0, 0);
        empty.avg_response_s = 99.0; // must be ignored
        r.push(rec(0, 0, 100, 0, 0), 0, 0, 1);
        r.push(empty, 0, 0, 1);
        r.finish();
        assert!((r.summary.avg_response_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_kind_filters() {
        let mut r = SimResult::new(10);
        r.push(rec(0, 0, 100, 0, 0), 0, 0, 1);
        let mut k = rec(0, 0, 100, 0, 0);
        k.kind = QueryKind::Join;
        r.push(k, 0, 0, 1);
        r.finish();
        assert_eq!(r.by_kind(QueryKind::Range).queries, 1);
        assert_eq!(r.by_kind(QueryKind::Join).queries, 1);
        assert_eq!(r.by_kind(QueryKind::Knn).queries, 0);
    }

    #[test]
    fn summary_merge_equals_one_big_run() {
        let recs_a = [rec(500, 800, 1000, 1, 4), rec(0, 0, 1000, 0, 0)];
        let recs_b = [rec(100, 100, 400, 2, 3)];
        let all: Vec<QueryRecord> = recs_a.iter().chain(&recs_b).copied().collect();
        let merged = Summary::from_records(&recs_a).merge(&Summary::from_records(&recs_b));
        assert_eq!(merged, Summary::from_records(&all));
    }

    #[test]
    fn result_merge_concatenates_and_offsets_windows() {
        let mut a = SimResult::new(2);
        for _ in 0..4 {
            a.push(rec(0, 0, 100, 0, 0), 0, 50, 100);
        }
        a.finish();
        a.sim_elapsed_s = 10.0;
        let mut b = SimResult::new(2);
        for _ in 0..3 {
            b.push(rec(500, 800, 1000, 1, 4), 0, 10, 100);
        }
        b.finish();
        b.sim_elapsed_s = 25.0;

        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.records.len(), 7);
        assert_eq!(m.summary.queries, 7);
        assert_eq!(m.windows.len(), a.windows.len() + b.windows.len());
        // b's first window (query_end 2) lands after a's 4 records.
        assert_eq!(m.windows[a.windows.len()].query_end, 6);
        assert!((m.sim_elapsed_s - 25.0).abs() < 1e-12, "max of spans");
        // Merged summary equals the summary over all records.
        assert_eq!(m.summary, Summary::from_records(&m.records));
    }
}
