//! Per-query records, aggregate summaries, and the 500-query time series
//! the §6.4 figures plot.

use pc_rtree::proto::QuerySpec;

/// Query type tag for per-kind breakdowns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryKind {
    #[default]
    Range,
    Knn,
    Join,
}

impl QueryKind {
    pub fn of(spec: &QuerySpec) -> Self {
        match spec {
            QuerySpec::Range { .. } => QueryKind::Range,
            QuerySpec::Knn { .. } => QueryKind::Knn,
            QuerySpec::Join { .. } => QueryKind::Join,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Range => "range",
            QueryKind::Knn => "knn",
            QueryKind::Join => "join",
        }
    }
}

/// Everything measured for one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryRecord {
    pub kind: QueryKind,
    pub uplink_bytes: u64,
    pub downlink_bytes: u64,
    pub saved_bytes: u64,
    pub confirmed_bytes: u64,
    pub transmitted_bytes: u64,
    pub result_bytes: u64,
    /// Payload bytes of results that were cached at issue time (`R ∩ C`).
    pub cached_result_bytes: u64,
    pub avg_response_s: f64,
    pub completion_s: f64,
    pub result_count: u32,
    /// Result objects cached at issue time.
    pub cached_results: u32,
    /// Of those, not served locally (the numerator of fmr).
    pub false_misses: u32,
    pub contacted: bool,
    pub client_cpu_s: f64,
    pub server_cpu_s: f64,
    pub client_expansions: u64,
}

/// Aggregates over a whole run (or a window).
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    pub queries: usize,
    pub avg_uplink_bytes: f64,
    pub avg_downlink_bytes: f64,
    /// Mean of the per-query §4.1 response time, over queries with results.
    pub avg_response_s: f64,
    /// Cache hit rate `hit_c = Σ|Rs| / Σ|R|` (bytes).
    pub hit_c: f64,
    /// Byte hit rate `hit_b = Σ|R∩C| / Σ|R|` (bytes).
    pub hit_b: f64,
    /// False-miss rate `P(o ∉ Rs | o ∈ R∩C)` (objects).
    pub fmr: f64,
    pub avg_client_cpu_ms: f64,
    pub avg_server_cpu_ms: f64,
    /// Fraction of queries that contacted the server.
    pub contact_rate: f64,
    pub avg_client_expansions: f64,
}

impl Summary {
    fn from_records(records: &[QueryRecord]) -> Summary {
        let n = records.len();
        if n == 0 {
            return Summary::default();
        }
        let mut s = Summary {
            queries: n,
            ..Default::default()
        };
        let mut result_bytes = 0u64;
        let mut saved_bytes = 0u64;
        let mut cached_bytes = 0u64;
        let mut cached_objs = 0u64;
        let mut false_misses = 0u64;
        let mut resp_sum = 0.0;
        let mut resp_n = 0usize;
        for r in records {
            s.avg_uplink_bytes += r.uplink_bytes as f64;
            s.avg_downlink_bytes += r.downlink_bytes as f64;
            s.avg_client_cpu_ms += r.client_cpu_s * 1e3;
            s.avg_server_cpu_ms += r.server_cpu_s * 1e3;
            s.avg_client_expansions += r.client_expansions as f64;
            s.contact_rate += r.contacted as u8 as f64;
            result_bytes += r.result_bytes;
            saved_bytes += r.saved_bytes;
            cached_bytes += r.cached_result_bytes;
            cached_objs += r.cached_results as u64;
            false_misses += r.false_misses as u64;
            if r.result_bytes > 0 {
                resp_sum += r.avg_response_s;
                resp_n += 1;
            }
        }
        let nf = n as f64;
        s.avg_uplink_bytes /= nf;
        s.avg_downlink_bytes /= nf;
        s.avg_client_cpu_ms /= nf;
        s.avg_server_cpu_ms /= nf;
        s.avg_client_expansions /= nf;
        s.contact_rate /= nf;
        s.avg_response_s = if resp_n > 0 {
            resp_sum / resp_n as f64
        } else {
            0.0
        };
        s.hit_c = ratio(saved_bytes, result_bytes);
        s.hit_b = ratio(cached_bytes, result_bytes);
        s.fmr = ratio(false_misses, cached_objs);
        s
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One point of the Fig. 11 time series (aggregated over `window` queries).
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowPoint {
    /// Index of the last query in the window (1-based).
    pub query_end: usize,
    pub fmr: f64,
    /// Index bytes / cache capacity at window end (Fig. 11(b)'s `i/c`).
    pub index_to_cache: f64,
    pub avg_response_s: f64,
    pub hit_c: f64,
}

/// Full simulation output.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    pub records: Vec<QueryRecord>,
    pub summary: Summary,
    pub windows: Vec<WindowPoint>,
    window_size: usize,
    window_start: usize,
    last_index_bytes: u64,
    last_capacity: u64,
}

impl SimResult {
    pub(crate) fn new(window_size: usize) -> Self {
        SimResult {
            window_size: window_size.max(1),
            ..Default::default()
        }
    }

    pub(crate) fn push(
        &mut self,
        record: QueryRecord,
        _cache_used: u64,
        index_bytes: u64,
        capacity: u64,
    ) {
        self.records.push(record);
        self.last_index_bytes = index_bytes;
        self.last_capacity = capacity;
        if self.records.len() - self.window_start == self.window_size {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let slice = &self.records[self.window_start..];
        let s = Summary::from_records(slice);
        self.windows.push(WindowPoint {
            query_end: self.records.len(),
            fmr: s.fmr,
            index_to_cache: ratio(self.last_index_bytes, self.last_capacity),
            avg_response_s: s.avg_response_s,
            hit_c: s.hit_c,
        });
        self.window_start = self.records.len();
    }

    pub(crate) fn finish(&mut self) {
        if self.records.len() > self.window_start {
            self.close_window();
        }
        self.summary = Summary::from_records(&self.records);
    }

    /// Per-kind summaries (range / knn / join).
    pub fn by_kind(&self, kind: QueryKind) -> Summary {
        let filtered: Vec<QueryRecord> = self
            .records
            .iter()
            .copied()
            .filter(|r| r.kind == kind)
            .collect();
        Summary::from_records(&filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(saved: u64, cached: u64, total: u64, fm: u32, cobj: u32) -> QueryRecord {
        QueryRecord {
            kind: QueryKind::Range,
            saved_bytes: saved,
            cached_result_bytes: cached,
            result_bytes: total,
            false_misses: fm,
            cached_results: cobj,
            avg_response_s: 1.0,
            uplink_bytes: 100,
            downlink_bytes: 200,
            contacted: true,
            ..Default::default()
        }
    }

    #[test]
    fn summary_rates() {
        let mut r = SimResult::new(10);
        r.push(rec(500, 800, 1000, 1, 4), 0, 0, 1);
        r.push(rec(0, 0, 1000, 0, 0), 0, 0, 1);
        r.finish();
        let s = r.summary;
        assert_eq!(s.queries, 2);
        assert!((s.hit_c - 0.25).abs() < 1e-12);
        assert!((s.hit_b - 0.4).abs() < 1e-12);
        assert!((s.fmr - 0.25).abs() < 1e-12);
        assert!((s.avg_uplink_bytes - 100.0).abs() < 1e-12);
        assert!((s.avg_downlink_bytes - 200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_summary_is_zero() {
        let mut r = SimResult::new(5);
        r.finish();
        assert_eq!(r.summary.queries, 0);
        assert_eq!(r.summary.hit_c, 0.0);
        assert!(r.windows.is_empty());
    }

    #[test]
    fn windows_close_on_boundary_and_at_end() {
        let mut r = SimResult::new(2);
        for _ in 0..5 {
            r.push(rec(0, 0, 100, 0, 0), 0, 50, 100);
        }
        r.finish();
        assert_eq!(r.windows.len(), 3, "2+2+1 queries");
        assert_eq!(r.windows[0].query_end, 2);
        assert_eq!(r.windows[2].query_end, 5);
        assert!((r.windows[0].index_to_cache - 0.5).abs() < 1e-12);
    }

    #[test]
    fn response_average_skips_empty_results() {
        let mut r = SimResult::new(10);
        let mut empty = rec(0, 0, 0, 0, 0);
        empty.avg_response_s = 99.0; // must be ignored
        r.push(rec(0, 0, 100, 0, 0), 0, 0, 1);
        r.push(empty, 0, 0, 1);
        r.finish();
        assert!((r.summary.avg_response_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn by_kind_filters() {
        let mut r = SimResult::new(10);
        r.push(rec(0, 0, 100, 0, 0), 0, 0, 1);
        let mut k = rec(0, 0, 100, 0, 0);
        k.kind = QueryKind::Join;
        r.push(k, 0, 0, 1);
        r.finish();
        assert_eq!(r.by_kind(QueryKind::Range).queries, 1);
        assert_eq!(r.by_kind(QueryKind::Join).queries, 1);
        assert_eq!(r.by_kind(QueryKind::Knn).queries, 0);
    }
}
