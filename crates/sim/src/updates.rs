//! Client and workload drivers for the §7 update/invalidation extension:
//! [`UpdatingClient`] wraps the proactive [`Client`] with epoch tracking
//! and the stale-retry loop (the single-threaded reference
//! implementation; fleet sessions speak the same protocol through
//! `ProactiveRunner`'s versioned mode), and [`ChurnConfig`] +
//! [`generate_update`] describe the paper-§6-style update workload the
//! fleet's update-driver thread injects while sessions run.

use pc_cache::{Catalog, ReplacementPolicy};
use pc_client::{Client, QueryAnswer};
use pc_geom::{Point, Rect};
use pc_net::Ledger;
use pc_rtree::proto::{
    QuerySpec, Request, CONFIRM_BYTES, EPOCH_BYTES, FULL_REFRESH_BYTES, INVALIDATION_BYTES,
    OBJECT_HEADER_BYTES, PAIR_BYTES,
};
use pc_rtree::{NodeId, ObjectId};
use pc_server::{ClientId, ServerHandle, Update, VersionedReply, SUPER_ROOT};
use rand::rngs::SmallRng;
use rand::Rng;

/// Outcome of one version-aware query.
#[derive(Clone, Debug, Default)]
pub struct UpdatingOutcome {
    pub answer: QueryAnswer,
    pub ledger: Ledger,
    /// Server contacts this query needed (1 normally; 2 when the first
    /// remainder was refused as stale).
    pub round_trips: u32,
    /// Node items dropped by invalidation during this query.
    pub invalidated_items: usize,
    /// Full-refresh refusals suffered (the client fell below the server's
    /// pruned invalidation horizon and dropped its whole cache).
    pub full_refreshes: u32,
}

/// A proactive client that follows the epoch-stamped invalidation protocol.
pub struct UpdatingClient {
    client: Client,
    /// The id this client identifies as on every contact — it selects the
    /// server-side adaptive state and feeds the fleet low-water mark.
    client_id: ClientId,
    epoch: u64,
}

impl UpdatingClient {
    pub fn new(capacity: u64, policy: ReplacementPolicy, catalog: Catalog) -> Self {
        UpdatingClient {
            client: Client::new(capacity, policy, catalog),
            client_id: 0,
            epoch: 0,
        }
    }

    /// Identifies this client as `id` towards the server (mirrors
    /// `ProactiveRunner::with_client`). Without this every request would
    /// travel as client 0, corrupting per-client adaptive state and fmr
    /// attribution the moment two clients share a server.
    pub fn with_client(mut self, id: ClientId) -> Self {
        self.client_id = id;
        self
    }

    /// Declares the epoch this client's catalog/cache state was built from.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    pub fn client(&self) -> &Client {
        &self.client
    }

    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn apply_invalidations(&mut self, nodes: &[NodeId]) -> usize {
        let mut dropped = 0;
        for &n in nodes {
            // A cluster's virtual super-root is routing metadata: drop
            // only its own view and keep the shard subtrees (each shard
            // ships its own invalidation entries). A deep drop would tear
            // out views an in-flight remainder heap still references.
            let (items, _) = if n == SUPER_ROOT {
                self.client.cache_mut().invalidate_node_shallow(n)
            } else {
                self.client.cache_mut().invalidate_node(n)
            };
            dropped += items;
        }
        dropped
    }

    /// Runs one query to completion, retrying after stale refusals and
    /// recovering from full-refresh refusals. All contacts travel as
    /// [`Request::RemainderVersioned`] envelopes over the handle's
    /// transport, stamped with this client's [`ClientId`].
    pub fn query(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> UpdatingOutcome {
        let mut out = UpdatingOutcome::default();
        self.client.begin_query();
        // A stale refusal advances the client to the refusing epoch, so a
        // retry only repeats when *another* update batch lands mid-query.
        // Against a live concurrently-updating server that can happen
        // repeatedly; the cap (matching `ProactiveRunner`'s) turns a
        // pathological livelock into a loud failure instead of spinning.
        for _attempt in 0..64 {
            // Re-pinned every attempt: after a refusal the next contact is
            // answered by a *newer* epoch, so byte sizing and liveness
            // reads must come from a store at least as new as the reply —
            // never the pre-query pin.
            let snap = server.core().pin();
            let store = snap.store();
            let local = self.client.run_local(spec);
            out.ledger.saved_bytes = local
                .saved
                .iter()
                .map(|&id| store.get(id).size_bytes as u64)
                .sum();
            let Some(rq) = &local.remainder else {
                out.answer = self.client.assemble(&local, None);
                return out;
            };
            let req = Request::RemainderVersioned {
                query: rq.clone(),
                epoch: self.epoch,
            };
            out.round_trips += 1;
            out.ledger.contacted_server = true;
            out.ledger.contacts += 1;
            out.ledger.uplink_bytes += req.wire_bytes();
            out.ledger.server_time_s += server_time_s;
            match server.call(self.client_id, req).into_versioned() {
                VersionedReply::Fresh {
                    reply,
                    invalidate,
                    epoch,
                } => {
                    out.invalidated_items += self.apply_invalidations(&invalidate);
                    out.ledger.extra_downlink_bytes +=
                        invalidate.len() as u64 * INVALIDATION_BYTES + EPOCH_BYTES;
                    self.epoch = epoch;
                    out.ledger.confirmed_bytes += reply
                        .confirmed
                        .iter()
                        .map(|&id| store.get(id).size_bytes as u64)
                        .sum::<u64>();
                    out.ledger.confirm_wire_bytes += reply.confirmed.len() as u64 * CONFIRM_BYTES;
                    out.ledger
                        .transmitted
                        .extend(reply.objects.iter().map(|o| o.size_bytes));
                    out.ledger.transmitted_header_bytes +=
                        reply.objects.len() as u64 * OBJECT_HEADER_BYTES;
                    out.ledger.extra_downlink_bytes +=
                        reply.index_bytes() + reply.pairs.len() as u64 * PAIR_BYTES;
                    self.client.absorb(&reply, pos);
                    out.answer = self.client.assemble(&local, Some(&reply));
                    return out;
                }
                VersionedReply::Stale { invalidate, epoch } => {
                    out.invalidated_items += self.apply_invalidations(&invalidate);
                    out.ledger.extra_downlink_bytes +=
                        invalidate.len() as u64 * INVALIDATION_BYTES + EPOCH_BYTES;
                    self.epoch = epoch;
                    // Loop: re-run stage ① against the cleaned cache.
                }
                VersionedReply::FullRefresh { .. } => {
                    // The server pruned history below our epoch: drop the
                    // whole cache, re-sync the catalog from a fresh pin
                    // (out-of-band metadata, like the bootstrap catalog)
                    // and restart stage ① cold.
                    out.full_refreshes += 1;
                    out.ledger.extra_downlink_bytes += FULL_REFRESH_BYTES;
                    let (root, epoch) = server.bootstrap_root();
                    let (items, _) = self.client.full_refresh(Catalog { root });
                    out.invalidated_items += items;
                    self.epoch = epoch;
                }
            }
        }
        // pc-check: allow(no-unwrap, "deliberate loud livelock cap: 64 straight stale retries means the workload config is broken (driver outpaces every query) and silently returning a partial result would corrupt the measurement")
        panic!(
            "client {}: stale retries did not converge in 64 attempts — \
             the update driver is outpacing every query",
            self.client_id
        );
    }
}

/// Server-update workload injected under a running fleet (paper §6-style
/// mix of moves, inserts and deletes; cf. the `ext_invalidation`
/// experiment's single-client rates).
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Updates applied per 100 completed queries, fleet-wide. 0 disables
    /// churn entirely (no driver thread, plain protocol) so a 0-rate
    /// fleet stays bit-identical to an update-free one.
    pub rate_per_100: u32,
    /// Updates per applied batch — one epoch bump per batch.
    pub batch: usize,
    /// Seed of the update stream (decorrelated from the query seed).
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            rate_per_100: 0,
            batch: 1,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One update of the churn mix: half moves (mobile objects relocating),
/// a quarter inserts, a quarter deletes — net cardinality stays roughly
/// flat while the index keeps restructuring. `n_live` is the current
/// store size (dense ids; deletes of already-tombstoned ids are no-ops
/// the server ignores).
pub fn generate_update(rng: &mut SmallRng, n_live: u32) -> Update {
    let roll = rng.random_range(0..4u32);
    let random_point = |rng: &mut SmallRng| {
        Rect::from_point(Point::new(
            rng.random_range(0.0..1.0),
            rng.random_range(0.0..1.0),
        ))
    };
    match roll {
        0 | 1 => Update::Move {
            id: ObjectId(rng.random_range(0..n_live)),
            to: random_point(rng),
        },
        2 => Update::Insert {
            mbr: random_point(rng),
            size_bytes: 10_000,
        },
        _ => Update::Delete(ObjectId(rng.random_range(0..n_live))),
    }
}
