//! The multi-client fleet driver: N [`ClientSession`]s against one shared
//! [`ServerHandle`] — a bare `&Server`, an `InProcess` transport, or the
//! batched remainder service — spread over scoped worker threads. Sessions
//! are seeded per client id and never share mutable state (the server's
//! read path is `&self`, its adaptive table is per-client), so a
//! concurrent fleet run produces exactly the per-client metrics of the
//! same sessions run sequentially — only wall-clock CPU timings differ.

use crate::config::SimConfig;
use crate::metrics::SimResult;
use crate::session::ClientSession;
use pc_server::{ClientId, ServerHandle};
use std::time::Instant;

/// Builder/driver for a fleet of concurrent client sessions.
#[derive(Clone, Copy, Debug)]
pub struct Fleet {
    cfg: SimConfig,
    clients: u32,
    threads: usize,
}

/// What a fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// One finished result per client, indexed by client id.
    pub per_client: Vec<SimResult>,
    /// All clients folded together ([`SimResult::merge`] in id order).
    pub merged: SimResult,
    /// Wall-clock seconds for the whole fleet run.
    pub wall_s: f64,
}

impl FleetResult {
    fn collect(mut per_client: Vec<(ClientId, SimResult)>, wall_s: f64) -> Self {
        per_client.sort_by_key(|(id, _)| *id);
        let per_client: Vec<SimResult> = per_client.into_iter().map(|(_, r)| r).collect();
        let mut merged = SimResult::default();
        for r in &per_client {
            merged.merge(r);
        }
        FleetResult {
            per_client,
            merged,
            wall_s,
        }
    }

    pub fn total_queries(&self) -> usize {
        self.merged.summary.queries
    }

    /// Aggregate server throughput against the wall clock (hardware view).
    pub fn wall_qps(&self) -> f64 {
        self.total_queries() as f64 / self.wall_s.max(1e-9)
    }

    /// Aggregate throughput in *simulated* time: total queries over the
    /// longest client stream's span. Client streams run in parallel in the
    /// simulated world, so this is the offered load one server absorbs —
    /// it grows with fleet size regardless of host core count.
    pub fn sim_qps(&self) -> f64 {
        self.total_queries() as f64 / self.merged.sim_elapsed_s.max(1e-9)
    }
}

impl Fleet {
    pub fn new(cfg: SimConfig) -> Self {
        Fleet {
            cfg,
            clients: 1,
            threads: 0,
        }
    }

    /// Number of client sessions (ids `0..n`).
    pub fn clients(mut self, n: u32) -> Self {
        assert!(n > 0, "a fleet needs at least one client");
        self.clients = n;
        self
    }

    /// Worker-thread cap; 0 (the default) uses the host parallelism.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    fn effective_threads(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.max(1).min(self.clients as usize)
    }

    /// Runs the fleet concurrently on scoped threads: client ids are dealt
    /// round-robin to workers, each worker drives its sessions to
    /// completion against the shared server handle.
    pub fn run(&self, server: &dyn ServerHandle) -> FleetResult {
        let start = Instant::now();
        let workers = self.effective_threads();
        let cfg = self.cfg;
        let clients = self.clients;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut id = w as u32;
                        while id < clients {
                            out.push((id, ClientSession::new(&cfg, server, id).run(server)));
                            id += workers as u32;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet worker panicked"))
                .collect::<Vec<_>>()
        });
        FleetResult::collect(results, start.elapsed().as_secs_f64())
    }

    /// Runs the same sessions one after another on the calling thread —
    /// the reference for the concurrency-determinism tests.
    pub fn run_sequential(&self, server: &dyn ServerHandle) -> FleetResult {
        let start = Instant::now();
        let results = (0..self.clients)
            .map(|id| (id, ClientSession::new(&self.cfg, server, id).run(server)))
            .collect();
        FleetResult::collect(results, start.elapsed().as_secs_f64())
    }
}
