//! The multi-client fleet driver: N [`ClientSession`]s against one shared
//! [`ServerHandle`] — a bare `&Server`, an `InProcess` transport, or the
//! batched remainder service — spread over scoped worker threads. Sessions
//! are seeded per client id and never share mutable state (the server's
//! read path is `&self`, its adaptive table is per-client), so a
//! concurrent fleet run produces exactly the per-client metrics of the
//! same sessions run sequentially — only wall-clock CPU timings differ.
//!
//! With [`Fleet::churn`], an **update driver** thread runs alongside the
//! workers, injecting paper-§6-style update batches through the epoch-swap
//! `&self` [`apply_updates`](pc_server::ServerCore::apply_updates) path
//! while sessions keep querying. Churn makes sessions speak the §7
//! versioned protocol (resubmit on `Stale`, invalidation bytes charged to
//! their ledgers); per-query outcomes then depend on update/query
//! interleaving, so a churned run is *not* deterministic — but every
//! contact answer is exact for its epoch, and the per-client ledgers
//! still merge order-insensitively. The driver paces itself against the
//! fleet's completed-query count, so the configured rate holds regardless
//! of host speed.

use crate::config::SimConfig;
use crate::metrics::SimResult;
use crate::session::ClientSession;
use crate::updates::{generate_update, ChurnConfig};
use pc_server::{ClientId, ServerHandle, Update};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Builder/driver for a fleet of concurrent client sessions.
#[derive(Clone, Copy, Debug)]
pub struct Fleet {
    cfg: SimConfig,
    clients: u32,
    threads: usize,
    churn: Option<ChurnConfig>,
}

/// What a fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// One finished result per client, indexed by client id.
    pub per_client: Vec<SimResult>,
    /// All clients folded together ([`SimResult::merge`] in id order).
    pub merged: SimResult,
    /// Wall-clock seconds for the whole fleet run.
    pub wall_s: f64,
    /// Updates the churn driver applied (0 without churn).
    pub updates_applied: u64,
    /// Server epoch when the run finished (0 without churn).
    pub final_epoch: u64,
    /// Update-log records (changed nodes + tombstones) retained when the
    /// run finished — the low-water pruning keeps this bounded under
    /// sustained churn (0 without churn).
    pub log_records: usize,
}

impl FleetResult {
    fn collect(mut per_client: Vec<(ClientId, SimResult)>, wall_s: f64) -> Self {
        per_client.sort_by_key(|(id, _)| *id);
        let per_client: Vec<SimResult> = per_client.into_iter().map(|(_, r)| r).collect();
        let mut merged = SimResult::default();
        for r in &per_client {
            merged.merge(r);
        }
        FleetResult {
            per_client,
            merged,
            wall_s,
            updates_applied: 0,
            final_epoch: 0,
            log_records: 0,
        }
    }

    pub fn total_queries(&self) -> usize {
        self.merged.summary.queries
    }

    /// Aggregate server throughput against the wall clock (hardware view).
    pub fn wall_qps(&self) -> f64 {
        self.total_queries() as f64 / self.wall_s.max(1e-9)
    }

    /// Aggregate throughput in *simulated* time: total queries over the
    /// longest client stream's span. Client streams run in parallel in the
    /// simulated world, so this is the offered load one server absorbs —
    /// it grows with fleet size regardless of host core count.
    pub fn sim_qps(&self) -> f64 {
        self.total_queries() as f64 / self.merged.sim_elapsed_s.max(1e-9)
    }
}

impl Fleet {
    pub fn new(cfg: SimConfig) -> Self {
        Fleet {
            cfg,
            clients: 1,
            threads: 0,
            churn: None,
        }
    }

    /// Number of client sessions (ids `0..n`).
    pub fn clients(mut self, n: u32) -> Self {
        assert!(n > 0, "a fleet needs at least one client");
        self.clients = n;
        self
    }

    /// Worker-thread cap; 0 (the default) uses the host parallelism.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Injects a server-update workload while the fleet runs. A positive
    /// rate switches sessions to the §7 versioned protocol (they must
    /// handle `Stale` refusals); rate 0 is a no-op, keeping the run
    /// bit-identical to an update-free fleet.
    pub fn churn(mut self, churn: ChurnConfig) -> Self {
        if churn.rate_per_100 > 0 {
            assert!(churn.batch > 0, "churn batches must be non-empty");
            self.cfg.versioned = true;
            self.churn = Some(churn);
        }
        self
    }

    fn effective_threads(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.max(1).min(self.clients as usize)
    }

    /// Runs the fleet concurrently on scoped threads: client ids are dealt
    /// round-robin to workers, each worker drives its sessions to
    /// completion against the shared server handle, while the optional
    /// update driver churns the server at the configured rate.
    pub fn run(&self, server: &dyn ServerHandle) -> FleetResult {
        let start = Instant::now();
        let workers = self.effective_threads();
        let cfg = self.cfg;
        let clients = self.clients;
        let issued = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let (results, churn_out) = std::thread::scope(|scope| {
            let driver = self.churn.map(|churn| {
                let issued = &issued;
                let stop = &stop;
                scope.spawn(move || drive_updates(server, churn, issued, stop))
            });
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let issued = &issued;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut id = w as u32;
                        while id < clients {
                            out.push((
                                id,
                                ClientSession::new(&cfg, server, id).run_counted(server, issued),
                            ));
                            id += workers as u32;
                        }
                        out
                    })
                })
                .collect();
            // Join workers before inspecting their results: the stop flag
            // must be raised (and the driver joined) even when a worker
            // panicked, or the scope would hang forever on the driver
            // thread instead of propagating the panic.
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            // ordering: Release pairs with the driver loop's Acquire load —
            // a driver that sees `stop` also sees every worker's final
            // issued-count contribution, so the drained quota is exact.
            stop.store(true, Ordering::Release);
            // pc-check: allow(no-unwrap, "deliberate panic propagation out of a scoped-thread join: all peers are already joined, so re-raising the worker/driver panic on the benchmark thread strands nothing")
            let churn_out = driver.map(|d| d.join().expect("update driver panicked"));
            let results: Vec<_> = joined
                .into_iter()
                // pc-check: allow(no-unwrap, "deliberate panic propagation out of a scoped-thread join: all peers are already joined, so re-raising the worker/driver panic on the benchmark thread strands nothing")
                .flat_map(|r| r.expect("fleet worker panicked"))
                .collect();
            (results, churn_out)
        });
        let mut out = FleetResult::collect(results, start.elapsed().as_secs_f64());
        if let Some((applied, epoch)) = churn_out {
            out.updates_applied = applied;
            out.final_epoch = epoch;
            out.log_records = server.log_records();
        }
        out
    }

    /// Runs the same sessions one after another on the calling thread —
    /// the reference for the concurrency-determinism tests. Churn is not
    /// injected here (the reference stream is update-free by definition).
    pub fn run_sequential(&self, server: &dyn ServerHandle) -> FleetResult {
        let start = Instant::now();
        let results = (0..self.clients)
            .map(|id| (id, ClientSession::new(&self.cfg, server, id).run(server)))
            .collect();
        FleetResult::collect(results, start.elapsed().as_secs_f64())
    }
}

/// The update-driver loop: applies `churn.rate_per_100` updates per 100
/// completed fleet queries, in batches of `churn.batch` (one epoch bump
/// each), until the workers finish — then drains the remaining quota so
/// the applied count is a deterministic function of the total query count.
/// The update *stream* is seeded and deterministic; only its interleaving
/// with queries is scheduling-dependent (which is the point: callers
/// measure the protocol under real races).
fn drive_updates(
    server: &dyn ServerHandle,
    churn: ChurnConfig,
    issued: &AtomicU64,
    stop: &AtomicBool,
) -> (u64, u64) {
    let core = server.core();
    let mut rng = SmallRng::seed_from_u64(churn.seed);
    let mut applied = 0u64;
    let mut epoch = core.epoch();
    loop {
        // ordering: Acquire pairs with the Release store in `run` after all
        // workers joined — seeing `stop` implies seeing the final issued
        // count, read (also Acquire) on the next line, so the drain below
        // settles the exact quota before the loop exits.
        let finished = stop.load(Ordering::Acquire);
        // ordering: Acquire pairs with each session's Release fetch_add —
        // counted queries have fully completed before churn is paced on them.
        let target = issued.load(Ordering::Acquire) * churn.rate_per_100 as u64 / 100;
        while applied < target {
            let n = churn.batch.min((target - applied) as usize);
            let n_live = core.pin().store().len() as u32;
            let batch: Vec<Update> = (0..n).map(|_| generate_update(&mut rng, n_live)).collect();
            // Through the handle, not the bare core: server-backed handles
            // prune update-log history below the fleet low-water mark on
            // every publish, keeping the invalidation log bounded.
            epoch = server.apply_updates(&batch);
            applied += n as u64;
        }
        if finished {
            return (applied, epoch);
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}
