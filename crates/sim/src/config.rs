//! Simulation configuration — Table 6.1 in code.

use pc_cache::ReplacementPolicy;
use pc_mobility::{MobilityConfig, MobilityModel};
use pc_net::Channel;
use pc_rtree::RTreeConfig;
use pc_server::FormPolicy;
use pc_workload::{DatasetKind, WorkloadConfig};

/// Which caching model the client runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// Page caching (LRU object cache).
    Page,
    /// Semantic caching (range trimming + kNN validity, FAR).
    Semantic,
    /// Proactive caching (this paper); the variant is picked by
    /// [`SimConfig::form`] — FPRO / CPRO / APRO.
    Proactive,
}

impl CacheModel {
    pub fn name(&self) -> &'static str {
        match self {
            CacheModel::Page => "PAG",
            CacheModel::Semantic => "SEM",
            CacheModel::Proactive => "PRO",
        }
    }
}

impl std::fmt::Display for CacheModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One experiment's full parameterization.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    pub dataset: DatasetKind,
    pub n_objects: usize,
    pub n_queries: usize,
    /// Cache size |C| as a fraction of the total dataset bytes (Table 6.1:
    /// 0.1 % – 5 %, default 1 %).
    pub cache_frac: f64,
    pub model: CacheModel,
    /// Replacement policy for the proactive cache (PAG is LRU, SEM is FAR
    /// by definition — "the state-of-the-art cache replacement scheme for
    /// each of the three cache models").
    pub policy: ReplacementPolicy,
    /// FPRO / CPRO / APRO for the proactive model.
    pub form: FormPolicy,
    /// Adaptive sensitivity `s` (20 %).
    pub sensitivity: f64,
    /// Initial d⁺-level.
    pub initial_d: u8,
    /// Queries between fmr reports (§4.3 "periodically submits").
    pub fmr_report_period: usize,
    pub mobility: MobilityModel,
    pub mobility_cfg: MobilityConfig,
    pub workload: WorkloadConfig,
    pub channel: Channel,
    pub tree_cfg: RTreeConfig,
    /// Simulated server processing time per contact (§6.4 measured
    /// 0.0067–0.0081 s on the paper's hardware).
    pub server_time_s: f64,
    /// Fig. 11 mode: kNN-only workload whose average k drifts `hi → lo →
    /// hi` over the run.
    pub drifting_k: Option<(u32, u32)>,
    /// Time-series window length (the paper plots every 500 queries).
    pub window: usize,
    /// Cross-check every answer against the direct query (slow; tests).
    pub verify: bool,
    /// Proactive clients speak the §7 versioned-remainder protocol
    /// (epoch-stamped contacts, resubmit on `Stale`). Required when the
    /// server churns under a fleet; off by default so update-free runs
    /// stay byte-identical to the paper's protocol.
    pub versioned: bool,
    pub seed: u64,
}

impl SimConfig {
    /// The paper's default setting (Table 6.1) at full scale: NE dataset,
    /// 10,000 queries, |C| = 1 %, DIR mobility, APRO+GRD3.
    pub fn paper() -> Self {
        SimConfig {
            dataset: DatasetKind::Ne,
            n_objects: DatasetKind::Ne.paper_cardinality(),
            n_queries: 10_000,
            cache_frac: 0.01,
            model: CacheModel::Proactive,
            policy: ReplacementPolicy::Grd3,
            form: FormPolicy::Adaptive,
            sensitivity: 0.2,
            initial_d: 1,
            fmr_report_period: 50,
            mobility: MobilityModel::Dir,
            mobility_cfg: MobilityConfig::paper(),
            workload: WorkloadConfig::paper(),
            channel: Channel::paper(),
            tree_cfg: RTreeConfig::paper(),
            server_time_s: 0.008,
            drifting_k: None,
            window: 500,
            verify: false,
            versioned: false,
            seed: 2005,
        }
    }

    /// A scaled-down configuration with the same shape, for tests and quick
    /// runs: 4,000 objects, 400 queries, wider query windows so result
    /// sets stay interesting at the smaller density.
    pub fn small() -> Self {
        let mut cfg = SimConfig::paper();
        cfg.n_objects = 4_000;
        cfg.n_queries = 400;
        cfg.tree_cfg = RTreeConfig::small();
        // Scale query selectivity with density: the paper's window catches
        // ~0.12 objects in NE; keep a similar *absolute* result size.
        cfg.workload.area_wnd = 1e-3;
        cfg.workload.dist_join = 2e-3;
        cfg.verify = true;
        cfg
    }

    /// Cache capacity in bytes for a dataset of `total_bytes`.
    pub fn cache_bytes(&self, total_bytes: u64) -> u64 {
        ((total_bytes as f64 * self.cache_frac) as u64).max(1)
    }

    /// Human-readable model label (PAG / SEM / FPRO / CPRO / APRO).
    pub fn model_label(&self) -> &'static str {
        match self.model {
            CacheModel::Page => "PAG",
            CacheModel::Semantic => "SEM",
            CacheModel::Proactive => self.form.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_6_1() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.n_queries, 10_000);
        assert_eq!(cfg.n_objects, 123_593);
        assert!((cfg.cache_frac - 0.01).abs() < 1e-12);
        assert!((cfg.workload.think_mean_s - 50.0).abs() < 1e-12);
        assert!((cfg.workload.area_wnd - 1e-6).abs() < 1e-18);
        assert!((cfg.workload.dist_join - 5e-5).abs() < 1e-18);
        assert_eq!(cfg.workload.k_max, 5);
        assert_eq!(cfg.channel.bandwidth_bps, 384_000);
        assert!((cfg.sensitivity - 0.2).abs() < 1e-12);
        assert!((cfg.mobility_cfg.speed - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn cache_bytes_scales_with_fraction() {
        let mut cfg = SimConfig::paper();
        cfg.cache_frac = 0.05;
        assert_eq!(cfg.cache_bytes(1_000_000), 50_000);
        cfg.cache_frac = 0.001;
        assert_eq!(cfg.cache_bytes(1_000_000), 1_000);
    }

    #[test]
    fn model_labels() {
        let mut cfg = SimConfig::paper();
        assert_eq!(cfg.model_label(), "APRO");
        cfg.form = pc_server::FormPolicy::Full;
        assert_eq!(cfg.model_label(), "FPRO");
        cfg.model = CacheModel::Page;
        assert_eq!(cfg.model_label(), "PAG");
        cfg.model = CacheModel::Semantic;
        assert_eq!(cfg.model_label(), "SEM");
    }
}
