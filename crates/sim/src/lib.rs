//! The end-to-end simulator behind every §6 experiment: mobile clients
//! (RAN or DIR) issue Poisson streams of range/kNN/join queries about
//! their neighborhoods against one of the three caching models (PAG, SEM,
//! proactive in FPRO/CPRO/APRO form), over the 384 Kbps channel, while the
//! metrics of §6.1 are collected: per-query uplink/downlink bytes, the
//! per-byte response time of §4.1, cache hit rate, byte hit rate,
//! false-miss rate, client/server CPU time and the index/cache ratio.
//!
//! Architecture: one [`ClientSession`] owns everything private to a client
//! (mobility, query generator, model runner, rolling fmr window, metrics)
//! and steps against a shared `ServerHandle` — every byte of server
//! traffic travels as a typed `Request`/`Response` envelope through the
//! handle's `Transport`, so the same sessions run unchanged against a bare
//! `&Server`, the batched remainder service, or any future remote backend.
//! A [`Fleet`] drives N sessions concurrently on scoped threads and merges
//! their results. The single-client entry points [`run`] /
//! [`run_with_server`] are thin wrappers over a session with client id 0
//! and reproduce the historical sequential behavior exactly.

pub mod collab;
mod config;
mod fleet;
mod metrics;
#[cfg(test)]
mod proptests;
mod runner;
mod session;
pub mod updates;

pub use config::{CacheModel, SimConfig};
pub use fleet::{Fleet, FleetResult};
pub use metrics::{QueryKind, QueryRecord, SimResult, Summary, SummaryTotals, WindowPoint};
pub use runner::{ModelRunner, ProactiveRunner, RunOutput};
pub use session::{client_seed, ClientSession};
pub use updates::{generate_update, ChurnConfig, UpdatingClient, UpdatingOutcome};

use pc_server::{Cluster, ClusterConfig, Server, ServerConfig};

/// Builds the server (dataset + index + BPTs) for a configuration. Exposed
/// separately so harnesses can reuse one server across model runs — dataset
/// generation and bulk loading dominate setup time at paper scale.
pub fn build_server(cfg: &SimConfig) -> Server {
    let store = cfg.dataset.generate(cfg.n_objects, cfg.seed);
    Server::new(
        store,
        cfg.tree_cfg,
        ServerConfig {
            form: cfg.form,
            sensitivity: cfg.sensitivity,
            initial_d: cfg.initial_d,
            ..Default::default()
        },
    )
}

/// Builds a spatially-sharded cluster over the same generated dataset —
/// the scatter-gather counterpart of [`build_server`]. Fleet and churn
/// drivers run against it through `&dyn ServerHandle` unchanged.
pub fn build_cluster(cfg: &SimConfig, shards: u32) -> Cluster {
    let store = cfg.dataset.generate(cfg.n_objects, cfg.seed);
    Cluster::new(
        store,
        cfg.tree_cfg,
        ClusterConfig {
            server: ServerConfig {
                form: cfg.form,
                sensitivity: cfg.sensitivity,
                initial_d: cfg.initial_d,
                ..Default::default()
            },
            ..ClusterConfig::new(shards)
        },
    )
}

/// Runs one full single-client simulation.
pub fn run(cfg: &SimConfig) -> SimResult {
    let server = build_server(cfg);
    ClientSession::new(cfg, &server, 0).run(&server)
}

/// Runs a single-client simulation against a pre-built server (must match
/// `cfg.dataset`, `cfg.n_objects`, `cfg.seed` and the form policy). Takes
/// `&mut` only for historical compatibility — the session needs a shared
/// handle.
pub fn run_with_server(cfg: &SimConfig, server: &mut Server) -> SimResult {
    let server: &Server = server;
    ClientSession::new(cfg, server, 0).run(server)
}

#[cfg(test)]
mod tests;
