//! The end-to-end simulator behind every §6 experiment: a mobile client
//! (RAN or DIR) issues a Poisson stream of range/kNN/join queries about its
//! neighborhood against one of the three caching models (PAG, SEM,
//! proactive in FPRO/CPRO/APRO form), over the 384 Kbps channel, while the
//! metrics of §6.1 are collected: per-query uplink/downlink bytes, the
//! per-byte response time of §4.1, cache hit rate, byte hit rate,
//! false-miss rate, client/server CPU time and the index/cache ratio.

pub mod collab;
mod config;
mod metrics;
mod runner;
pub mod updates;

pub use config::{CacheModel, SimConfig};
pub use metrics::{QueryKind, QueryRecord, SimResult, Summary, WindowPoint};
pub use runner::{ModelRunner, ProactiveRunner, RunOutput};
pub use updates::{UpdatingClient, UpdatingOutcome};

use pc_mobility::MobileClient;
use pc_server::{Server, ServerConfig};
use pc_workload::{DriftingK, QueryGenerator};
use std::time::Instant;

/// Builds the server (dataset + index + BPTs) for a configuration. Exposed
/// separately so harnesses can reuse one server across model runs — dataset
/// generation and bulk loading dominate setup time at paper scale.
pub fn build_server(cfg: &SimConfig) -> Server {
    let store = cfg.dataset.generate(cfg.n_objects, cfg.seed);
    Server::new(
        store,
        cfg.tree_cfg,
        ServerConfig {
            form: cfg.form,
            sensitivity: cfg.sensitivity,
            initial_d: cfg.initial_d,
            max_d: 16,
        },
    )
}

/// Runs one full simulation.
pub fn run(cfg: &SimConfig) -> SimResult {
    let mut server = build_server(cfg);
    run_with_server(cfg, &mut server)
}

/// Runs a simulation against a pre-built server (must match `cfg.dataset`,
/// `cfg.n_objects`, `cfg.seed` and the form policy).
pub fn run_with_server(cfg: &SimConfig, server: &mut Server) -> SimResult {
    let capacity = cfg.cache_bytes(server.store().total_bytes());
    let mut runner = runner::make_runner(cfg, server, capacity);
    let mut mobile = MobileClient::new(cfg.mobility, cfg.mobility_cfg, cfg.seed ^ 0x4d4f42);
    let mut qgen = QueryGenerator::new(cfg.workload, cfg.seed ^ 0x514f);
    let mut drifting = cfg
        .drifting_k
        .map(|(hi, lo)| DriftingK::new(cfg.n_queries, hi, lo, cfg.seed ^ 0x4446));

    let mut result = SimResult::new(cfg.window);
    // Rolling fmr counters for the periodic §4.3 report.
    let mut fm_win = 0u64;
    let mut cached_win = 0u64;

    for q in 0..cfg.n_queries {
        mobile.advance(qgen.think_time());
        let pos = mobile.position();
        let spec = match &mut drifting {
            Some(d) => d.next_query(pos),
            None => qgen.next_query(pos),
        };

        let wall = Instant::now();
        let out = runner.run_query(server, &spec, pos, cfg.server_time_s);
        let total_cpu = wall.elapsed().as_secs_f64();
        let client_cpu = (total_cpu - out.server_cpu_s).max(0.0);

        if cfg.verify {
            verify_against_direct(server, &spec, &out);
        }

        let resp = out.ledger.response(&cfg.channel);
        // The client keeps moving while the reply streams in.
        mobile.advance(resp.completion_s);

        let cached = out.cached_results.len() as u64;
        let served = out.locally_served.len() as u64;
        debug_assert!(served <= cached, "Rs must be within R ∩ C");
        fm_win += cached - served;
        cached_win += cached;

        // Periodic fmr report drives the adaptive controller (§4.3).
        if cfg.model == CacheModel::Proactive
            && cfg.fmr_report_period > 0
            && (q + 1) % cfg.fmr_report_period == 0
        {
            let fmr = if cached_win > 0 {
                fm_win as f64 / cached_win as f64
            } else {
                0.0
            };
            server.report_fmr(0, fmr);
            fm_win = 0;
            cached_win = 0;
        }

        let (used, index_bytes) = runner.cache_stats();
        result.push(
            QueryRecord {
                kind: QueryKind::of(&spec),
                uplink_bytes: out.ledger.uplink_bytes,
                downlink_bytes: out.ledger.downlink_bytes(),
                saved_bytes: out.ledger.saved_bytes,
                confirmed_bytes: out.ledger.confirmed_bytes,
                transmitted_bytes: out.ledger.transmitted_bytes(),
                result_bytes: out.ledger.result_bytes(),
                cached_result_bytes: out
                    .cached_results
                    .iter()
                    .map(|&id| server.store().get(id).size_bytes as u64)
                    .sum(),
                avg_response_s: resp.avg_response_s,
                completion_s: resp.completion_s,
                result_count: out.objects.len() as u32,
                cached_results: cached as u32,
                false_misses: (cached - served) as u32,
                contacted: out.ledger.contacted_server,
                client_cpu_s: client_cpu,
                server_cpu_s: out.server_cpu_s,
                client_expansions: out.client_expansions,
            },
            used,
            index_bytes,
            capacity,
        );
    }
    result.finish();
    result
}

/// Debug-mode oracle: the model's answer must equal the direct answer.
fn verify_against_direct(server: &Server, spec: &pc_rtree::proto::QuerySpec, out: &RunOutput) {
    let direct = server.direct(spec);
    match spec {
        pc_rtree::proto::QuerySpec::Join { .. } => {
            let mut got = out.pairs.clone();
            got.sort_unstable();
            let mut want = direct.result_pairs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "join answer diverged from direct");
        }
        pc_rtree::proto::QuerySpec::Knn { center, .. } => {
            assert_eq!(out.objects.len(), direct.results.len());
            let d = |id: pc_rtree::ObjectId| server.store().get(id).mbr.min_dist(center);
            let mut got: Vec<f64> = out.objects.iter().map(|&o| d(o)).collect();
            got.sort_by(f64::total_cmp);
            let mut want: Vec<f64> = direct.results.iter().map(|&(o, _)| d(o)).collect();
            want.sort_by(f64::total_cmp);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "knn answer diverged from direct");
            }
        }
        pc_rtree::proto::QuerySpec::Range { .. } => {
            let mut got = out.objects.clone();
            got.sort_unstable();
            let mut want: Vec<pc_rtree::ObjectId> =
                direct.results.iter().map(|(o, _)| *o).collect();
            want.sort_unstable();
            assert_eq!(got, want, "range answer diverged from direct");
        }
    }
}

#[cfg(test)]
mod tests;
