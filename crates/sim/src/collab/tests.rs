//! Collaboration-extension tests: peer serving must preserve exactness,
//! transfer payloads the origin lacks, and actually offload the server
//! when a warm neighbor covers the query.

use super::*;
use pc_cache::{Catalog, ReplacementPolicy};
use pc_client::Client;
use pc_geom::{Point, Rect};
use pc_net::Channel;
use pc_rtree::naive;
use pc_rtree::proto::QuerySpec;
use pc_rtree::RTreeConfig;
use pc_server::{Server, ServerConfig};
use pc_workload::datasets;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize, clients: usize, seed: u64) -> (Server, Vec<Client>) {
    let store = datasets::ne_like(n, seed);
    let server = Server::new(store, RTreeConfig::small(), ServerConfig::default());
    let fleet = (0..clients)
        .map(|_| {
            Client::new(
                1 << 22,
                ReplacementPolicy::Grd3,
                Catalog::from_tree(server.snapshot().tree()),
            )
        })
        .collect();
    (server, fleet)
}

fn channels() -> (Channel, Channel) {
    (local_channel(), Channel::paper())
}

fn run(
    clients: &mut [Client],
    positions: &[Point],
    origin: usize,
    server: &Server,
    spec: &QuerySpec,
) -> CollabOutcome {
    let (l, r) = channels();
    query_with_peers(
        clients,
        positions,
        origin,
        1.0,
        3,
        server,
        spec,
        (&l, &r),
        0.0,
    )
}

#[test]
fn warm_peer_fully_serves_a_cold_neighbor() {
    let (server, mut fleet) = setup(600, 2, 1);
    let here = Point::new(0.31, 0.36);
    let positions = vec![here, here];
    let spec = QuerySpec::Range {
        window: Rect::centered_square(here, 0.15),
    };
    // Warm client 1 through the normal pipeline.
    let warm = run(&mut fleet[1..], &positions[1..], 0, &server, &spec);
    assert!(warm.server_contacted, "cold fleet must hit the server once");

    // Client 0 (cold) now asks: peer 1 must cover everything.
    let out = run(&mut fleet, &positions, 0, &server, &spec);
    assert!(
        !out.server_contacted,
        "a fully-warm neighbor must absorb the query"
    );
    assert_eq!(out.peers_asked, 1);
    assert!(out.peer_served > 0);
    let mut got = out.objects.clone();
    got.sort_unstable();
    let QuerySpec::Range { window } = spec else {
        unreachable!()
    };
    assert_eq!(got, naive::range_naive(server.snapshot().store(), &window));
    // And the payloads were transferred: client 0 can answer locally now.
    fleet[0].begin_query();
    let local = fleet[0].run_local(&spec);
    assert!(
        local.complete(),
        "origin cache must have been warmed by peer"
    );
}

#[test]
fn random_fleet_answers_always_match_direct() {
    let (server, mut fleet) = setup(500, 3, 2);
    let mut rng = SmallRng::seed_from_u64(3);
    for round in 0..60 {
        let positions: Vec<Point> = (0..3)
            .map(|_| Point::new(rng.random_range(0.1..0.9), rng.random_range(0.1..0.9)))
            .collect();
        let origin = rng.random_range(0..3);
        let spec = match round % 3 {
            0 => QuerySpec::Range {
                window: Rect::centered_square(positions[origin], rng.random_range(0.05..0.2)),
            },
            1 => QuerySpec::Knn {
                center: positions[origin],
                k: rng.random_range(1..6),
            },
            _ => QuerySpec::Join {
                dist: rng.random_range(0.001..0.01),
            },
        };
        let out = run(&mut fleet, &positions, origin, &server, &spec);
        for c in &fleet {
            c.cache().validate().unwrap();
        }
        match &spec {
            QuerySpec::Range { window } => {
                let mut got = out.objects.clone();
                got.sort_unstable();
                assert_eq!(
                    got,
                    naive::range_naive(server.snapshot().store(), window),
                    "round {round}"
                );
            }
            QuerySpec::Knn { center, k } => {
                let want = naive::knn_naive(server.snapshot().store(), center, *k as usize);
                assert_eq!(out.objects.len(), want.len(), "round {round}");
                let mut got_d: Vec<f64> = out
                    .objects
                    .iter()
                    .map(|id| server.snapshot().store().get(*id).mbr.min_dist(center))
                    .collect();
                got_d.sort_by(f64::total_cmp);
                for (g, (_, w)) in got_d.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-12, "round {round}");
                }
            }
            QuerySpec::Join { dist } => {
                assert_eq!(
                    out.pairs,
                    naive::join_naive(server.snapshot().store(), *dist),
                    "round {round}"
                );
            }
        }
    }
}

#[test]
fn out_of_range_peers_are_not_consulted() {
    let (server, mut fleet) = setup(300, 2, 4);
    let positions = vec![Point::new(0.2, 0.2), Point::new(0.9, 0.9)];
    let spec = QuerySpec::Knn {
        center: positions[0],
        k: 3,
    };
    let (l, r) = channels();
    let out = query_with_peers(
        &mut fleet,
        &positions,
        0,
        0.1,
        3,
        &server,
        &spec,
        (&l, &r),
        0.0,
    );
    assert_eq!(
        out.peers_asked, 0,
        "peer at distance ~1 is out of range 0.1"
    );
    assert!(out.server_contacted);
}

#[test]
fn peer_chain_shrinks_the_remainder_monotonically() {
    // Two half-warm peers with different neighborhoods: the origin's
    // remainder must shrink (or at least not grow) across the chain, and
    // the local channel must carry real bytes.
    let (server, mut fleet) = setup(800, 3, 5);
    let a = Point::new(0.3, 0.35);
    let b = Point::new(0.33, 0.37);
    let positions = vec![a, a, b];
    // Warm peers 1 and 2 on adjacent windows.
    let w1 = QuerySpec::Range {
        window: Rect::centered_square(a, 0.12),
    };
    let w2 = QuerySpec::Range {
        window: Rect::centered_square(b, 0.12),
    };
    run(&mut fleet[1..2], &positions[1..2], 0, &server, &w1);
    run(&mut fleet[2..3], &positions[2..3], 0, &server, &w2);

    // Origin asks for the union area.
    let big = QuerySpec::Range {
        window: Rect::from_coords(0.24, 0.29, 0.39, 0.43),
    };
    let out = run(&mut fleet, &positions, 0, &server, &big);
    assert!(out.peers_asked >= 1);
    assert!(out.local_bytes > 0);
    assert!(out.peer_served > 0, "peers must contribute results");
    let mut got = out.objects.clone();
    got.sort_unstable();
    let QuerySpec::Range { window } = big else {
        unreachable!()
    };
    assert_eq!(got, naive::range_naive(server.snapshot().store(), &window));
}

#[test]
fn empty_fleet_degenerates_to_client_server() {
    let (server, mut fleet) = setup(300, 1, 6);
    let positions = vec![Point::new(0.5, 0.5)];
    let spec = QuerySpec::Knn {
        center: positions[0],
        k: 4,
    };
    let out = run(&mut fleet, &positions, 0, &server, &spec);
    assert_eq!(out.peers_asked, 0);
    assert!(out.server_contacted);
    assert_eq!(out.local_bytes, 0);
    assert_eq!(out.objects.len(), 4);
}
