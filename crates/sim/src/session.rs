//! One mobile client's simulation session: mobility, query generation,
//! the caching model under test and a rolling fmr window, all seeded from
//! a per-client derivation of the experiment seed. Client 0's streams are
//! bit-identical to the historical single-client runner, so the sequential
//! entry points ([`crate::run`] / [`crate::run_with_server`]) are thin
//! wrappers over a one-session fleet.
//!
//! Sessions reach the server only through a [`ServerHandle`]'s transport:
//! queries, §4.3 fmr reports and the final disconnect all travel as
//! `Request`/`Response` envelopes, and their wire bytes — including the
//! report's uplink cost and the returned resolution byte `D` — land in the
//! byte ledger like any other traffic.

use crate::config::{CacheModel, SimConfig};
use crate::metrics::{QueryKind, QueryRecord, SimResult};
use crate::runner::{self, ModelRunner, RunOutput};
use pc_mobility::MobileClient;
use pc_rtree::proto::Request;
use pc_server::{ClientId, ServerHandle};
use pc_workload::{DriftingK, QueryGenerator};
use std::time::Instant;

/// Derives the RNG seed for one client of a fleet. Client 0 maps to the
/// experiment seed itself (the historical single-client streams); higher
/// ids decorrelate via a golden-ratio multiply.
pub fn client_seed(seed: u64, client: ClientId) -> u64 {
    seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A single client's end-to-end simulation state, stepped one query at a
/// time against a shared server handle.
pub struct ClientSession {
    id: ClientId,
    cfg: SimConfig,
    capacity: u64,
    runner: Box<dyn ModelRunner>,
    mobile: MobileClient,
    qgen: QueryGenerator,
    drifting: Option<DriftingK>,
    result: SimResult,
    /// Rolling fmr counters for the periodic §4.3 report.
    fm_win: u64,
    cached_win: u64,
    issued: usize,
    elapsed_s: f64,
}

impl ClientSession {
    pub fn new(cfg: &SimConfig, server: &dyn ServerHandle, id: ClientId) -> Self {
        let capacity = cfg.cache_bytes(server.core().pin().store().total_bytes());
        let seed = client_seed(cfg.seed, id);
        ClientSession {
            id,
            cfg: *cfg,
            capacity,
            runner: runner::make_runner(cfg, server, capacity, id),
            mobile: MobileClient::new(cfg.mobility, cfg.mobility_cfg, seed ^ 0x4d4f42),
            qgen: QueryGenerator::new(cfg.workload, seed ^ 0x514f),
            drifting: cfg
                .drifting_k
                .map(|(hi, lo)| DriftingK::new(cfg.n_queries, hi, lo, seed ^ 0x4446)),
            result: SimResult::new(cfg.window),
            fm_win: 0,
            cached_win: 0,
            issued: 0,
            elapsed_s: 0.0,
        }
    }

    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Queries issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    pub fn is_done(&self) -> bool {
        self.issued >= self.cfg.n_queries
    }

    /// Runs one think-move-query-absorb cycle; returns `false` once the
    /// session has issued its full query budget.
    pub fn step(&mut self, server: &dyn ServerHandle) -> bool {
        if self.is_done() {
            return false;
        }
        let think = self.qgen.think_time();
        self.mobile.advance(think);
        self.elapsed_s += think;
        let pos = self.mobile.position();
        let spec = match &mut self.drifting {
            Some(d) => d.next_query(pos),
            None => self.qgen.next_query(pos),
        };

        let wall = Instant::now();
        let mut out = self
            .runner
            .run_query(server, &spec, pos, self.cfg.server_time_s);
        let total_cpu = wall.elapsed().as_secs_f64();
        let client_cpu = (total_cpu - out.server_cpu_s).max(0.0);

        if self.cfg.verify {
            verify_against_direct(server, &spec, &out);
        }

        let resp = out.ledger.response(&self.cfg.channel);
        // The client keeps moving while the reply streams in.
        self.mobile.advance(resp.completion_s);
        self.elapsed_s += resp.completion_s;

        let cached = out.cached_results.len() as u64;
        let served = out.locally_served.len() as u64;
        debug_assert!(served <= cached, "Rs must be within R ∩ C");
        self.fm_win += cached - served;
        self.cached_win += cached;
        self.issued += 1;

        // Periodic fmr report drives the adaptive controller (§4.3). It
        // rides *after* this query's reply, so it never delays the results
        // — but the report and the returned resolution byte `D` are real
        // traffic and are charged to this query's ledger.
        if self.cfg.model == CacheModel::Proactive
            && self.cfg.fmr_report_period > 0
            && self.issued.is_multiple_of(self.cfg.fmr_report_period)
        {
            let fmr = if self.cached_win > 0 {
                self.fm_win as f64 / self.cached_win as f64
            } else {
                0.0
            };
            let req = Request::ReportFmr { fmr };
            out.ledger.uplink_bytes += req.wire_bytes();
            let reply = server.call(self.id, req);
            out.ledger.extra_downlink_bytes += reply.wire_bytes();
            let _new_d = reply.into_new_d();
            self.fm_win = 0;
            self.cached_win = 0;
        }

        let (used, index_bytes) = self.runner.cache_stats();
        let snap = server.core().pin();
        let store = snap.store();
        self.result.push(
            QueryRecord {
                kind: QueryKind::of(&spec),
                uplink_bytes: out.ledger.uplink_bytes,
                downlink_bytes: out.ledger.downlink_bytes(),
                saved_bytes: out.ledger.saved_bytes,
                confirmed_bytes: out.ledger.confirmed_bytes,
                transmitted_bytes: out.ledger.transmitted_bytes(),
                result_bytes: out.ledger.result_bytes(),
                cached_result_bytes: out
                    .cached_results
                    .iter()
                    .map(|&id| store.get(id).size_bytes as u64)
                    .sum(),
                avg_response_s: resp.avg_response_s,
                completion_s: resp.completion_s,
                result_count: out.objects.len() as u32,
                cached_results: cached as u32,
                false_misses: (cached - served) as u32,
                contacted: out.ledger.contacted_server,
                stale_retries: out.stale_retries,
                full_refreshes: out.full_refreshes,
                invalidation_bytes: out.invalidation_bytes,
                client_cpu_s: client_cpu,
                server_cpu_s: out.server_cpu_s,
                client_expansions: out.client_expansions,
            },
            used,
            index_bytes,
            self.capacity,
        );
        !self.is_done()
    }

    /// Closes the session and returns its finished result.
    pub fn finish(mut self) -> SimResult {
        self.result.sim_elapsed_s = self.elapsed_s;
        self.result.finish();
        self.result
    }

    /// Runs the session to completion, then disconnects: a `Forget`
    /// request releases this client's adaptive state on the server, so a
    /// long-lived server under session churn drains instead of
    /// accumulating dead entries. The disconnect's wire bytes are charged
    /// to the final query's record (it is the session's last traffic).
    pub fn run(self, server: &dyn ServerHandle) -> SimResult {
        self.run_counted(server, &std::sync::atomic::AtomicU64::new(0))
    }

    /// [`run`](Self::run), bumping `issued` after every completed query —
    /// the progress feed the fleet's update driver paces its churn
    /// against. The counter changes nothing about the stream itself.
    pub fn run_counted(
        mut self,
        server: &dyn ServerHandle,
        issued: &std::sync::atomic::AtomicU64,
    ) -> SimResult {
        loop {
            let before = self.issued;
            let more = self.step(server);
            if self.issued > before {
                // ordering: Release pairs with the update driver's Acquire
                // load of `issued` — the driver paces churn against counts
                // whose queries have fully completed.
                issued.fetch_add(1, std::sync::atomic::Ordering::Release);
            }
            if !more {
                break;
            }
        }
        let req = Request::Forget;
        let uplink = req.wire_bytes();
        let reply = server.call(self.id, req);
        if let Some(last) = self.result.records.last_mut() {
            last.uplink_bytes += uplink;
            last.downlink_bytes += reply.wire_bytes();
        }
        let _ = reply.into_forgotten();
        self.finish()
    }
}

/// Debug-mode oracle: the model's answer must equal the direct answer
/// (fetched through the same transport, as `Request::Direct`).
fn verify_against_direct(
    server: &dyn ServerHandle,
    spec: &pc_rtree::proto::QuerySpec,
    out: &RunOutput,
) {
    let direct = server.call(0, Request::Direct(*spec)).into_direct();
    let snap = server.core().pin();
    let store = snap.store();
    match spec {
        pc_rtree::proto::QuerySpec::Join { .. } => {
            let mut got = out.pairs.clone();
            got.sort_unstable();
            let mut want = direct.pairs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "join answer diverged from direct");
        }
        pc_rtree::proto::QuerySpec::Knn { center, .. } => {
            assert_eq!(out.objects.len(), direct.results.len());
            let d = |id: pc_rtree::ObjectId| store.get(id).mbr.min_dist(center);
            let mut got: Vec<f64> = out.objects.iter().map(|&o| d(o)).collect();
            got.sort_by(f64::total_cmp);
            let mut want: Vec<f64> = direct.results.iter().map(|&o| d(o)).collect();
            want.sort_by(f64::total_cmp);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "knn answer diverged from direct");
            }
        }
        pc_rtree::proto::QuerySpec::Range { .. } => {
            let mut got = out.objects.clone();
            got.sort_unstable();
            let mut want = direct.results.clone();
            want.sort_unstable();
            assert_eq!(got, want, "range answer diverged from direct");
        }
    }
}
