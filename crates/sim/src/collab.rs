//! Peer-to-peer cache collaboration — the paper's second §7 future-work
//! item: "extend proactive caching so that the cached index is shared not
//! only among various types of queries on the same client, but also among
//! various clients in the neighborhood … particularly useful in a mobile
//! ad-hoc network, where the bandwidth of local connections is much
//! broader and cheaper than that of remote connections."
//!
//! Protocol: a querying client runs stage ① on its own cache; if a
//! remainder is left, it hands the remainder — the same `{Q, H}` execution
//! state it would send the server — to nearby peers over the broadband
//! local channel. Each peer **resumes the remainder over its own cache
//! view** (the same engine, still non-authoritative), confirms what its
//! cached index supports, ships payloads the origin lacks plus the
//! *frontier antichains* of the index nodes it used, and returns a smaller
//! remainder. Whatever survives the peer chain goes to the server as
//! usual. Every peer contribution is absorbed exactly like a server reply,
//! so all cache invariants carry over unchanged.
//!
//! Flag discipline: heap `cached` flags always mean "the **origin** holds
//! this payload". A peer temporarily ORs in its own holdings so its engine
//! run can confirm from peer-cached payloads, transfers those payloads to
//! the origin, and restores origin-semantics on the outgoing remainder.
//! Blocked-at-peer objects conservatively lose the peer's knowledge.

use pc_cache::{CacheView, Catalog, ItemData, ItemKey, ProactiveCache};
use pc_net::Channel;
use pc_rtree::engine::{resume, AccessLog};
use pc_rtree::proto::{HeapEntry, NodeShipment, RemainderQuery, ServerReply, Side};
use pc_rtree::{NodeId, ObjectId};
use std::collections::{HashMap, HashSet};

/// What one peer contributed to a query.
#[derive(Clone, Debug)]
pub struct PeerContribution {
    /// Shaped exactly like a server reply: confirmations for origin-held
    /// results, payload transfers, join pairs, and index shipments (the
    /// peer's frontier antichains).
    pub reply: ServerReply,
    /// The shrunken remainder (origin flag semantics), if any.
    pub remainder: Option<RemainderQuery>,
}

/// Default local (peer-to-peer) channel: 802.11-class broadband, as the
/// paper's MANET remark assumes — an order of magnitude above 3G.
pub fn local_channel() -> Channel {
    Channel {
        bandwidth_bps: 11_000_000,
        setup_s: 0.0,
    }
}

/// Serves a neighbor's remainder from this peer's cache.
pub fn peer_serve(
    cache: &ProactiveCache,
    catalog: Catalog,
    rq: &RemainderQuery,
) -> PeerContribution {
    // Which results the *origin* already holds, per the incoming flags.
    let mut origin_holds: HashMap<ObjectId, bool> = HashMap::new();
    let mut collect = |s: &Side| {
        if let Side::Obj { id, cached, .. } = s {
            origin_holds.insert(*id, *cached);
        }
    };
    for (_, e) in &rq.heap {
        match e {
            HeapEntry::Single(s) => collect(s),
            HeapEntry::Pair(a, b) => {
                collect(a);
                collect(b);
            }
        }
    }

    // OR our own holdings into the flags so the engine can confirm from
    // peer-cached payloads.
    let boosted = RemainderQuery {
        spec: rq.spec,
        already_found: rq.already_found,
        heap: rq
            .heap
            .iter()
            .map(|(k, e)| (*k, boost_entry(e, cache)))
            .collect(),
    };

    let mut log = AccessLog::default();
    let outcome = {
        let view = CacheView::new(cache, catalog);
        resume(&view, &boosted, &mut log)
    };

    // Split confirmations: origin-held results need no bytes; the rest we
    // transfer from our own object items (we confirmed them, so we hold
    // them — or the origin does).
    let mut confirmed = Vec::new();
    let mut objects = Vec::new();
    let mut transferred: HashSet<ObjectId> = HashSet::new();
    for &(id, _) in &outcome.results {
        if origin_holds.get(&id).copied().unwrap_or(false) {
            confirmed.push(id);
        } else if let Some(item) = cache.get(ItemKey::Object(id)) {
            let ItemData::Object(so) = &item.data else {
                // pc-check: allow(no-unwrap, "cache key-space invariant: ItemKey::Object entries always hold ItemData::Object (enforced at every insert site); single-threaded sim, no waiters to strand")
                unreachable!("object key holds object data")
            };
            objects.push(*so);
            transferred.insert(id);
        } else {
            // Confirmed purely from origin-held payload we mis-flagged?
            // Cannot happen: confirmation requires cached=true, which is
            // origin_holds ∨ peer_holds.
            // pc-check: allow(no-unwrap, "engine invariant spelled out above: cached=true implies one of the two sides holds the object; single-threaded sim, no waiters to strand")
            unreachable!("confirmed object held by neither side")
        }
    }

    // Index shipments: the frontier antichain of every node our engine
    // expanded (a covering antichain, mergeable like any server form).
    let mut index: Vec<NodeShipment> = log
        .shipped_nodes()
        .into_iter()
        .filter_map(|n| ship_from_cache(cache, n))
        .collect();
    index.sort_by_key(|s| std::cmp::Reverse(s.level));

    // Outgoing remainder: restore origin flag semantics (transferred
    // payloads are origin-held now; peer-only knowledge is dropped).
    let remainder = outcome.remainder.map(|mut rem| {
        for (_, e) in &mut rem.heap {
            restore_entry(e, &origin_holds, &transferred);
        }
        rem
    });

    PeerContribution {
        reply: ServerReply {
            confirmed,
            objects,
            pairs: outcome.result_pairs,
            index,
            expansions: outcome.expansions,
        },
        remainder,
    }
}

fn boost_entry(e: &HeapEntry, cache: &ProactiveCache) -> HeapEntry {
    let boost = |s: &Side| match *s {
        Side::Obj { id, mbr, cached } => Side::Obj {
            id,
            mbr,
            cached: cached || cache.contains_object(id),
        },
        c => c,
    };
    match e {
        HeapEntry::Single(s) => HeapEntry::Single(boost(s)),
        HeapEntry::Pair(a, b) => HeapEntry::Pair(boost(a), boost(b)),
    }
}

fn restore_entry(
    e: &mut HeapEntry,
    origin_holds: &HashMap<ObjectId, bool>,
    transferred: &HashSet<ObjectId>,
) {
    let restore = |s: &mut Side| {
        if let Side::Obj { id, cached, .. } = s {
            *cached = origin_holds.get(id).copied().unwrap_or(false) || transferred.contains(id);
        }
    };
    match e {
        HeapEntry::Single(s) => restore(s),
        HeapEntry::Pair(a, b) => {
            restore(a);
            restore(b);
        }
    }
}

/// Builds a shipment from a cached node's current frontier.
fn ship_from_cache(cache: &ProactiveCache, node: NodeId) -> Option<NodeShipment> {
    let item = cache.get(ItemKey::Node(node))?;
    let ItemData::Node(view) = &item.data else {
        // pc-check: allow(no-unwrap, "cache key-space invariant: ItemKey::Node entries always hold ItemData::Node (enforced at every insert site); single-threaded sim, no waiters to strand")
        unreachable!("node key holds node data")
    };
    let parent = match item.meta.parent {
        Some(ItemKey::Node(p)) => Some(p),
        _ => None,
    };
    Some(NodeShipment {
        node,
        level: view.level(),
        parent,
        cells: view.frontier_records(),
    })
}

/// Everything one collaborative query produced.
#[derive(Clone, Debug, Default)]
pub struct CollabOutcome {
    pub objects: Vec<ObjectId>,
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Results served from the origin's own cache.
    pub self_served: usize,
    /// Results confirmed or transferred by peers.
    pub peer_served: usize,
    pub peers_asked: u32,
    pub server_contacted: bool,
    pub local_bytes: u64,
    pub remote_bytes: u64,
    /// Byte-weighted average response time across the peer and server
    /// phases (the §4.1 metric generalized to the two-channel timeline).
    pub avg_response_s: f64,
}

/// Runs one query for `clients[origin]`, consulting peers within `radius`
/// (nearest first, at most `max_peers`) before falling back to the server
/// (through its transport, like any remainder).
#[allow(clippy::too_many_arguments)]
pub fn query_with_peers(
    clients: &mut [pc_client::Client],
    positions: &[pc_geom::Point],
    origin: usize,
    radius: f64,
    max_peers: usize,
    server: &dyn pc_server::ServerHandle,
    spec: &pc_rtree::proto::QuerySpec,
    channels: (&Channel, &Channel), // (local, remote)
    server_time_s: f64,
) -> CollabOutcome {
    let (local_ch, remote_ch) = channels;
    let pos = positions[origin];
    let catalog = clients[origin].catalog();

    clients[origin].begin_query();
    let local = clients[origin].run_local(spec);

    let mut out = CollabOutcome {
        self_served: local.saved.len(),
        ..Default::default()
    };
    let mut objects = local.saved.clone();
    let mut pairs = local.saved_pairs.clone();
    let mut seen: HashSet<ObjectId> = objects.iter().copied().collect();

    // Byte-weighted response bookkeeping: saved bytes answer at t = 0.
    let snap = server.core().pin();
    let obj_bytes = |id: ObjectId| snap.store().get(id).size_bytes as u64;
    let mut weighted = 0.0;
    let mut total_result_bytes: u64 = objects.iter().map(|&o| obj_bytes(o)).sum();
    let mut t = 0.0;

    let mut rem = local.remainder;

    // Nearest peers first.
    let mut order: Vec<usize> = (0..clients.len())
        .filter(|&i| i != origin && positions[i].dist(&pos) <= radius)
        .collect();
    order.sort_by(|&a, &b| {
        positions[a]
            .dist(&pos)
            .total_cmp(&positions[b].dist(&pos))
            .then(a.cmp(&b))
    });
    order.truncate(max_peers);

    for p in order {
        let Some(rq) = &rem else { break };
        out.peers_asked += 1;
        let contribution = peer_serve(clients[p].cache(), catalog, rq);
        let up = rq.uplink_bytes();
        let down = contribution.reply.downlink_bytes();
        out.local_bytes += up + down;
        t += local_ch.transfer_s(up);
        // Confirmations and payloads answer as the peer reply streams in.
        let reply = &contribution.reply;
        t += local_ch.transfer_s(reply.confirmed.len() as u64 * 8);
        for id in &reply.confirmed {
            let b = obj_bytes(*id);
            weighted += b as f64 * t;
            total_result_bytes += b;
            if seen.insert(*id) {
                objects.push(*id);
            }
        }
        for o in &reply.objects {
            t += local_ch.transfer_s(o.size_bytes as u64 + 40);
            weighted += o.size_bytes as f64 * t;
            total_result_bytes += o.size_bytes as u64;
            if seen.insert(o.id) {
                objects.push(o.id);
            }
        }
        out.peer_served += reply.confirmed.len() + reply.objects.len();
        pairs.extend(reply.pairs.iter().copied());
        clients[origin].absorb(reply, pos);
        rem = contribution.remainder;
    }

    if let Some(rq) = &rem {
        out.server_contacted = true;
        let reply = server
            .call(
                origin as u32,
                pc_rtree::proto::Request::Remainder(rq.clone()),
            )
            .into_remainder();
        out.remote_bytes += rq.uplink_bytes() + reply.downlink_bytes();
        t += remote_ch.transfer_s(rq.uplink_bytes()) + server_time_s;
        t += remote_ch.transfer_s(reply.confirmed.len() as u64 * 8);
        for id in &reply.confirmed {
            let b = obj_bytes(*id);
            weighted += b as f64 * t;
            total_result_bytes += b;
            if seen.insert(*id) {
                objects.push(*id);
            }
        }
        for o in &reply.objects {
            t += remote_ch.transfer_s(o.size_bytes as u64 + 40);
            weighted += o.size_bytes as f64 * t;
            total_result_bytes += o.size_bytes as u64;
            if seen.insert(o.id) {
                objects.push(o.id);
            }
        }
        pairs.extend(reply.pairs.iter().copied());
        clients[origin].absorb(&reply, pos);
    }

    pairs.sort_unstable();
    pairs.dedup();
    out.objects = objects;
    out.pairs = pairs;
    out.avg_response_s = if total_result_bytes > 0 {
        weighted / total_result_bytes as f64
    } else {
        0.0
    };
    out
}

#[cfg(test)]
mod tests;
