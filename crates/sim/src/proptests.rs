//! Property tests for metric merging: folding per-client results must be
//! order-insensitive and agree with having pushed every record into one
//! result — the correctness contract the fleet driver relies on.

use crate::metrics::{QueryKind, QueryRecord, SimResult, Summary};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = QueryRecord> {
    (
        (0u64..4000, 0u64..6000, 0u64..5000, 0u64..5000),
        (0u32..6, 0u32..6, any::<bool>(), 0u64..10),
        (0.0f64..30.0, 0.0f64..0.01, 0.0f64..0.01),
        0usize..3,
    )
        .prop_map(
            |(
                (uplink, downlink, result_b, saved),
                (cached_n, fm, contacted, expansions),
                (resp, ccpu, scpu),
                kind,
            )| {
                let cached_results = cached_n.max(fm); // fm ≤ cached by construction
                QueryRecord {
                    kind: [QueryKind::Range, QueryKind::Knn, QueryKind::Join][kind],
                    uplink_bytes: uplink,
                    downlink_bytes: downlink,
                    result_bytes: result_b,
                    saved_bytes: saved.min(result_b),
                    cached_result_bytes: saved.min(result_b),
                    avg_response_s: resp,
                    completion_s: resp,
                    cached_results,
                    false_misses: fm,
                    contacted,
                    client_cpu_s: ccpu,
                    server_cpu_s: scpu,
                    client_expansions: expansions,
                    ..Default::default()
                }
            },
        )
}

/// Builds a finished SimResult from records (as a session would).
fn result_of(records: &[QueryRecord], window: usize, elapsed: f64) -> SimResult {
    let mut r = SimResult::new(window);
    for rec in records {
        r.push(*rec, 0, 64, 128);
    }
    r.sim_elapsed_s = elapsed;
    r.finish();
    r
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn summaries_approx_eq(a: &Summary, b: &Summary) -> bool {
    a.queries == b.queries
        && a.totals.uplink_bytes == b.totals.uplink_bytes
        && a.totals.downlink_bytes == b.totals.downlink_bytes
        && a.totals.result_bytes == b.totals.result_bytes
        && a.totals.saved_bytes == b.totals.saved_bytes
        && a.totals.cached_results == b.totals.cached_results
        && a.totals.false_misses == b.totals.false_misses
        && a.totals.contacts == b.totals.contacts
        && a.totals.response_queries == b.totals.response_queries
        && approx(a.avg_response_s, b.avg_response_s)
        && approx(a.hit_c, b.hit_c)
        && approx(a.hit_b, b.hit_b)
        && approx(a.fmr, b.fmr)
        && approx(a.avg_client_cpu_ms, b.avg_client_cpu_ms)
        && approx(a.avg_server_cpu_ms, b.avg_server_cpu_ms)
}

proptest! {
    #[test]
    fn summary_merge_is_commutative(
        ra in prop::collection::vec(arb_record(), 0..40),
        rb in prop::collection::vec(arb_record(), 0..40),
    ) {
        let a = Summary::from_records(&ra);
        let b = Summary::from_records(&rb);
        // Binary IEEE adds commute, so this holds exactly, not approximately.
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn summary_merge_matches_one_combined_run(
        ra in prop::collection::vec(arb_record(), 0..40),
        rb in prop::collection::vec(arb_record(), 0..40),
    ) {
        let merged = Summary::from_records(&ra)
            .merge(&Summary::from_records(&rb));
        let all: Vec<QueryRecord> = ra.iter().chain(&rb).copied().collect();
        let combined = Summary::from_records(&all);
        prop_assert!(
            summaries_approx_eq(&merged, &combined),
            "merged {merged:?} vs combined {combined:?}"
        );
    }

    #[test]
    fn result_merge_is_order_insensitive(
        ra in prop::collection::vec(arb_record(), 1..30),
        rb in prop::collection::vec(arb_record(), 1..30),
        ea in 0.0f64..1e4,
        eb in 0.0f64..1e4,
    ) {
        let a = result_of(&ra, 7, ea);
        let b = result_of(&rb, 7, eb);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.summary, ba.summary);
        prop_assert_eq!(ab.records.len(), ba.records.len());
        prop_assert_eq!(ab.windows.len(), ba.windows.len());
        prop_assert_eq!(ab.sim_elapsed_s, ba.sim_elapsed_s);
    }

    #[test]
    fn result_merge_matches_pushing_all_records(
        ra in prop::collection::vec(arb_record(), 1..30),
        rb in prop::collection::vec(arb_record(), 1..30),
    ) {
        let a = result_of(&ra, 1000, 0.0);
        let b = result_of(&rb, 1000, 0.0);
        let mut merged = a.clone();
        merged.merge(&b);
        let all: Vec<QueryRecord> = ra.iter().chain(&rb).copied().collect();
        let combined = result_of(&all, 1000, 0.0);
        prop_assert_eq!(&merged.records, &combined.records);
        prop_assert!(
            summaries_approx_eq(&merged.summary, &combined.summary),
            "merged {:?} vs combined {:?}", merged.summary, combined.summary
        );
    }
}
