//! Simulator integration tests: every model must stay correct under the
//! full loop (verify mode cross-checks each answer against the direct
//! query), and the headline relations of §6.2 must emerge on small runs
//! with fixed seeds.

use super::*;
use crate::config::CacheModel;
use pc_server::FormPolicy;

fn small(model: CacheModel) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.model = model;
    cfg
}

#[test]
fn all_models_run_verified() {
    for model in [
        CacheModel::Page,
        CacheModel::Semantic,
        CacheModel::Proactive,
    ] {
        let cfg = small(model);
        let r = run(&cfg);
        assert_eq!(r.records.len(), cfg.n_queries, "{model}");
        assert!(r.summary.avg_downlink_bytes > 0.0, "{model}");
    }
}

#[test]
fn all_proactive_forms_run_verified() {
    for form in [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive] {
        let mut cfg = small(CacheModel::Proactive);
        cfg.form = form;
        let r = run(&cfg);
        assert_eq!(r.records.len(), cfg.n_queries, "{}", form.name());
        assert!(
            r.summary.hit_c > 0.0,
            "{} should serve something",
            form.name()
        );
    }
}

#[test]
fn page_cache_has_zero_hit_rate_and_full_fmr() {
    let r = run(&small(CacheModel::Page));
    assert_eq!(r.summary.hit_c, 0.0, "PAG never answers locally");
    assert!(
        r.summary.hit_b > 0.0,
        "but its cache does hold result bytes"
    );
    assert!(
        (r.summary.fmr - 1.0).abs() < 1e-12,
        "every cached result is a false miss for PAG (fmr {})",
        r.summary.fmr
    );
    assert!((r.summary.contact_rate - 1.0).abs() < 1e-12);
}

#[test]
fn proactive_beats_semantic_on_hit_rate_and_response() {
    // The Fig. 6 headline on a small run: APRO's hit_c well above SEM's,
    // response time below, with a mixed workload including joins.
    let apro = run(&small(CacheModel::Proactive));
    let sem = run(&small(CacheModel::Semantic));
    let pag = run(&small(CacheModel::Page));
    assert!(
        apro.summary.hit_c > sem.summary.hit_c,
        "APRO hit_c {} vs SEM {}",
        apro.summary.hit_c,
        sem.summary.hit_c
    );
    assert!(
        apro.summary.avg_response_s < sem.summary.avg_response_s,
        "APRO resp {} vs SEM {}",
        apro.summary.avg_response_s,
        sem.summary.avg_response_s
    );
    assert!(
        apro.summary.avg_response_s < pag.summary.avg_response_s,
        "APRO resp {} vs PAG {}",
        apro.summary.avg_response_s,
        pag.summary.avg_response_s
    );
    // PAG ships its whole manifest every time: more uplink than SEM's
    // bare descriptors. (PAG > APRO emerges only at paper-scale cache
    // populations — the fig6 harness checks it there.)
    assert!(pag.summary.avg_uplink_bytes > sem.summary.avg_uplink_bytes);
    // SEM re-downloads joins and cross-type results: highest downlink.
    assert!(sem.summary.avg_downlink_bytes > pag.summary.avg_downlink_bytes);
    assert!(sem.summary.avg_downlink_bytes > apro.summary.avg_downlink_bytes);
}

#[test]
fn runs_are_deterministic_in_byte_metrics() {
    let cfg = small(CacheModel::Proactive);
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(b.records.iter()) {
        assert_eq!(x.uplink_bytes, y.uplink_bytes);
        assert_eq!(x.downlink_bytes, y.downlink_bytes);
        assert_eq!(x.saved_bytes, y.saved_bytes);
        assert_eq!(x.result_bytes, y.result_bytes);
    }
}

#[test]
fn windows_cover_the_run() {
    let mut cfg = small(CacheModel::Proactive);
    cfg.window = 50;
    let r = run(&cfg);
    assert_eq!(r.windows.len(), cfg.n_queries / 50);
    assert_eq!(r.windows.last().unwrap().query_end, cfg.n_queries);
    // i/c must be populated for the proactive model.
    assert!(r.windows.iter().any(|w| w.index_to_cache > 0.0));
}

#[test]
fn drifting_k_mode_runs_knn_only() {
    let mut cfg = small(CacheModel::Proactive);
    cfg.drifting_k = Some((8, 1));
    cfg.n_queries = 200;
    let r = run(&cfg);
    assert!(r.records.iter().all(|rec| rec.kind == QueryKind::Knn));
}

#[test]
fn adaptive_form_reacts_to_fmr_reports() {
    let mut cfg = small(CacheModel::Proactive);
    cfg.form = FormPolicy::Adaptive;
    cfg.fmr_report_period = 20;
    cfg.drifting_k = Some((8, 1));
    cfg.n_queries = 300;
    let mut server = build_server(&cfg);
    let _ = run_with_server(&cfg, &mut server);
    // After a drifting-k run with periodic reports the controller has a
    // recorded state for client 0 (d may or may not have moved, but the
    // baseline must exist).
    assert!(server.client_d(0) <= 16);
}

#[test]
fn each_fleet_client_drives_its_own_adaptive_state() {
    // Three clients with periodic fmr reports: mid-run, each session keeps
    // its own adaptive state (none hardwired to client 0); on completion
    // every session disconnects with a `Forget` request, so the server's
    // table drains back to empty.
    let mut cfg = small(CacheModel::Proactive);
    cfg.form = FormPolicy::Adaptive;
    cfg.fmr_report_period = 20;
    cfg.n_queries = 60;
    cfg.verify = false;
    let server = build_server(&cfg);

    // Step three sessions by hand past one report period: state exists.
    let mut sessions: Vec<ClientSession> = (0..3u32)
        .map(|c| ClientSession::new(&cfg, &server, c))
        .collect();
    for s in &mut sessions {
        for _ in 0..cfg.fmr_report_period {
            s.step(&server);
        }
    }
    assert_eq!(server.tracked_clients(), 3, "one §4.3 state per client");
    drop(sessions);
    for c in 0..3u32 {
        assert!(server.forget_client(c));
    }

    // A full fleet run self-cleans: sessions forget themselves on finish.
    let fleet = Fleet::new(cfg).clients(3).threads(2);
    let out = fleet.run(&server);
    assert_eq!(out.per_client.len(), 3);
    assert_eq!(out.total_queries(), 180);
    assert_eq!(
        server.tracked_clients(),
        0,
        "completed sessions released their adaptive state"
    );
    for c in 0..3u32 {
        assert!(!server.forget_client(c), "client {c} already forgotten");
    }
}

#[test]
fn sessions_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<ClientSession>();
    assert_send::<Fleet>();
    assert_send::<FleetResult>();
}

#[test]
fn client_seeds_decorrelate_but_preserve_client_zero() {
    assert_eq!(client_seed(2005, 0), 2005, "client 0 keeps the run seed");
    let seeds: std::collections::HashSet<u64> = (0..100u32).map(|c| client_seed(2005, c)).collect();
    assert_eq!(seeds.len(), 100, "per-client seeds are distinct");
}

#[test]
fn by_kind_breakdown_sums_to_total() {
    let r = run(&small(CacheModel::Proactive));
    let total = r.summary.queries;
    let sum = r.by_kind(QueryKind::Range).queries
        + r.by_kind(QueryKind::Knn).queries
        + r.by_kind(QueryKind::Join).queries;
    assert_eq!(total, sum);
}

#[test]
fn smaller_cache_cannot_beat_bigger_cache_by_much() {
    // Monotonicity sanity: 0.1% cache must not outperform 5% on hit_c.
    let mut small_c = small(CacheModel::Proactive);
    small_c.cache_frac = 0.001;
    let mut big_c = small(CacheModel::Proactive);
    big_c.cache_frac = 0.05;
    let rs = run(&small_c);
    let rb = run(&big_c);
    assert!(
        rb.summary.hit_c >= rs.summary.hit_c * 0.8,
        "5% cache hit_c {} vs 0.1% {}",
        rb.summary.hit_c,
        rs.summary.hit_c
    );
}

// ---------------------------------------------------------------------
// Churn-path client fixes (§7 protocol drivers)
// ---------------------------------------------------------------------

mod churn_clients {
    use crate::updates::UpdatingClient;
    use pc_cache::{Catalog, ReplacementPolicy};
    use pc_geom::{Point, Rect};
    use pc_rtree::proto::{QuerySpec, Request, Response};
    use pc_rtree::{naive, ObjectId, RTreeConfig};
    use pc_server::{ClientId, Server, ServerConfig, ServerCore, ServerHandle, Transport, Update};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn sample_server(n: usize, seed: u64, cfg: ServerConfig) -> Server {
        Server::new(
            pc_workload::datasets::ne_like(n, seed),
            RTreeConfig::small(),
            cfg,
        )
    }

    fn warm_client(server: &Server, id: ClientId) -> UpdatingClient {
        UpdatingClient::new(
            1 << 22,
            ReplacementPolicy::Grd3,
            Catalog::from_tree(server.snapshot().tree()),
        )
        .with_client(id)
        .at_epoch(server.snapshot().epoch())
    }

    #[test]
    fn updating_client_sends_its_own_id() {
        // Regression: `UpdatingClient::query` used to hardcode client 0,
        // corrupting per-client adaptive state and epoch attribution the
        // moment two clients shared a server.
        let server = sample_server(500, 11, ServerConfig::default());
        let mut a = warm_client(&server, 7);
        let mut b = warm_client(&server, 9);
        let pos = Point::new(0.31, 0.36);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.2),
        };
        let out = a.query(&server, &spec, pos, 0.0);
        assert!(out.ledger.contacted_server);
        b.query(&server, &spec, pos, 0.0);
        assert_eq!(server.client_last_epoch(7), Some(0), "a's contact is a's");
        assert_eq!(server.client_last_epoch(9), Some(0), "b's contact is b's");
        assert_eq!(
            server.client_last_epoch(0),
            None,
            "nothing may be attributed to a hardcoded client 0"
        );
    }

    /// A handle that injects one update batch *before forwarding* each of
    /// the first `races` versioned remainders — the worst-case interleaving
    /// where every retry is answered by a yet-newer epoch.
    struct RacingHandle<'a> {
        server: &'a Server,
        races: AtomicU32,
    }

    impl Transport for RacingHandle<'_> {
        fn call(&self, client: ClientId, req: Request) -> Response {
            if matches!(req, Request::RemainderVersioned { .. })
                && self
                    .races
                    // ordering: SeqCst — test counter; ordering immaterial,
                    // strongest-for-free beats justifying anything weaker.
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
                    .is_ok()
            {
                self.server.apply_updates(&[Update::Move {
                    id: ObjectId(0),
                    to: Rect::from_point(Point::new(0.97, 0.03)),
                }]);
            }
            self.server.call(client, req)
        }
    }

    impl ServerHandle for RacingHandle<'_> {
        fn core(&self) -> &ServerCore {
            self.server.core()
        }
    }

    #[test]
    fn updating_client_survives_repeated_mid_query_epoch_races() {
        // Regression for the 4-attempt retry cap: ten consecutive races
        // force ten stale refusals on one query. The client must keep
        // re-running stage ① (sizing each attempt off a fresh pin) and
        // converge with the exact current answer — the old cap panicked
        // at attempt 4.
        let races = 10;
        let server = sample_server(600, 3, ServerConfig::default());
        let handle = RacingHandle {
            server: &server,
            races: AtomicU32::new(races),
        };
        let mut client = warm_client(&server, 4);
        let pos = Point::new(0.31, 0.36);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.25),
        };
        let out = client.query(&handle, &spec, pos, 0.0);
        assert_eq!(
            out.round_trips,
            races + 1,
            "every race costs exactly one refused round trip"
        );
        assert_eq!(out.full_refreshes, 0, "full history: no refresh needed");
        assert_eq!(client.epoch(), races as u64);
        client.client().cache().validate().unwrap();
        let QuerySpec::Range { window } = spec else {
            unreachable!()
        };
        let mut got = out.answer.objects.clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(
            got,
            naive::range_naive(server.snapshot().store(), &window),
            "the converged answer must be exact for the final epoch"
        );
    }

    #[test]
    fn updating_client_recovers_from_a_full_refresh() {
        // A client whose epoch fell below the server's pruned invalidation
        // horizon gets a FullRefresh refusal: it must drop its whole
        // cache, re-sync the catalog, and still answer exactly.
        let server = sample_server(
            700,
            5,
            ServerConfig {
                max_update_history: 2,
                ..ServerConfig::default()
            },
        );
        let mut client = warm_client(&server, 3);
        let pos = Point::new(0.31, 0.36);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.25),
        };
        let first = client.query(&server, &spec, pos, 0.0);
        assert!(first.ledger.contacted_server);
        assert!(
            !client.client().cache().is_empty(),
            "the warm-up query must have cached something"
        );

        // Six epochs of churn: history is capped at 2, so epoch 0 is far
        // below the low-water mark (4).
        for i in 0..6u32 {
            server.apply_updates(&[Update::Move {
                id: ObjectId(i),
                to: Rect::from_point(Point::new(0.9, 0.05 + 0.01 * i as f64)),
            }]);
        }
        assert_eq!(server.snapshot().update_log().low_water(), 4);

        // A wider window than the warmed one: stage ① cannot finish
        // locally, so the client must contact — and be refused.
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.5),
        };
        let out = client.query(&server, &spec, pos, 0.0);
        assert_eq!(out.full_refreshes, 1, "one refusal, one refresh");
        assert_eq!(out.round_trips, 2, "refresh + resubmit");
        assert!(
            out.invalidated_items > 0,
            "the refresh must have dropped the warm cache"
        );
        assert_eq!(client.epoch(), 6, "re-synced to the current epoch");
        client.client().cache().validate().unwrap();
        let QuerySpec::Range { window } = spec else {
            unreachable!()
        };
        let mut got = out.answer.objects.clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, naive::range_naive(server.snapshot().store(), &window));
    }

    #[test]
    fn versioned_runner_recovers_from_a_full_refresh() {
        use crate::runner::{ModelRunner, ProactiveRunner};
        let server = sample_server(
            600,
            8,
            ServerConfig {
                max_update_history: 1,
                ..ServerConfig::default()
            },
        );
        let mut runner = ProactiveRunner::new(
            1 << 22,
            ReplacementPolicy::Grd3,
            Catalog::from_tree(server.snapshot().tree()),
        )
        .with_client(2)
        .versioned(true)
        .at_epoch(0);
        let pos = Point::new(0.31, 0.36);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.25),
        };
        // Warm, then outrun the 1-epoch history window.
        let handle: &dyn ServerHandle = &server;
        runner.run_query(handle, &spec, pos, 0.0);
        for i in 0..4u32 {
            server.apply_updates(&[Update::Move {
                id: ObjectId(i),
                to: Rect::from_point(Point::new(0.92, 0.04 + 0.01 * i as f64)),
            }]);
        }
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.5),
        };
        let out = runner.run_query(handle, &spec, pos, 0.0);
        assert_eq!(out.full_refreshes, 1);
        assert!(out.invalidation_bytes > 0, "the refusal is charged");
        let mut got = out.objects.clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(
            got,
            naive::range_naive(server.snapshot().store(), &window_of(&spec))
        );
    }

    fn window_of(spec: &QuerySpec) -> Rect {
        match spec {
            QuerySpec::Range { window } => *window,
            _ => unreachable!(),
        }
    }
}
