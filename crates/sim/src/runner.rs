//! Model adapters: one uniform interface over PAG, SEM and the proactive
//! client so the simulation loop is model-agnostic. Runners never touch a
//! concrete `Server` — every byte that crosses the client/server boundary
//! travels as a `Request`/`Response` envelope through the
//! [`ServerHandle`]'s transport, so swapping the in-process path for the
//! batched service (or a real network) is invisible to them.

use crate::config::{CacheModel, SimConfig};
use pc_baselines::{PageCache, SemanticCache};
use pc_cache::Catalog;
use pc_client::Client;
use pc_geom::Point;
use pc_net::Ledger;
use pc_rtree::proto::{
    QuerySpec, Request, VersionedReply, CONFIRM_BYTES, EPOCH_BYTES, FULL_REFRESH_BYTES,
    INVALIDATION_BYTES, OBJECT_HEADER_BYTES, PAIR_BYTES,
};
use pc_rtree::ObjectId;
use pc_server::{ClientId, ServerHandle, SUPER_ROOT};
use std::time::Instant;

/// What one query produced, regardless of model.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    pub ledger: Ledger,
    pub objects: Vec<ObjectId>,
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// `R ∩ C`: result objects cached at issue time.
    pub cached_results: Vec<ObjectId>,
    /// `Rs`: result objects served locally before any contact.
    pub locally_served: Vec<ObjectId>,
    /// Wall-clock seconds spent inside server calls (subtracted from the
    /// measured total to get client CPU).
    pub server_cpu_s: f64,
    pub client_expansions: u64,
    /// Extra round trips after stale refusals (versioned protocol only).
    pub stale_retries: u32,
    /// Full-refresh refusals suffered (the client fell below the server's
    /// pruned invalidation horizon and dropped its whole cache).
    pub full_refreshes: u32,
    /// Invalidation-list + epoch-stamp downlink bytes (versioned protocol
    /// only; also charged into the ledger's extra downlink).
    pub invalidation_bytes: u64,
}

/// A caching model under simulation. `Send` so a fleet can drive one
/// runner per client session across worker threads.
pub trait ModelRunner: Send {
    fn run_query(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> RunOutput;

    /// `(used bytes, index bytes)` for the i/c series.
    fn cache_stats(&self) -> (u64, u64);
}

/// Builds the runner for one client of a configuration.
pub(crate) fn make_runner(
    cfg: &SimConfig,
    server: &dyn ServerHandle,
    capacity: u64,
    client: ClientId,
) -> Box<dyn ModelRunner> {
    match cfg.model {
        CacheModel::Page => Box::new(PageRunner {
            cache: PageCache::new(capacity),
            client,
        }),
        CacheModel::Semantic => Box::new(SemanticRunner {
            cache: SemanticCache::new(capacity),
            client,
        }),
        CacheModel::Proactive => {
            // Catalog and starting epoch come from one bootstrap read: the
            // client begins life synced to the world its catalog describes,
            // so its first contact is not spuriously refused as stale. For
            // a cluster the catalog points at the synthetic super-root.
            let (root, epoch) = server.bootstrap_root();
            Box::new(
                ProactiveRunner::new(capacity, cfg.policy, Catalog { root })
                    .with_client(client)
                    .versioned(cfg.versioned)
                    .at_epoch(epoch),
            )
        }
    }
}

// ---------------------------------------------------------------------
// PAG
// ---------------------------------------------------------------------

struct PageRunner {
    cache: PageCache,
    client: ClientId,
}

impl ModelRunner for PageRunner {
    fn run_query(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        _pos: Point,
        server_time_s: f64,
    ) -> RunOutput {
        let t = Instant::now();
        let a = self.cache.query(server, self.client, spec, server_time_s);
        // PAG does essentially nothing client-side; the whole call is
        // dominated by the server's direct evaluation.
        let server_cpu_s = t.elapsed().as_secs_f64() * 0.95;
        RunOutput {
            ledger: a.ledger,
            objects: a.objects,
            pairs: a.pairs,
            cached_results: a.cached_results,
            locally_served: a.locally_served,
            server_cpu_s,
            ..Default::default()
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        (self.cache.used_bytes(), 0)
    }
}

// ---------------------------------------------------------------------
// SEM
// ---------------------------------------------------------------------

struct SemanticRunner {
    cache: SemanticCache,
    client: ClientId,
}

impl ModelRunner for SemanticRunner {
    fn run_query(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> RunOutput {
        let a = self
            .cache
            .query(server, self.client, spec, pos, server_time_s);
        // SEM's server work is plain direct evaluation of the remainder
        // pieces; approximate its share via the simulated per-contact cost
        // so client CPU reflects the sequential region scans.
        let server_cpu_s = if a.ledger.contacted_server {
            server_time_s.min(1e-3)
        } else {
            0.0
        };
        RunOutput {
            ledger: a.ledger,
            objects: a.objects,
            pairs: a.pairs,
            cached_results: a.cached_results,
            locally_served: a.locally_served,
            server_cpu_s,
            ..Default::default()
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        // Region descriptors are the only "index" SEM keeps; they are
        // negligible, matching the paper's "Ir = Qr" remark.
        (self.cache.used_bytes(), 0)
    }
}

// ---------------------------------------------------------------------
// Proactive (FPRO / CPRO / APRO)
// ---------------------------------------------------------------------

/// The proactive pipeline wrapped as a runner; public because examples and
/// benches drive it directly.
pub struct ProactiveRunner {
    client: Client,
    /// The id this runner identifies as in remainder queries and fmr
    /// reports — it selects the server-side adaptive state (§4.3).
    client_id: ClientId,
    /// Speak the §7 versioned protocol: epoch-stamped contacts, cache
    /// invalidation + stage-① re-run + resubmit on `Stale`.
    versioned: bool,
    /// Last epoch this client synced to (versioned protocol only).
    epoch: u64,
}

impl ProactiveRunner {
    pub fn new(capacity: u64, policy: pc_cache::ReplacementPolicy, catalog: Catalog) -> Self {
        ProactiveRunner {
            client: Client::new(capacity, policy, catalog),
            client_id: 0,
            versioned: false,
            epoch: 0,
        }
    }

    /// Identifies this runner as `id` towards the server.
    pub fn with_client(mut self, id: ClientId) -> Self {
        self.client_id = id;
        self
    }

    /// Switches the §7 versioned-remainder protocol on or off.
    pub fn versioned(mut self, on: bool) -> Self {
        self.versioned = on;
        self
    }

    /// Declares the epoch this client's catalog/cache state was built
    /// from — its first versioned contact carries this stamp instead of
    /// claiming the (possibly long-gone) epoch 0.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    pub fn client(&self) -> &Client {
        &self.client
    }

    pub fn client_id(&self) -> ClientId {
        self.client_id
    }

    /// Runs one query through versioned contacts, invalidating and
    /// resubmitting after stale refusals. Same accounting conventions as
    /// the plain path, plus: each contact's uplink carries the epoch
    /// stamp, each reply's invalidation list + epoch stamp land in the
    /// extra downlink, and retries repeat the full uplink + server time.
    fn run_query_versioned(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> RunOutput {
        self.client.begin_query();
        let mut ledger = Ledger::default();
        let mut server_cpu_s = 0.0;
        let mut stale_retries = 0u32;
        let mut full_refreshes = 0u32;
        let mut invalidation_bytes = 0u64;
        // A stale refusal advances the client to the refusing epoch, so
        // each retry needs a *new* epoch to land mid-query to repeat; the
        // churn driver's pacing makes long runs vanishingly unlikely, and
        // the cap turns a livelock into a loud failure.
        for _attempt in 0..64 {
            // Re-pinned every attempt: after a refusal the next contact is
            // answered by a newer epoch, so byte sizing must read a store
            // at least as new as the reply — never the pre-query pin.
            let snap = server.core().pin();
            let store = snap.store();
            let local = self.client.run_local(spec);
            ledger.saved_bytes = local
                .saved
                .iter()
                .map(|&id| store.get(id).size_bytes as u64)
                .sum();
            let Some(rq) = &local.remainder else {
                let answer = self.client.assemble(&local, None);
                return RunOutput {
                    ledger,
                    objects: answer.objects,
                    pairs: answer.pairs,
                    cached_results: local.saved.clone(),
                    locally_served: local.saved,
                    server_cpu_s,
                    client_expansions: local.expansions,
                    stale_retries,
                    full_refreshes,
                    invalidation_bytes,
                };
            };
            let req = Request::RemainderVersioned {
                query: rq.clone(),
                epoch: self.epoch,
            };
            ledger.contacted_server = true;
            ledger.contacts += 1;
            ledger.uplink_bytes += req.wire_bytes();
            ledger.server_time_s += server_time_s;
            let t = Instant::now();
            let resp = server.call(self.client_id, req).into_versioned();
            server_cpu_s += t.elapsed().as_secs_f64();
            match resp {
                VersionedReply::Fresh {
                    reply,
                    invalidate,
                    epoch,
                } => {
                    let inv = invalidate.len() as u64 * INVALIDATION_BYTES;
                    invalidation_bytes += inv + EPOCH_BYTES;
                    for &n in &invalidate {
                        // The virtual super-root is routing metadata: drop
                        // only its own view. Its shard subtrees are
                        // versioned per shard (each arrives with its own
                        // invalidation entries), and a deep drop here
                        // would tear out views the in-flight remainder
                        // heap still references.
                        if n == SUPER_ROOT {
                            self.client.cache_mut().invalidate_node_shallow(n);
                        } else {
                            self.client.cache_mut().invalidate_node(n);
                        }
                    }
                    self.epoch = epoch;
                    ledger.confirmed_bytes = reply
                        .confirmed
                        .iter()
                        .map(|&id| store.get(id).size_bytes as u64)
                        .sum();
                    ledger.confirm_wire_bytes = reply.confirmed.len() as u64 * CONFIRM_BYTES;
                    ledger.transmitted = reply.objects.iter().map(|o| o.size_bytes).collect();
                    ledger.transmitted_header_bytes =
                        reply.objects.len() as u64 * OBJECT_HEADER_BYTES;
                    ledger.extra_downlink_bytes += reply.index_bytes()
                        + reply.pairs.len() as u64 * PAIR_BYTES
                        + inv
                        + EPOCH_BYTES;
                    let mut cached_results = local.saved.clone();
                    cached_results.extend(reply.confirmed.iter().copied());
                    self.client.absorb(&reply, pos);
                    let answer = self.client.assemble(&local, Some(&reply));
                    return RunOutput {
                        ledger,
                        objects: answer.objects,
                        pairs: answer.pairs,
                        cached_results,
                        locally_served: local.saved.clone(),
                        server_cpu_s,
                        client_expansions: local.expansions,
                        stale_retries,
                        full_refreshes,
                        invalidation_bytes,
                    };
                }
                VersionedReply::Stale { invalidate, epoch } => {
                    stale_retries += 1;
                    let inv = invalidate.len() as u64 * INVALIDATION_BYTES;
                    invalidation_bytes += inv + EPOCH_BYTES;
                    ledger.extra_downlink_bytes += inv + EPOCH_BYTES;
                    for &n in &invalidate {
                        // The virtual super-root is routing metadata: drop
                        // only its own view. Its shard subtrees are
                        // versioned per shard (each arrives with its own
                        // invalidation entries), and a deep drop here
                        // would tear out views the in-flight remainder
                        // heap still references.
                        if n == SUPER_ROOT {
                            self.client.cache_mut().invalidate_node_shallow(n);
                        } else {
                            self.client.cache_mut().invalidate_node(n);
                        }
                    }
                    self.epoch = epoch;
                    // Loop: re-run stage ① against the cleaned cache.
                }
                VersionedReply::FullRefresh { .. } => {
                    // The server pruned invalidation history below our
                    // epoch: no per-node list exists. Drop the whole cache,
                    // re-sync the catalog from a fresh pin (out-of-band
                    // metadata, like the bootstrap catalog) and restart
                    // stage ① cold. The refusal's fixed wire cost is
                    // charged; re-warming shows up on later queries.
                    full_refreshes += 1;
                    invalidation_bytes += FULL_REFRESH_BYTES;
                    ledger.extra_downlink_bytes += FULL_REFRESH_BYTES;
                    let (root, epoch) = server.bootstrap_root();
                    self.client.full_refresh(pc_cache::Catalog { root });
                    self.epoch = epoch;
                }
            }
        }
        // pc-check: allow(no-unwrap, "deliberate loud livelock cap: 64 straight stale retries means the workload config is broken (driver outpaces every query) and silently returning a partial result would corrupt the measurement")
        panic!(
            "client {}: stale retries did not converge in 64 attempts — \
             the update driver is outpacing every query",
            self.client_id
        );
    }
}

impl ModelRunner for ProactiveRunner {
    fn run_query(
        &mut self,
        server: &dyn ServerHandle,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> RunOutput {
        if self.versioned {
            return self.run_query_versioned(server, spec, pos, server_time_s);
        }
        self.client.begin_query();
        let local = self.client.run_local(spec);
        let snap = server.core().pin();
        let store = snap.store();

        let mut ledger = Ledger {
            saved_bytes: local
                .saved
                .iter()
                .map(|&id| store.get(id).size_bytes as u64)
                .sum(),
            ..Default::default()
        };
        let mut server_cpu_s = 0.0;
        let mut cached_results: Vec<ObjectId> = local.saved.clone();

        let reply = match &local.remainder {
            Some(rq) => {
                let req = Request::Remainder(rq.clone());
                ledger.contacted_server = true;
                ledger.contacts = 1;
                ledger.uplink_bytes = req.wire_bytes();
                ledger.server_time_s = server_time_s;
                let t = Instant::now();
                let reply = server.call(self.client_id, req).into_remainder();
                server_cpu_s = t.elapsed().as_secs_f64();
                ledger.confirmed_bytes = reply
                    .confirmed
                    .iter()
                    .map(|&id| store.get(id).size_bytes as u64)
                    .sum();
                ledger.confirm_wire_bytes = reply.confirmed.len() as u64 * CONFIRM_BYTES;
                ledger.transmitted = reply.objects.iter().map(|o| o.size_bytes).collect();
                ledger.transmitted_header_bytes = reply.objects.len() as u64 * OBJECT_HEADER_BYTES;
                ledger.extra_downlink_bytes =
                    reply.index_bytes() + reply.pairs.len() as u64 * PAIR_BYTES;
                cached_results.extend(reply.confirmed.iter().copied());
                self.client.absorb(&reply, pos);
                Some(reply)
            }
            None => None,
        };

        let answer = self.client.assemble(&local, reply.as_ref());
        RunOutput {
            ledger,
            objects: answer.objects,
            pairs: answer.pairs,
            cached_results,
            locally_served: local.saved.clone(),
            server_cpu_s,
            client_expansions: local.expansions,
            stale_retries: 0,
            full_refreshes: 0,
            invalidation_bytes: 0,
        }
    }

    fn cache_stats(&self) -> (u64, u64) {
        let s = self.client.cache().stats();
        (s.used_bytes, s.index_bytes)
    }
}
