//! [`FullView`]: the authoritative [`IndexView`] over a complete R-tree and
//! its BPT store — what the server's query processor navigates.

use crate::bpt::{BptCellKind, BptStore};
use crate::engine::{CellChild, Expansion, IndexView, Target};
use crate::proto::CellRef;
use crate::tree::RTree;
use crate::ChildRef;
use pc_geom::Rect;

/// Complete server-side view: every cell expands, nothing is missing.
pub struct FullView<'a> {
    tree: &'a RTree,
    bpts: &'a BptStore,
}

impl<'a> FullView<'a> {
    pub fn new(tree: &'a RTree, bpts: &'a BptStore) -> Self {
        FullView { tree, bpts }
    }

    pub fn tree(&self) -> &RTree {
        self.tree
    }

    pub fn bpts(&self) -> &BptStore {
        self.bpts
    }
}

impl IndexView for FullView<'_> {
    fn root(&self) -> Option<(Rect, CellRef)> {
        self.tree
            .root_mbr()
            .map(|mbr| (mbr, CellRef::node_root(self.tree.root())))
    }

    fn expand(&self, cell: CellRef) -> Expansion {
        let bpt = self.bpts.get(cell.node);
        if bpt.is_empty() {
            // Empty root node of an empty tree.
            return Expansion::Children(Vec::new());
        }
        if let Some(children) = bpt.children(cell.code) {
            // Super entry: its two BPT children.
            return Expansion::Children(
                children
                    .iter()
                    .map(|(code, c)| CellChild {
                        mbr: c.mbr,
                        target: Target::Cell(CellRef {
                            node: cell.node,
                            code: *code,
                        }),
                    })
                    .collect(),
            );
        }
        match bpt.find(cell.code) {
            Some(c) => match c.kind {
                BptCellKind::Leaf { entry_idx } => {
                    let entry = self.tree.node(cell.node).entry(entry_idx as usize);
                    let child = match entry.child {
                        ChildRef::Node(n) => CellChild {
                            mbr: entry.mbr,
                            target: Target::Cell(CellRef::node_root(n)),
                        },
                        ChildRef::Object(o) => CellChild {
                            mbr: entry.mbr,
                            target: Target::Object {
                                id: o,
                                cached: false,
                            },
                        },
                    };
                    Expansion::Children(vec![child])
                }
                BptCellKind::Internal { .. } => unreachable!("children() covered internals"),
            },
            None => {
                debug_assert!(false, "invalid cell {cell} on an authoritative view");
                Expansion::Missing
            }
        }
    }

    fn authoritative(&self) -> bool {
        true
    }
}
