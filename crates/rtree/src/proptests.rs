//! Crate-level property tests: the R-tree, the BPTs and the generic engine
//! must satisfy their contracts on *arbitrary* inputs, not just the
//! hand-picked unit-test data.

use crate::bpt::{BptStore, Code};
use crate::engine::{execute, resume, CellChild, Expansion, IndexView, NoopTracer, Target};
use crate::proto::{
    CellKind, CellRecord, CellRef, HeapEntry, NodeShipment, QuerySpec, RemainderQuery, Request,
    Response, ServerReply, Side, VersionedReply, CONFIRM_BYTES, ENTRY_BYTES, EPOCH_BYTES,
    HEAP_ENTRY_BYTES, HEAP_PAIR_BYTES, INVALIDATION_BYTES, OBJECT_HEADER_BYTES, PAIR_BYTES,
    QUERY_DESC_BYTES, SHIPMENT_HEADER_BYTES,
};
use crate::tree::{RTree, RTreeConfig};
use crate::view::FullView;
use crate::{naive, query, NodeId, ObjectId, ObjectStore, SpatialObject};
use pc_geom::{Point, Rect};
use proptest::prelude::*;

fn arb_objects(max: usize) -> impl Strategy<Value = Vec<SpatialObject>> {
    prop::collection::vec(
        (
            0.0f64..1.0,
            0.0f64..1.0,
            0.0f64..0.03,
            0.0f64..0.03,
            1u32..5000,
        ),
        2..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h, size))| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                size_bytes: size,
            })
            .collect()
    })
}

fn build(objects: &[SpatialObject]) -> (ObjectStore, RTree, BptStore) {
    let tree = RTree::bulk_load(RTreeConfig::small(), objects);
    let bpts = BptStore::build(&tree);
    (ObjectStore::new(objects.to_vec()), tree, bpts)
}

/// Arbitrary remainder heaps: a mix of single/pair entries over cell and
/// object sides (geometry is irrelevant for wire sizing).
fn arb_heap() -> impl Strategy<Value = Vec<(f64, HeapEntry)>> {
    prop::collection::vec(
        (
            0.0f64..1.0,
            any::<bool>(),
            any::<bool>(),
            0u32..64,
            0u32..64,
        ),
        0..24,
    )
    .prop_map(|raw| {
        let side = |is_obj: bool, id: u32| {
            if is_obj {
                Side::Obj {
                    id: ObjectId(id),
                    mbr: Rect::UNIT,
                    cached: false,
                }
            } else {
                Side::Cell {
                    cell: CellRef::node_root(NodeId(id)),
                    mbr: Rect::UNIT,
                }
            }
        };
        raw.into_iter()
            .map(|(key, pair, obj, a, b)| {
                let entry = if pair {
                    HeapEntry::Pair(side(obj, a), side(!obj, b))
                } else {
                    HeapEntry::Single(side(obj, a))
                };
                (key, entry)
            })
            .collect()
    })
}

/// Arbitrary server replies: confirmed ids, sized payload objects, join
/// pairs and index shipments with varying cell counts.
fn arb_reply() -> impl Strategy<Value = ServerReply> {
    (
        prop::collection::vec(0u32..1000, 0..10),
        prop::collection::vec(1u32..5000, 0..10),
        0usize..6,
        prop::collection::vec(0usize..20, 0..8),
    )
        .prop_map(|(confirmed, sizes, n_pairs, cell_counts)| ServerReply {
            confirmed: confirmed.into_iter().map(ObjectId).collect(),
            objects: sizes
                .into_iter()
                .enumerate()
                .map(|(i, size_bytes)| SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::UNIT,
                    size_bytes,
                })
                .collect(),
            pairs: (0..n_pairs)
                .map(|i| (ObjectId(i as u32), ObjectId(i as u32 + 1)))
                .collect(),
            index: cell_counts
                .into_iter()
                .enumerate()
                .map(|(i, n)| NodeShipment {
                    node: NodeId(i as u32),
                    level: 1,
                    parent: None,
                    cells: vec![
                        CellRecord {
                            code: Code::ROOT,
                            mbr: Rect::UNIT,
                            kind: CellKind::Super,
                        };
                        n
                    ],
                })
                .collect(),
            expansions: 0,
        })
}

/// Partial view driven by a bitmask over node ids and object ids.
struct MaskView<'a> {
    full: FullView<'a>,
    node_mask: Vec<bool>,
    obj_mask: Vec<bool>,
}

impl IndexView for MaskView<'_> {
    fn root(&self) -> Option<(Rect, CellRef)> {
        self.full.root()
    }
    fn expand(&self, cell: CellRef) -> Expansion {
        if !self
            .node_mask
            .get(cell.node.0 as usize)
            .copied()
            .unwrap_or(false)
        {
            return Expansion::Missing;
        }
        match self.full.expand(cell) {
            Expansion::Children(children) => Expansion::Children(
                children
                    .into_iter()
                    .map(|c| CellChild {
                        mbr: c.mbr,
                        target: match c.target {
                            Target::Object { id, .. } => Target::Object {
                                id,
                                cached: self.obj_mask.get(id.0 as usize).copied().unwrap_or(false),
                            },
                            t => t,
                        },
                    })
                    .collect(),
            ),
            m => m,
        }
    }
    fn authoritative(&self) -> bool {
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_structure_valid_for_any_input(objects in arb_objects(120)) {
        let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        tree.validate(objects.len(), false).unwrap();
        // And dynamically built too.
        let mut dynamic = RTree::new(RTreeConfig::small());
        for o in &objects {
            dynamic.insert(o);
        }
        dynamic.validate(objects.len(), true).unwrap();
    }

    #[test]
    fn range_query_matches_naive(objects in arb_objects(150),
                                 cx in 0.0f64..1.0, cy in 0.0f64..1.0,
                                 side in 0.01f64..0.6) {
        let (store, tree, bpts) = build(&objects);
        let w = Rect::centered_square(Point::new(cx, cy), side);
        let mut got = query::range_query(&tree, &w);
        got.sort_unstable();
        prop_assert_eq!(&got, &naive::range_naive(&store, &w));
        // Engine agrees as well.
        let view = FullView::new(&tree, &bpts);
        let out = execute(&view, &QuerySpec::Range { window: w }, &mut NoopTracer);
        let mut eng: Vec<ObjectId> = out.results.iter().map(|(id, _)| *id).collect();
        eng.sort_unstable();
        prop_assert_eq!(eng, got);
    }

    #[test]
    fn knn_matches_naive(objects in arb_objects(150),
                         cx in 0.0f64..1.0, cy in 0.0f64..1.0, k in 1usize..12) {
        let (store, tree, bpts) = build(&objects);
        let p = Point::new(cx, cy);
        let got = query::knn_query(&tree, &p, k);
        let want = naive::knn_naive(&store, &p, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w.1).abs() < 1e-12);
        }
        let view = FullView::new(&tree, &bpts);
        let out = execute(&view, &QuerySpec::Knn { center: p, k: k as u32 }, &mut NoopTracer);
        prop_assert_eq!(out.results.len(), want.len());
    }

    #[test]
    fn join_matches_naive(objects in arb_objects(80), dist in 0.0f64..0.1) {
        let (store, tree, bpts) = build(&objects);
        let mut got = query::distance_self_join(&tree, dist);
        got.sort_unstable();
        prop_assert_eq!(&got, &naive::join_naive(&store, dist));
        let view = FullView::new(&tree, &bpts);
        let out = execute(&view, &QuerySpec::Join { dist }, &mut NoopTracer);
        let mut eng = out.result_pairs;
        eng.sort_unstable();
        prop_assert_eq!(eng, got);
    }

    #[test]
    fn two_stage_equals_direct_under_arbitrary_views(
        objects in arb_objects(100),
        node_bits in prop::collection::vec(any::<bool>(), 64),
        obj_bits in prop::collection::vec(any::<bool>(), 100),
        cx in 0.0f64..1.0, cy in 0.0f64..1.0,
        which in 0u8..3, k in 1u32..8, side in 0.02f64..0.4, dist in 0.0f64..0.05,
    ) {
        let (store, tree, bpts) = build(&objects);
        let mut node_mask = vec![false; 512];
        for (i, b) in node_bits.iter().enumerate() {
            // Stripe the mask across the slab.
            for j in (i..512).step_by(64) {
                node_mask[j] = *b;
            }
        }
        let view = MaskView {
            full: FullView::new(&tree, &bpts),
            node_mask,
            obj_mask: obj_bits,
        };
        let full = FullView::new(&tree, &bpts);
        let spec = match which {
            0 => QuerySpec::Range { window: Rect::centered_square(Point::new(cx, cy), side) },
            1 => QuerySpec::Knn { center: Point::new(cx, cy), k },
            _ => QuerySpec::Join { dist },
        };
        let local = execute(&view, &spec, &mut NoopTracer);
        let mut ids: Vec<ObjectId> = local.results.iter().map(|(id, _)| *id).collect();
        let mut pairs = local.result_pairs.clone();
        if let Some(rq) = &local.remainder {
            let remote = resume(&full, rq, &mut NoopTracer);
            prop_assert!(remote.remainder.is_none());
            ids.extend(remote.results.iter().map(|(id, _)| *id));
            pairs.extend(remote.result_pairs.iter().copied());
        }
        ids.sort_unstable();
        ids.dedup();
        pairs.sort_unstable();
        pairs.dedup();
        match spec {
            QuerySpec::Range { window } => {
                prop_assert_eq!(ids, naive::range_naive(&store, &window));
            }
            QuerySpec::Knn { center, k } => {
                let want = naive::knn_naive(&store, &center, k as usize);
                prop_assert_eq!(ids.len(), want.len());
                let mut got_d: Vec<f64> =
                    ids.iter().map(|id| store.get(*id).mbr.min_dist(&center)).collect();
                got_d.sort_by(f64::total_cmp);
                for (g, (_, w)) in got_d.iter().zip(&want) {
                    prop_assert!((g - w).abs() < 1e-12);
                }
            }
            QuerySpec::Join { dist } => {
                prop_assert_eq!(pairs, naive::join_naive(&store, dist));
            }
        }
    }

    #[test]
    fn iterative_kernels_match_oracles_after_arbitrary_updates(
        objects in arb_objects(100),
        ops in prop::collection::vec(
            (any::<bool>(), 0u32..200, 0.0f64..1.0, 0.0f64..1.0), 0..40),
        cx in 0.0f64..1.0, cy in 0.0f64..1.0,
        side in 0.02f64..0.5, k in 1usize..10, dist in 0.0f64..0.08,
    ) {
        // The SoA iterative kernels must stay result-identical — ordering,
        // distances and tie-breaks included — to the recursive baseline and
        // to brute force, on trees shaped by arbitrary update sequences,
        // with a single `QueryScratch` reused across all three query kinds.
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        let mut live = objects.clone();
        let mut next_id = objects.len() as u32;
        for (insert, pick, x, y) in ops {
            if insert {
                let o = SpatialObject {
                    id: ObjectId(next_id),
                    mbr: Rect::from_point(Point::new(x, y)),
                    size_bytes: 64,
                };
                next_id += 1;
                tree.insert(&o);
                live.push(o);
            } else if !live.is_empty() {
                let o = live.swap_remove(pick as usize % live.len());
                prop_assert!(tree.delete(o.id, &o.mbr));
            }
        }
        tree.validate(live.len(), false).unwrap();
        let mut scratch = query::QueryScratch::default();

        let w = Rect::centered_square(Point::new(cx, cy), side);
        let mut ids = Vec::new();
        query::range_query_with(&tree, &w, &mut scratch, &mut ids);
        ids.sort_unstable();
        // Traversal order differs (LIFO stack vs recursion) but the result
        // set must match the recursive baseline exactly.
        let mut rec = query::baseline::range_query(&tree, &w);
        rec.sort_unstable();
        prop_assert_eq!(&ids, &rec);
        let mut want: Vec<ObjectId> =
            live.iter().filter(|o| w.intersects(&o.mbr)).map(|o| o.id).collect();
        want.sort_unstable();
        prop_assert_eq!(&ids, &want);

        let p = Point::new(cx, cy);
        let mut knn = Vec::new();
        query::knn_query_with(&tree, &p, k, &mut scratch, &mut knn);
        prop_assert_eq!(&knn, &query::baseline::knn_query(&tree, &p, k));
        let mut brute: Vec<(f64, ObjectId)> =
            live.iter().map(|o| (o.mbr.min_dist(&p), o.id)).collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        prop_assert_eq!(knn.len(), k.min(live.len()));
        for (g, b) in knn.iter().zip(&brute) {
            prop_assert!((g.1 - b.0).abs() < 1e-12);
        }

        let mut pairs = Vec::new();
        query::distance_self_join_with(&tree, dist, &mut scratch, &mut pairs);
        prop_assert_eq!(&pairs, &query::baseline::distance_self_join(&tree, dist));
        let mut want_pairs = Vec::new();
        for (i, a) in live.iter().enumerate() {
            for b in &live[i + 1..] {
                if a.mbr.min_dist_rect(&b.mbr) <= dist {
                    let (lo, hi) = if a.id < b.id { (a.id, b.id) } else { (b.id, a.id) };
                    want_pairs.push((lo, hi));
                }
            }
        }
        want_pairs.sort_unstable();
        prop_assert_eq!(pairs, want_pairs);
    }

    #[test]
    fn chunked_slab_clones_share_and_stay_immutable(
        objects in arb_objects(120),
        ops in prop::collection::vec(
            (any::<bool>(), 0u32..200, 0.0f64..1.0, 0.0f64..1.0), 1..24),
    ) {
        // A cloned tree/BPT store is a persistent snapshot: the clone shares
        // *every* chunk and slot with the original, later updates to the
        // working copy copy at most the slots they dirty (plus their chunk
        // spines), and the snapshot's query results never change.
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        let bpts = BptStore::build(&tree);
        let base = tree.clone();
        let base_bpts = bpts.clone();
        prop_assert_eq!(base.shared_node_slots(&tree), tree.slab_len());
        prop_assert_eq!(base.shared_node_chunks(&tree), tree.node_chunk_count());
        prop_assert_eq!(base_bpts.shared_bpts(&bpts), bpts.node_count());
        prop_assert_eq!(base_bpts.shared_chunks(&bpts), bpts.chunk_count());

        let before = query::range_query(&base, &Rect::UNIT);
        let mut live = objects.clone();
        let mut next_id = objects.len() as u32;
        for (insert, pick, x, y) in ops {
            if insert {
                let o = SpatialObject {
                    id: ObjectId(next_id),
                    mbr: Rect::from_point(Point::new(x, y)),
                    size_bytes: 64,
                };
                next_id += 1;
                tree.insert(&o);
                live.push(o);
            } else if !live.is_empty() {
                let o = live.swap_remove(pick as usize % live.len());
                prop_assert!(tree.delete(o.id, &o.mbr));
            }
        }

        // Accounting stays consistent: every copied chunk spine is explained
        // by a dirtied slot in it, except the tail chunk which growth alone
        // can clone.
        let copied_slots = base.slab_len() - base.shared_node_slots(&tree);
        let copied_chunks = base.node_chunk_count() - base.shared_node_chunks(&tree);
        prop_assert!(copied_chunks <= copied_slots + 1);

        // The snapshot is untouched by everything above.
        base.validate(objects.len(), false).unwrap();
        prop_assert_eq!(query::range_query(&base, &Rect::UNIT), before);
        prop_assert_eq!(base_bpts.shared_bpts(&bpts), bpts.node_count());
    }

    #[test]
    fn bpt_codes_are_navigable(objects in arb_objects(100)) {
        let (_, tree, bpts) = build(&objects);
        for id in tree.node_ids() {
            let bpt = bpts.get(id);
            // Every leaf cell's code resolves back to itself.
            for (code, cell) in bpt.leaf_cells() {
                let found = bpt.find(code).unwrap();
                prop_assert_eq!(found.mbr, cell.mbr);
                // And every ancestor covers it.
                let mut c = code;
                while let Some(p) = c.parent() {
                    prop_assert!(bpt.find(p).unwrap().mbr.contains_rect(&cell.mbr));
                    c = p;
                }
            }
        }
    }

    #[test]
    fn deletion_preserves_query_correctness(
        objects in arb_objects(80),
        delete_bits in prop::collection::vec(any::<bool>(), 80),
    ) {
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        let mut survivors = Vec::new();
        for (o, del) in objects.iter().zip(delete_bits.iter().chain(std::iter::repeat(&false))) {
            if *del {
                prop_assert!(tree.delete(o.id, &o.mbr));
            } else {
                survivors.push(*o);
            }
        }
        tree.validate(survivors.len(), false).unwrap();
        let mut got = query::range_query(&tree, &Rect::UNIT);
        got.sort_unstable();
        let mut want: Vec<ObjectId> = survivors.iter().map(|o| o.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn code_child_parent_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..30)) {
        let mut code = Code::ROOT;
        for &b in &bits {
            code = code.child(b);
        }
        prop_assert_eq!(code.depth() as usize, bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(code.bit(i as u8), b);
        }
        let mut back = code;
        for _ in 0..bits.len() {
            back = back.parent().unwrap();
        }
        prop_assert!(back.is_root());
        prop_assert!(back.is_prefix_of(code));
    }

    #[test]
    fn request_envelope_wire_bytes_sum_their_parts(heap in arb_heap(), epoch in 0u64..100) {
        let rq = RemainderQuery {
            spec: QuerySpec::Join { dist: 0.01 },
            already_found: 0,
            heap,
        };
        let per_entry: u64 = rq
            .heap
            .iter()
            .map(|(_, e)| match e {
                HeapEntry::Single(_) => HEAP_ENTRY_BYTES,
                HeapEntry::Pair(..) => HEAP_PAIR_BYTES,
            })
            .sum();
        prop_assert_eq!(
            Request::Remainder(rq.clone()).wire_bytes(),
            QUERY_DESC_BYTES + per_entry
        );
        prop_assert_eq!(
            Request::RemainderVersioned { query: rq, epoch }.wire_bytes(),
            QUERY_DESC_BYTES + per_entry + EPOCH_BYTES
        );
    }

    #[test]
    fn response_envelope_wire_bytes_sum_their_parts(
        reply in arb_reply(),
        n_invalidate in 0usize..12,
        epoch in 0u64..100,
    ) {
        let parts = reply.confirmed.len() as u64 * CONFIRM_BYTES
            + reply
                .objects
                .iter()
                .map(|o| OBJECT_HEADER_BYTES + o.size_bytes as u64)
                .sum::<u64>()
            + reply.pairs.len() as u64 * PAIR_BYTES
            + reply
                .index
                .iter()
                .map(|s| SHIPMENT_HEADER_BYTES + s.cells.len() as u64 * ENTRY_BYTES)
                .sum::<u64>();
        prop_assert_eq!(Response::Remainder(reply.clone()).wire_bytes(), parts);
        let invalidate: Vec<NodeId> = (0..n_invalidate).map(|i| NodeId(i as u32)).collect();
        prop_assert_eq!(
            Response::Versioned(VersionedReply::Fresh {
                reply,
                invalidate: invalidate.clone(),
                epoch,
            })
            .wire_bytes(),
            parts + n_invalidate as u64 * INVALIDATION_BYTES + EPOCH_BYTES
        );
        prop_assert_eq!(
            Response::Versioned(VersionedReply::Stale { invalidate, epoch }).wire_bytes(),
            n_invalidate as u64 * INVALIDATION_BYTES + EPOCH_BYTES
        );
    }
}
