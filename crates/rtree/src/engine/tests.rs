//! Engine correctness: the generic processor must agree with the plain
//! recursive algorithms and the brute-force oracle on a full view, and the
//! two-stage client/server pipeline (partial view → remainder → resume)
//! must reconstruct exactly the direct answer for every query type.

use super::*;
use crate::bpt::BptStore;
use crate::naive;
use crate::query;
use crate::tree::{RTree, RTreeConfig};
use crate::view::FullView;
use crate::{ObjectStore, SpatialObject};
use pc_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, seed: u64) -> (ObjectStore, RTree, BptStore) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let objects: Vec<SpatialObject> = (0..n)
        .map(|i| {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let w: f64 = rng.random_range(0.0..0.02);
            let h: f64 = rng.random_range(0.0..0.02);
            SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                size_bytes: 100,
            }
        })
        .collect();
    let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
    let bpts = BptStore::build(&tree);
    (ObjectStore::new(objects), tree, bpts)
}

/// A partial view for tests: only `visible` nodes expand; objects report
/// the `cached` flag from `have_objects`. This mimics the client cache
/// without depending on the cache crate.
struct PartialView<'a> {
    full: FullView<'a>,
    visible: std::collections::HashSet<NodeId>,
    have_objects: std::collections::HashSet<ObjectId>,
}

impl IndexView for PartialView<'_> {
    fn root(&self) -> Option<(Rect, CellRef)> {
        self.full.root()
    }

    fn expand(&self, cell: CellRef) -> Expansion {
        if !self.visible.contains(&cell.node) {
            return Expansion::Missing;
        }
        match self.full.expand(cell) {
            Expansion::Children(children) => Expansion::Children(
                children
                    .into_iter()
                    .map(|c| CellChild {
                        mbr: c.mbr,
                        target: match c.target {
                            Target::Object { id, .. } => Target::Object {
                                id,
                                cached: self.have_objects.contains(&id),
                            },
                            t => t,
                        },
                    })
                    .collect(),
            ),
            m => m,
        }
    }

    fn authoritative(&self) -> bool {
        false
    }
}

fn random_partial<'a>(
    tree: &'a RTree,
    bpts: &'a BptStore,
    store: &ObjectStore,
    frac_nodes: f64,
    frac_objs: f64,
    rng: &mut SmallRng,
) -> PartialView<'a> {
    let visible = tree
        .node_ids()
        .into_iter()
        .filter(|_| rng.random_bool(frac_nodes))
        .collect();
    let have_objects = store
        .iter()
        .filter(|_| rng.random_bool(frac_objs))
        .map(|o| o.id)
        .collect();
    PartialView {
        full: FullView::new(tree, bpts),
        visible,
        have_objects,
    }
}

// -------------------------------------------------------------------
// Full-view equivalence
// -------------------------------------------------------------------

#[test]
fn full_view_range_matches_plain_and_naive() {
    let (store, tree, bpts) = dataset(300, 10);
    let view = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..40 {
        let w = Rect::centered_square(
            Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
            rng.random_range(0.01..0.4),
        );
        let spec = QuerySpec::Range { window: w };
        let out = execute(&view, &spec, &mut NoopTracer);
        assert!(out.remainder.is_none(), "authoritative view cannot miss");
        let mut got: Vec<ObjectId> = out.results.iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        let mut plain = query::range_query(&tree, &w);
        plain.sort_unstable();
        assert_eq!(got, plain);
        assert_eq!(got, naive::range_naive(&store, &w));
    }
}

#[test]
fn full_view_knn_matches_naive() {
    let (store, tree, bpts) = dataset(250, 11);
    let view = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..40 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let k = rng.random_range(1..10u32);
        let spec = QuerySpec::Knn { center: p, k };
        let out = execute(&view, &spec, &mut NoopTracer);
        assert!(out.remainder.is_none());
        let want = naive::knn_naive(&store, &p, k as usize);
        assert_eq!(out.results.len(), want.len());
        for ((id, _), (_, wd)) in out.results.iter().zip(&want) {
            let d = store.get(*id).mbr.min_dist(&p);
            assert!((d - wd).abs() < 1e-12, "distance mismatch at {id}");
        }
    }
}

#[test]
fn full_view_join_matches_naive() {
    let (store, tree, bpts) = dataset(120, 12);
    let view = FullView::new(&tree, &bpts);
    for dist in [0.0, 0.02, 0.08] {
        let spec = QuerySpec::Join { dist };
        let out = execute(&view, &spec, &mut NoopTracer);
        assert!(out.remainder.is_none());
        let mut got = out.result_pairs.clone();
        got.sort_unstable();
        assert_eq!(got, naive::join_naive(&store, dist), "dist {dist}");
    }
}

#[test]
fn knn_results_pop_in_distance_order() {
    let (store, tree, bpts) = dataset(200, 13);
    let view = FullView::new(&tree, &bpts);
    let p = Point::new(0.4, 0.6);
    let out = execute(&view, &QuerySpec::Knn { center: p, k: 20 }, &mut NoopTracer);
    let dists: Vec<f64> = out
        .results
        .iter()
        .map(|(id, _)| store.get(*id).mbr.min_dist(&p))
        .collect();
    for w in dists.windows(2) {
        assert!(w[0] <= w[1] + 1e-12);
    }
}

#[test]
fn empty_tree_yields_empty_outcomes() {
    let tree = RTree::new(RTreeConfig::small());
    let bpts = BptStore::build(&tree);
    let view = FullView::new(&tree, &bpts);
    for spec in [
        QuerySpec::Range { window: Rect::UNIT },
        QuerySpec::Knn {
            center: Point::ORIGIN,
            k: 3,
        },
        QuerySpec::Join { dist: 0.5 },
    ] {
        let out = execute(&view, &spec, &mut NoopTracer);
        assert!(out.results.is_empty());
        assert!(out.result_pairs.is_empty());
        assert!(out.remainder.is_none());
    }
}

// -------------------------------------------------------------------
// Two-stage pipeline equivalence (the core §3.2/§3.3 invariant)
// -------------------------------------------------------------------

/// Runs a query through a partial view, resumes the remainder on the full
/// view, and returns the union of confirmed results plus server pairs.
fn two_stage(
    partial: &PartialView<'_>,
    full: &FullView<'_>,
    spec: &QuerySpec,
) -> (Vec<ObjectId>, Vec<(ObjectId, ObjectId)>) {
    let local = execute(partial, spec, &mut NoopTracer);
    let mut ids: Vec<ObjectId> = local.results.iter().map(|(id, _)| *id).collect();
    let mut pairs = local.result_pairs.clone();
    if let Some(rq) = &local.remainder {
        let remote = resume(full, rq, &mut NoopTracer);
        assert!(remote.remainder.is_none(), "server must finish");
        ids.extend(remote.results.iter().map(|(id, _)| *id));
        pairs.extend(remote.result_pairs.iter().copied());
    }
    ids.sort_unstable();
    ids.dedup();
    pairs.sort_unstable();
    pairs.dedup();
    (ids, pairs)
}

#[test]
fn two_stage_range_equals_direct() {
    let (store, tree, bpts) = dataset(300, 20);
    let full = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(21);
    for round in 0..60 {
        let partial = random_partial(&tree, &bpts, &store, 0.5, 0.4, &mut rng);
        let w = Rect::centered_square(
            Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
            rng.random_range(0.02..0.35),
        );
        let spec = QuerySpec::Range { window: w };
        let (ids, _) = two_stage(&partial, &full, &spec);
        assert_eq!(ids, naive::range_naive(&store, &w), "round {round}");
    }
}

#[test]
fn two_stage_knn_equals_direct() {
    let (store, tree, bpts) = dataset(300, 22);
    let full = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(23);
    for round in 0..60 {
        let partial = random_partial(&tree, &bpts, &store, 0.6, 0.5, &mut rng);
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let k = rng.random_range(1..9u32);
        let spec = QuerySpec::Knn { center: p, k };
        let (ids, _) = two_stage(&partial, &full, &spec);
        let want = naive::knn_naive(&store, &p, k as usize);
        assert_eq!(ids.len(), want.len(), "round {round}");
        // Compare distance multisets (ties may swap ids between stages).
        let mut got_d: Vec<f64> = ids
            .iter()
            .map(|id| store.get(*id).mbr.min_dist(&p))
            .collect();
        got_d.sort_by(f64::total_cmp);
        for (g, (_, wd)) in got_d.iter().zip(&want) {
            assert!((g - wd).abs() < 1e-12, "round {round}");
        }
    }
}

#[test]
fn two_stage_join_equals_direct() {
    let (store, tree, bpts) = dataset(150, 24);
    let full = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(25);
    for round in 0..25 {
        let partial = random_partial(&tree, &bpts, &store, 0.55, 0.5, &mut rng);
        let dist = rng.random_range(0.0..0.08);
        let spec = QuerySpec::Join { dist };
        let (_, pairs) = two_stage(&partial, &full, &spec);
        assert_eq!(pairs, naive::join_naive(&store, dist), "round {round}");
    }
}

#[test]
fn cold_cache_sends_everything_to_server() {
    let (store, tree, bpts) = dataset(100, 26);
    let full = FullView::new(&tree, &bpts);
    let partial = PartialView {
        full: FullView::new(&tree, &bpts),
        visible: Default::default(),
        have_objects: Default::default(),
    };
    let w = Rect::centered_square(Point::new(0.5, 0.5), 0.4);
    let spec = QuerySpec::Range { window: w };
    let local = execute(&partial, &spec, &mut NoopTracer);
    assert!(local.results.is_empty());
    let rq = local
        .remainder
        .expect("cold cache must produce a remainder");
    assert_eq!(rq.heap.len(), 1, "only the root entry");
    let remote = resume(&full, &rq, &mut NoopTracer);
    let mut ids: Vec<ObjectId> = remote.results.iter().map(|(i, _)| *i).collect();
    ids.sort_unstable();
    assert_eq!(ids, naive::range_naive(&store, &w));
}

#[test]
fn fully_cached_view_answers_locally() {
    let (store, tree, bpts) = dataset(150, 27);
    let partial = PartialView {
        full: FullView::new(&tree, &bpts),
        visible: tree.node_ids().into_iter().collect(),
        have_objects: store.iter().map(|o| o.id).collect(),
    };
    let w = Rect::centered_square(Point::new(0.3, 0.3), 0.2);
    let out = execute(&partial, &QuerySpec::Range { window: w }, &mut NoopTracer);
    assert!(out.remainder.is_none(), "everything cached, nothing to ask");
    let mut ids: Vec<ObjectId> = out.results.iter().map(|(i, _)| *i).collect();
    ids.sort_unstable();
    assert_eq!(ids, naive::range_naive(&store, &w));
}

#[test]
fn knn_blocked_objects_are_confirmed_without_retransmission() {
    // Blocked objects travel in H as present (cached=true) leaf entries;
    // when the server confirms them as results it must preserve the flag so
    // no payload is retransmitted (Example 3.1 / Example 1.3).
    let (store, tree, bpts) = dataset(200, 28);
    let full = FullView::new(&tree, &bpts);
    let mut rng = SmallRng::seed_from_u64(29);
    let mut confirmed_without_bytes = 0usize;
    for _ in 0..40 {
        let mut visible: std::collections::HashSet<NodeId> = tree.node_ids().into_iter().collect();
        let ids = tree.node_ids();
        let victim = ids[rng.random_range(1..ids.len())];
        visible.remove(&victim);
        let partial = PartialView {
            full: FullView::new(&tree, &bpts),
            visible,
            have_objects: store.iter().map(|o| o.id).collect(),
        };
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let spec = QuerySpec::Knn { center: p, k: 5 };
        let local = execute(&partial, &spec, &mut NoopTracer);
        if let Some(rq) = &local.remainder {
            let cached_in_heap: std::collections::HashSet<ObjectId> = rq
                .heap
                .iter()
                .filter_map(|(_, e)| match e {
                    HeapEntry::Single(Side::Obj {
                        id, cached: true, ..
                    }) => Some(*id),
                    _ => None,
                })
                .collect();
            let remote = resume(&full, rq, &mut NoopTracer);
            for &(id, cached) in &remote.results {
                if cached_in_heap.contains(&id) {
                    assert!(cached, "blocked object {id} needlessly retransmitted");
                    confirmed_without_bytes += 1;
                }
            }
        }
    }
    assert!(
        confirmed_without_bytes > 0,
        "blocked-confirmation path never exercised"
    );
}

#[test]
fn knn_remainder_is_pruned_after_kth_leaf() {
    let (store, tree, bpts) = dataset(400, 30);
    let mut rng = SmallRng::seed_from_u64(31);
    let mut saw_pruned = false;
    for _ in 0..40 {
        let partial = random_partial(&tree, &bpts, &store, 0.7, 0.6, &mut rng);
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let spec = QuerySpec::Knn { center: p, k: 4 };
        let out = execute(&partial, &spec, &mut NoopTracer);
        if let Some(rq) = &out.remainder {
            let leaf_keys: Vec<f64> = rq
                .heap
                .iter()
                .filter(|(_, e)| e.is_leaf())
                .map(|(k, _)| *k)
                .collect();
            let need = 4usize.saturating_sub(rq.already_found as usize);
            if leaf_keys.len() >= need && need > 0 {
                let mut sorted = leaf_keys.clone();
                sorted.sort_by(f64::total_cmp);
                let cutoff = sorted[need - 1];
                for (k, _) in &rq.heap {
                    assert!(*k <= cutoff + 1e-12, "unpruned entry beyond cutoff");
                }
                saw_pruned = true;
            }
        }
    }
    assert!(saw_pruned, "pruning path never exercised");
}

// -------------------------------------------------------------------
// Access log / compact-form frontier properties
// -------------------------------------------------------------------

#[test]
fn access_log_frontier_is_an_antichain_covering_touched_nodes() {
    let (_, tree, bpts) = dataset(300, 40);
    let view = FullView::new(&tree, &bpts);
    let mut log = AccessLog::default();
    let spec = QuerySpec::Knn {
        center: Point::new(0.5, 0.5),
        k: 7,
    };
    let _ = execute(&view, &spec, &mut log);
    assert!(!log.shipped_nodes().is_empty());
    for node in log.shipped_nodes() {
        let frontier = log.frontier(node);
        assert!(!frontier.is_empty(), "{node} shipped but empty frontier");
        for i in 0..frontier.len() {
            for j in 0..frontier.len() {
                if i != j {
                    assert!(
                        !frontier[i].is_prefix_of(frontier[j]),
                        "{node}: frontier not an antichain"
                    );
                }
            }
        }
    }
}

#[test]
fn expansion_count_bounded_by_twice_plain_node_accesses() {
    // §4.2: "the new algorithm in the worst case … doubles the processing
    // time" — BPT navigation at most doubles the per-node work. We verify
    // the engine's expansion count against the plain recursion's node
    // accesses with a generous structural bound.
    let (_, tree, bpts) = dataset(500, 41);
    let view = FullView::new(&tree, &bpts);
    let w = Rect::centered_square(Point::new(0.5, 0.5), 0.3);
    let out = execute(&view, &QuerySpec::Range { window: w }, &mut NoopTracer);
    // Plain node accesses: count nodes whose MBR intersects the window.
    let plain_nodes = tree
        .node_ids()
        .iter()
        .filter(|&&n| {
            tree.node(n)
                .mbr()
                .map(|m| m.intersects(&w))
                .unwrap_or(false)
        })
        .count() as u64;
    // Each accessed node contributes ≤ 2N-1 BPT cells vs N entries plainly:
    // expansions ≤ 2 * (total entries in accessed nodes) is implied by
    // ≤ (2 * max_fan) per node.
    let bound = plain_nodes * 2 * tree.config().max_entries as u64 + 2;
    assert!(
        out.expansions <= bound,
        "expansions {} exceed bound {bound}",
        out.expansions
    );
}
