//! The generic spatial query processor of §3.3 (paper Algorithm 1).
//!
//! One best-first loop evaluates range, kNN and distance self-join queries
//! over *any* [`IndexView`]:
//!
//! * the **server** runs it over [`crate::view::FullView`] (authoritative —
//!   nothing is ever missing), both for fresh queries and to *resume*
//!   remainder queries from the shipped heap `H`;
//! * the **proactive client** runs it over its cache view, where expanding
//!   an absent cell yields [`Expansion::Missing`]; missing entries are set
//!   aside (the paper "pushes them back to `H`" and skips them) and, when
//!   the query cannot finish locally, the whole execution state is
//!   serialized into a [`RemainderQuery`].
//!
//! The kNN subtleties of §3.3 are implemented exactly: a popped object is
//! *blocked* (not confirmed) if a missing non-leaf entry with a smaller or
//! equal key is pending; termination uses `m + n = k` where `n` counts
//! blocked and missing leaf entries; and the remainder heap is pruned after
//! the current k-th leaf entry (Example 3.1).

use crate::proto::{pair_key, CellRef, HeapEntry, QuerySpec, RemainderQuery, Side};
use crate::{NodeId, ObjectId};
use pc_geom::Rect;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A child produced by expanding a cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellChild {
    pub mbr: Rect,
    pub target: Target,
}

/// What a cell child points at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Target {
    /// Another cell: a BPT sibling pair member, or a child node's root.
    Cell(CellRef),
    /// An object (leaf level); `cached` says whether the *client* holds its
    /// payload (authoritative views report `false`: the requester has not
    /// received it).
    Object { id: ObjectId, cached: bool },
}

/// Result of asking a view to expand a cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Expansion {
    Children(Vec<CellChild>),
    /// The view does not hold this cell's children — only possible for
    /// non-authoritative (cache) views.
    Missing,
}

/// A navigable picture of the index: complete on the server, partial on the
/// client.
pub trait IndexView {
    /// The tree's root cell and MBR (`None` for an empty tree). Clients
    /// know this from static catalog metadata even with a cold cache.
    fn root(&self) -> Option<(Rect, CellRef)>;

    /// Children of `cell` (both BPT children for a super entry; the single
    /// pointed-to node root or object for a full entry).
    fn expand(&self, cell: CellRef) -> Expansion;

    /// Authoritative views can always expand and always adjudicate results.
    fn authoritative(&self) -> bool;
}

/// Observer of engine activity, used for compact-form construction (server)
/// and cache hit accounting (client).
pub trait Tracer {
    /// `cell` was pushed into the traversal frontier.
    fn cell_touched(&mut self, _cell: CellRef) {}
    /// `cell` was expanded. `internal` distinguishes BPT super-entry
    /// expansions (two sibling cells) from full-entry expansions (descent
    /// into a child node or object).
    fn cell_expanded(&mut self, _cell: CellRef, _internal: bool) {}
    /// `id` was confirmed as a query result.
    fn object_confirmed(&mut self, _id: ObjectId) {}
}

/// Tracer that ignores everything.
pub struct NoopTracer;
impl Tracer for NoopTracer {}

/// Per-node access record collected by [`AccessLog`].
#[derive(Clone, Debug, Default)]
pub struct NodeAccess {
    /// Cells pushed into the frontier (the paper's "grey" cells).
    pub touched: HashSet<crate::bpt::Code>,
    /// Super entries that were expanded (their children became grey).
    pub expanded_internal: HashSet<crate::bpt::Code>,
    /// Whether any cell of this node was expanded at all — nodes without
    /// expansions contribute nothing new and are not shipped.
    pub any_expansion: bool,
}

/// Collects the access trace the server needs to build compact forms
/// (§4.2: the compact form is the frontier of the grey subtree) and the
/// client needs for cache hit statistics.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    pub nodes: HashMap<NodeId, NodeAccess>,
    pub confirmed: Vec<ObjectId>,
}

impl AccessLog {
    /// Resets the log for reuse, keeping the map's allocation — pairs with
    /// [`EngineScratch`] so a query loop re-traces without reallocating.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.confirmed.clear();
    }

    /// The covering-antichain frontier for one node: touched cells minus
    /// expanded super entries.
    pub fn frontier(&self, node: NodeId) -> Vec<crate::bpt::Code> {
        let Some(acc) = self.nodes.get(&node) else {
            return Vec::new();
        };
        let mut out: Vec<crate::bpt::Code> = acc
            .touched
            .difference(&acc.expanded_internal)
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Nodes that had at least one expansion, i.e. the "accessed R-tree
    /// nodes" whose supporting index must be shipped (§3.2).
    pub fn shipped_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, a)| a.any_expansion)
            .map(|(&n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }
}

impl Tracer for AccessLog {
    fn cell_touched(&mut self, cell: CellRef) {
        self.nodes
            .entry(cell.node)
            .or_default()
            .touched
            .insert(cell.code);
    }

    fn cell_expanded(&mut self, cell: CellRef, internal: bool) {
        let acc = self.nodes.entry(cell.node).or_default();
        acc.any_expansion = true;
        if internal {
            acc.expanded_internal.insert(cell.code);
        }
    }

    fn object_confirmed(&mut self, id: ObjectId) {
        self.confirmed.push(id);
    }
}

/// Everything the engine produced for one query.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Confirmed result objects in confirmation (pop) order, with the
    /// client-cached flag (`true` ⇒ no payload transmission needed).
    pub results: Vec<(ObjectId, bool)>,
    /// Join result pairs, canonical (`small id, large id`) order.
    pub result_pairs: Vec<(ObjectId, ObjectId)>,
    /// The remainder query, when the view could not finish locally.
    pub remainder: Option<RemainderQuery>,
    /// Number of cell expansions (CPU accounting; §4.2's "at most doubles
    /// the processing" claim is measured on this).
    pub expansions: u64,
}

// ---------------------------------------------------------------------
// Priority queue plumbing
// ---------------------------------------------------------------------

#[derive(Clone)]
struct PqItem<T> {
    key: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for PqItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for PqItem<T> {}
impl<T> PartialOrd for PqItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PqItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest
        // (key, seq) so traversal is deterministic best-first.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Reusable engine buffers: the best-first priority queues and the
/// missing/blocked staging vectors of Algorithm 1. One per query session —
/// [`execute_with`]/[`resume_with`] clear and refill it, so a steady-state
/// loop (a fleet client issuing thousands of cache-complete queries)
/// allocates only its result vector per query. Queries that end in a
/// remainder hand their staging buffers to the [`RemainderQuery`] (the
/// remainder is serialized for the wire anyway, so that path allocates
/// regardless).
#[derive(Clone, Default)]
pub struct EngineScratch {
    single_pq: BinaryHeap<PqItem<Side>>,
    join_pq: BinaryHeap<PqItem<(Side, Side)>>,
    missing: Vec<(f64, Side)>,
    blocked: Vec<(f64, Side)>,
    join_missing: Vec<(f64, HeapEntry)>,
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("single_pq_cap", &self.single_pq.capacity())
            .field("join_pq_cap", &self.join_pq.capacity())
            .finish_non_exhaustive()
    }
}

/// Runs a fresh query from the root.
pub fn execute<V: IndexView, T: Tracer>(view: &V, spec: &QuerySpec, tracer: &mut T) -> Outcome {
    execute_with(view, spec, tracer, &mut EngineScratch::default())
}

/// [`execute`] with caller-owned [`EngineScratch`] buffers.
pub fn execute_with<V: IndexView, T: Tracer>(
    view: &V,
    spec: &QuerySpec,
    tracer: &mut T,
    scratch: &mut EngineScratch,
) -> Outcome {
    if spec.is_join() {
        run_join(view, spec, None, tracer, scratch)
    } else {
        run_single(view, spec, None, tracer, scratch)
    }
}

/// Resumes a remainder query from its shipped heap (server side of §3.2
/// stage 2; also usable by a client that re-runs after a cache refill).
pub fn resume<V: IndexView, T: Tracer>(view: &V, rq: &RemainderQuery, tracer: &mut T) -> Outcome {
    resume_with(view, rq, tracer, &mut EngineScratch::default())
}

/// [`resume`] with caller-owned [`EngineScratch`] buffers.
pub fn resume_with<V: IndexView, T: Tracer>(
    view: &V,
    rq: &RemainderQuery,
    tracer: &mut T,
    scratch: &mut EngineScratch,
) -> Outcome {
    if rq.spec.is_join() {
        run_join(view, &rq.spec, Some(rq), tracer, scratch)
    } else {
        run_single(view, &rq.spec, Some(rq), tracer, scratch)
    }
}

// ---------------------------------------------------------------------
// Range / kNN
// ---------------------------------------------------------------------

fn run_single<V: IndexView, T: Tracer>(
    view: &V,
    spec: &QuerySpec,
    resume_from: Option<&RemainderQuery>,
    tracer: &mut T,
    scratch: &mut EngineScratch,
) -> Outcome {
    let pq = &mut scratch.single_pq;
    pq.clear();
    scratch.missing.clear();
    scratch.blocked.clear();
    let mut seq = 0u64;
    let m0 = resume_from.map(|r| r.already_found as usize).unwrap_or(0);
    let k_target = match spec {
        QuerySpec::Knn { k, .. } => Some(*k as usize),
        _ => None,
    };

    match resume_from {
        None => {
            if let Some((mbr, cell)) = view.root() {
                if spec.qualifies(&mbr) {
                    tracer.cell_touched(cell);
                    pq.push(PqItem {
                        key: spec.key_for(&mbr),
                        seq: post_inc(&mut seq),
                        payload: Side::Cell { cell, mbr },
                    });
                }
            }
        }
        Some(rq) => {
            for (key, he) in &rq.heap {
                let HeapEntry::Single(side) = he else {
                    debug_assert!(false, "pair entry in a non-join remainder");
                    continue;
                };
                if let Side::Cell { cell, .. } = side {
                    tracer.cell_touched(*cell);
                }
                pq.push(PqItem {
                    key: *key,
                    seq: post_inc(&mut seq),
                    payload: *side,
                });
            }
        }
    }

    let mut results: Vec<(ObjectId, bool)> = Vec::new();
    let missing = &mut scratch.missing;
    let blocked = &mut scratch.blocked;
    let mut missing_leaf_count = 0usize;
    let mut min_missing_cell_key = f64::INFINITY;
    let mut expansions = 0u64;

    loop {
        // Termination condition (paper §3.3): for kNN, m + n = k where n
        // counts blocked and missing leaf entries; range queries run until
        // the frontier is exhausted.
        if let Some(k) = k_target {
            if m0 + results.len() + blocked.len() + missing_leaf_count >= k {
                break;
            }
        }
        let Some(item) = pq.pop() else { break };
        let key = item.key;
        match item.payload {
            Side::Cell { cell, .. } => match view.expand(cell) {
                Expansion::Missing => {
                    debug_assert!(!view.authoritative());
                    min_missing_cell_key = min_missing_cell_key.min(key);
                    missing.push((key, item.payload));
                }
                Expansion::Children(children) => {
                    expansions += 1;
                    tracer.cell_expanded(cell, is_internal_expansion(cell, &children));
                    for c in children {
                        // Expanding a cell reads *both* children off the
                        // page, so both are grey (§4.2's CF includes the
                        // pushed-but-never-popped sibling); only qualifying
                        // ones enter the frontier. This also keeps every
                        // shipped form a covering antichain, which the
                        // client's view merge relies on.
                        if let Target::Cell(cc) = c.target {
                            tracer.cell_touched(cc);
                        }
                        if !spec.qualifies(&c.mbr) {
                            continue;
                        }
                        let side = match c.target {
                            Target::Cell(cc) => Side::Cell {
                                cell: cc,
                                mbr: c.mbr,
                            },
                            Target::Object { id, cached } => Side::Obj {
                                id,
                                mbr: c.mbr,
                                cached,
                            },
                        };
                        pq.push(PqItem {
                            key: spec.key_for(&c.mbr),
                            seq: post_inc(&mut seq),
                            payload: side,
                        });
                    }
                }
            },
            Side::Obj { id, cached, .. } => {
                if view.authoritative() {
                    // The server adjudicates every popped object; `cached`
                    // tells it whether payload transmission is needed.
                    results.push((id, cached));
                    tracer.object_confirmed(id);
                } else if !cached {
                    // Paper: a missing leaf entry — the payload must come
                    // from the server.
                    missing_leaf_count += 1;
                    missing.push((key, item.payload));
                } else if k_target.is_some() && min_missing_cell_key <= key {
                    // §3.3: "a leaf entry should be returned as a result
                    // only if there is no missing non-leaf entry prior to
                    // it in H."
                    blocked.push((key, item.payload));
                } else {
                    results.push((id, true));
                    tracer.object_confirmed(id);
                }
            }
        }
    }

    let found = m0 + results.len();
    let needs_remainder = !missing.is_empty() || !blocked.is_empty();
    let remainder = needs_remainder.then(|| {
        let mut heap: Vec<(f64, HeapEntry)> = Vec::with_capacity(missing.len() + blocked.len());
        heap.extend(missing.drain(..).map(|(k, s)| (k, HeapEntry::Single(s))));
        heap.extend(blocked.drain(..).map(|(k, s)| (k, HeapEntry::Single(s))));
        while let Some(item) = pq.pop() {
            heap.push((item.key, HeapEntry::Single(item.payload)));
        }
        if let Some(k) = k_target {
            prune_after_kth_leaf(&mut heap, k.saturating_sub(found));
        }
        RemainderQuery {
            spec: *spec,
            already_found: found as u32,
            heap,
        }
    });
    // kNN can terminate with frontier left over; drop it so the next query
    // through this scratch starts clean.
    pq.clear();

    Outcome {
        results,
        result_pairs: Vec::new(),
        remainder,
        expansions,
    }
}

/// Example 3.1's pruning: entries ranked after the current k-th leaf entry
/// cannot contain anything closer than the k-th candidate, so they are
/// dropped from the remainder ("entries d and a are pruned").
fn prune_after_kth_leaf(heap: &mut Vec<(f64, HeapEntry)>, need: usize) {
    if need == 0 {
        return;
    }
    let mut leaf_keys: Vec<f64> = heap
        .iter()
        .filter(|(_, e)| e.is_leaf())
        .map(|(k, _)| *k)
        .collect();
    if leaf_keys.len() < need {
        return;
    }
    leaf_keys.sort_by(f64::total_cmp);
    let cutoff = leaf_keys[need - 1];
    heap.retain(|(k, _)| *k <= cutoff);
}

/// An expansion is "internal" (super entry → two sibling cells) iff its
/// children live in the same node; full-entry expansions descend to a child
/// node or an object.
fn is_internal_expansion(cell: CellRef, children: &[CellChild]) -> bool {
    children.iter().any(|c| match c.target {
        Target::Cell(cc) => cc.node == cell.node,
        Target::Object { .. } => false,
    })
}

fn post_inc(x: &mut u64) -> u64 {
    let v = *x;
    *x += 1;
    v
}

// ---------------------------------------------------------------------
// Distance self-join
// ---------------------------------------------------------------------

fn run_join<V: IndexView, T: Tracer>(
    view: &V,
    spec: &QuerySpec,
    resume_from: Option<&RemainderQuery>,
    tracer: &mut T,
    scratch: &mut EngineScratch,
) -> Outcome {
    let QuerySpec::Join { dist } = *spec else {
        unreachable!("run_join requires a join spec")
    };

    let pq = &mut scratch.join_pq;
    pq.clear();
    scratch.join_missing.clear();
    let mut seq = 0u64;

    match resume_from {
        None => {
            if let Some((mbr, cell)) = view.root() {
                tracer.cell_touched(cell);
                let side = Side::Cell { cell, mbr };
                pq.push(PqItem {
                    key: 0.0,
                    seq: post_inc(&mut seq),
                    payload: (side, side),
                });
            }
        }
        Some(rq) => {
            for (key, he) in &rq.heap {
                let HeapEntry::Pair(a, b) = he else {
                    debug_assert!(false, "single entry in a join remainder");
                    continue;
                };
                for s in [a, b] {
                    if let Side::Cell { cell, .. } = s {
                        tracer.cell_touched(*cell);
                    }
                }
                pq.push(PqItem {
                    key: *key,
                    seq: post_inc(&mut seq),
                    payload: (*a, *b),
                });
            }
        }
    }

    let mut pair_set: HashSet<(ObjectId, ObjectId)> = HashSet::new();
    let mut result_pairs: Vec<(ObjectId, ObjectId)> = Vec::new();
    let mut obj_flags: HashMap<ObjectId, bool> = HashMap::new();
    let mut obj_order: Vec<ObjectId> = Vec::new();
    let missing = &mut scratch.join_missing;
    let mut expansions = 0u64;

    while let Some(item) = pq.pop() {
        let key = item.key;
        let (a, b) = item.payload;
        match (a, b) {
            (
                Side::Obj {
                    id: ia, cached: ca, ..
                },
                Side::Obj {
                    id: ib, cached: cb, ..
                },
            ) => {
                if ia == ib {
                    continue; // a distance self-join excludes self pairs
                }
                if view.authoritative() || (ca && cb) {
                    let pair = canonical(ia, ib);
                    if pair_set.insert(pair) {
                        result_pairs.push(pair);
                        for (id, cached) in [(ia, ca), (ib, cb)] {
                            if let std::collections::hash_map::Entry::Vacant(v) =
                                obj_flags.entry(id)
                            {
                                v.insert(cached);
                                obj_order.push(id);
                                tracer.object_confirmed(id);
                            }
                        }
                    }
                } else {
                    // One of the payloads is absent: the pair becomes a
                    // missing entry pair (paper footnote 3).
                    missing.push((key, HeapEntry::Pair(a, b)));
                }
            }
            _ => {
                let same_cell = matches!((&a, &b), (
                    Side::Cell { cell: c1, .. },
                    Side::Cell { cell: c2, .. },
                ) if c1 == c2);

                let exp_a = expand_side(view, &a, tracer, &mut expansions);
                let exp_b = if same_cell {
                    exp_a.clone()
                } else {
                    expand_side(view, &b, tracer, &mut expansions)
                };
                let (Some(ka), Some(kb)) = (exp_a, exp_b) else {
                    missing.push((key, HeapEntry::Pair(a, b)));
                    continue;
                };

                for (i, &sa) in ka.iter().enumerate() {
                    // Self pairs are generated once (i ≤ j) to avoid the
                    // mirror duplicates of a self-join (classic RJ rule).
                    let j_start = if same_cell { i } else { 0 };
                    for (j, &sb) in kb.iter().enumerate().skip(j_start) {
                        if same_cell && i == j && sa.is_obj() {
                            continue; // identical object: self pair
                        }
                        let k = pair_key(&sa.mbr(), &sb.mbr());
                        if k <= dist {
                            pq.push(PqItem {
                                key: k,
                                seq: post_inc(&mut seq),
                                payload: (sa, sb),
                            });
                        }
                    }
                }
            }
        }
    }

    let remainder = (!missing.is_empty()).then(|| RemainderQuery {
        spec: *spec,
        already_found: 0,
        heap: std::mem::take(missing),
    });

    Outcome {
        results: obj_order.iter().map(|id| (*id, obj_flags[id])).collect(),
        result_pairs,
        remainder,
        expansions,
    }
}

/// Expands one side of a join pair into frontier sides; `None` ⇒ missing.
fn expand_side<V: IndexView, T: Tracer>(
    view: &V,
    side: &Side,
    tracer: &mut T,
    expansions: &mut u64,
) -> Option<Vec<Side>> {
    match side {
        Side::Obj { .. } => Some(vec![*side]),
        Side::Cell { cell, .. } => match view.expand(*cell) {
            Expansion::Missing => None,
            Expansion::Children(children) => {
                *expansions += 1;
                tracer.cell_expanded(*cell, is_internal_expansion(*cell, &children));
                Some(
                    children
                        .into_iter()
                        .map(|c| match c.target {
                            Target::Cell(cc) => {
                                // Both children are grey once the page is
                                // read — see the range-query comment in
                                // `run_single`.
                                tracer.cell_touched(cc);
                                Side::Cell {
                                    cell: cc,
                                    mbr: c.mbr,
                                }
                            }
                            Target::Object { id, cached } => Side::Obj {
                                id,
                                mbr: c.mbr,
                                cached,
                            },
                        })
                        .collect(),
                )
            }
        },
    }
}

fn canonical(a: ObjectId, b: ObjectId) -> (ObjectId, ObjectId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests;
