//! The R*-tree: page-oriented, with STR bulk loading for dataset
//! construction and full R* dynamic insertion (ChooseSubtree with the
//! overlap criterion, forced re-insert, R* split) for incremental use.

use crate::split::rstar_split;
use crate::{ChildRef, Entry, Node, NodeId, SpatialObject};
use pc_geom::Rect;
use std::sync::Arc;

/// Fan-out configuration. The defaults mirror the paper's setup: R*-tree
/// with a 4 KB page capacity and 40-byte entries (32-byte MBR + 8-byte
/// pointer), i.e. a maximum fan-out of ~102 and the customary 40 % minimum
/// fill.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    pub max_entries: usize,
    pub min_entries: usize,
    /// Entries removed by forced re-insert on the first overflow of a level
    /// (R* recommends 30 % of the maximum fan-out).
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Paper-scale configuration (4 KB pages).
    pub fn paper() -> Self {
        let max = (crate::proto::PAGE_BYTES - crate::proto::NODE_HEADER_BYTES) as usize
            / crate::proto::ENTRY_BYTES as usize;
        RTreeConfig {
            max_entries: max,
            min_entries: max * 2 / 5,
            reinsert_count: max * 3 / 10,
        }
    }

    /// Small fan-out for tests — forces deep trees on small datasets so the
    /// structural machinery (splits, re-inserts, BPTs) is exercised.
    pub fn small() -> Self {
        RTreeConfig {
            max_entries: 8,
            min_entries: 3,
            reinsert_count: 2,
        }
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig::paper()
    }
}

/// Index statistics for the §6.4 size report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    pub node_count: usize,
    pub leaf_count: usize,
    pub height: u16,
    pub object_count: usize,
    /// Disk footprint at one page per node (the paper's 3.8 MB / 18.5 MB).
    pub index_bytes: u64,
}

/// A two-dimensional R*-tree over [`SpatialObject`]s.
///
/// Node slots are `Arc`-per-node copy-on-write: cloning a tree clones only
/// the slab of pointers (refcount bumps), and a mutation after a clone
/// copies just the nodes it actually touches ([`Arc::make_mut`]), leaving
/// everything else structurally shared between the two trees. This is what
/// makes an epoch publish in `pc_server` cost O(batch · depth) node copies
/// instead of a deep clone of the whole index.
#[derive(Clone, Debug)]
pub struct RTree {
    cfg: RTreeConfig,
    nodes: Vec<Arc<Node>>,
    root: NodeId,
    /// Number of levels; the root sits at `height - 1`, leaves at 0.
    height: u16,
    object_count: usize,
    /// Nodes whose entry sets changed since the last [`RTree::take_dirty`]
    /// — the hook the update/invalidation subsystem builds on. Detached
    /// nodes are reported too (clients may still cache them).
    dirty: Vec<NodeId>,
}

impl RTree {
    /// An empty tree (a single empty leaf as root).
    pub fn new(cfg: RTreeConfig) -> Self {
        RTree {
            cfg,
            nodes: vec![Arc::new(Node {
                parent: None,
                level: 0,
                entries: Vec::new(),
            })],
            root: NodeId(0),
            height: 1,
            object_count: 0,
            dirty: Vec::new(),
        }
    }

    /// Bulk loads with Sort-Tile-Recursive packing — the standard way to
    /// build a static R-tree over a full dataset.
    pub fn bulk_load(cfg: RTreeConfig, objects: &[SpatialObject]) -> Self {
        if objects.is_empty() {
            return RTree::new(cfg);
        }
        let mut tree = RTree {
            cfg,
            nodes: Vec::new(),
            root: NodeId(0),
            height: 0,
            object_count: objects.len(),
            dirty: Vec::new(),
        };

        // Level 0.
        let leaf_items: Vec<(Rect, ChildRef)> = objects
            .iter()
            .map(|o| (o.mbr, ChildRef::Object(o.id)))
            .collect();
        let mut level_nodes = tree.str_pack(leaf_items, 0);
        let mut level = 0u16;

        while level_nodes.len() > 1 {
            level += 1;
            let items: Vec<(Rect, ChildRef)> = level_nodes
                .iter()
                .map(|&id| {
                    let mbr = tree.nodes[id.0 as usize]
                        .mbr()
                        .expect("packed node non-empty");
                    (mbr, ChildRef::Node(id))
                })
                .collect();
            level_nodes = tree.str_pack(items, level);
        }

        tree.root = level_nodes[0];
        tree.height = level + 1;
        // Fix parent pointers (str_pack fills children before parents).
        tree.rewire_parents();
        tree
    }

    /// Packs `items` into nodes of `cfg.max_entries` at `level`, returning
    /// the created node ids in tile order.
    fn str_pack(&mut self, mut items: Vec<(Rect, ChildRef)>, level: u16) -> Vec<NodeId> {
        let cap = self.cfg.max_entries;
        let n = items.len();
        let page_count = n.div_ceil(cap);
        let slab_count = (page_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slab_count);

        items.sort_by(|a, b| a.0.center().x.partial_cmp(&b.0.center().x).unwrap());

        let mut out = Vec::with_capacity(page_count);
        for slab in items.chunks_mut(slab_size.max(1)) {
            slab.sort_by(|a, b| a.0.center().y.partial_cmp(&b.0.center().y).unwrap());
            for tile in slab.chunks(cap) {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(Arc::new(Node {
                    parent: None,
                    level,
                    entries: tile
                        .iter()
                        .map(|&(mbr, child)| Entry { mbr, child })
                        .collect(),
                }));
                out.push(id);
            }
        }
        out
    }

    fn rewire_parents(&mut self) {
        let ids: Vec<NodeId> = (0..self.nodes.len() as u32).map(NodeId).collect();
        for id in ids {
            let children: Vec<NodeId> = self.nodes[id.0 as usize]
                .entries
                .iter()
                .filter_map(|e| match e.child {
                    ChildRef::Node(c) => Some(c),
                    ChildRef::Object(_) => None,
                })
                .collect();
            for c in children {
                self.node_mut(c).parent = Some(id);
            }
        }
        let root = self.root;
        self.node_mut(root).parent = None;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to one node slot, copying it first when the slot is
    /// shared with a cloned tree (the copy-on-write seam: everything that
    /// edits a node funnels through here).
    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        Arc::make_mut(&mut self.nodes[id.0 as usize])
    }

    /// Number of slab slots (reachable nodes plus detached husks) — the
    /// denominator for [`RTree::shared_node_slots`].
    pub fn slab_len(&self) -> usize {
        self.nodes.len()
    }

    /// How many node slots `self` physically shares with `other` (same
    /// `Arc` allocation at the same slot). A diagnostic for the
    /// structural-sharing guarantees: after cloning a tree and applying a
    /// small update batch, all but the touched spines stay shared.
    pub fn shared_node_slots(&self, other: &RTree) -> usize {
        self.nodes
            .iter()
            .zip(&other.nodes)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// MBR of the whole tree (`None` when empty).
    pub fn root_mbr(&self) -> Option<Rect> {
        self.node(self.root).mbr()
    }

    #[inline]
    pub fn height(&self) -> u16 {
        self.height
    }

    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.cfg
    }

    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// All node ids currently in the slab (bulk-loaded trees have no holes;
    /// dynamically grown trees keep superseded slots but they are never
    /// referenced — this iterator only yields reachable nodes).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for e in &self.node(id).entries {
                if let ChildRef::Node(c) = e.child {
                    stack.push(c);
                }
            }
        }
        out
    }

    pub fn stats(&self) -> TreeStats {
        let ids = self.node_ids();
        let leaf_count = ids.iter().filter(|&&id| self.node(id).is_leaf()).count();
        TreeStats {
            node_count: ids.len(),
            leaf_count,
            height: self.height,
            object_count: self.object_count,
            index_bytes: ids.len() as u64 * crate::proto::PAGE_BYTES,
        }
    }

    // ------------------------------------------------------------------
    // Change tracking (update/invalidation hook)
    // ------------------------------------------------------------------

    #[inline]
    fn mark_dirty(&mut self, id: NodeId) {
        self.dirty.push(id);
    }

    /// Drains the set of nodes whose entries changed since the last call
    /// (deduplicated, unordered). Bulk loading does not report dirt — the
    /// tree is brand new.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.dirty);
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // R* dynamic insertion
    // ------------------------------------------------------------------

    /// Inserts one object (R* insertion with forced re-insert).
    pub fn insert(&mut self, obj: &SpatialObject) {
        let entry = Entry {
            mbr: obj.mbr,
            child: ChildRef::Object(obj.id),
        };
        // One forced re-insert per level per data insertion (R* rule).
        let mut reinserted = vec![false; self.height as usize + 1];
        self.insert_at_level(entry, 0, &mut reinserted);
        self.object_count += 1;
    }

    fn insert_at_level(&mut self, entry: Entry, level: u16, reinserted: &mut Vec<bool>) {
        let target = self.choose_subtree(&entry.mbr, level);
        if let ChildRef::Node(c) = entry.child {
            self.node_mut(c).parent = Some(target);
        }
        self.node_mut(target).entries.push(entry);
        self.mark_dirty(target);
        self.adjust_upward(target);
        self.handle_overflow(target, reinserted);
    }

    /// Descends from the root to `target_level`, applying the R* criteria:
    /// minimal overlap enlargement when choosing among leaf children,
    /// minimal area enlargement otherwise.
    fn choose_subtree(&self, mbr: &Rect, target_level: u16) -> NodeId {
        let mut cur = self.root;
        while self.node(cur).level > target_level {
            let node = self.node(cur);
            let children_are_leaves = node.level == target_level + 1 && target_level == 0;
            let chosen = if children_are_leaves {
                self.choose_min_overlap(node, mbr)
            } else {
                self.choose_min_enlargement(node, mbr)
            };
            cur = chosen;
        }
        cur
    }

    fn choose_min_enlargement(&self, node: &Node, mbr: &Rect) -> NodeId {
        let mut best = (f64::INFINITY, f64::INFINITY, NodeId(u32::MAX));
        for e in &node.entries {
            let enl = e.mbr.enlargement(mbr);
            let area = e.mbr.area();
            if (enl, area) < (best.0, best.1) {
                if let ChildRef::Node(c) = e.child {
                    best = (enl, area, c);
                }
            }
        }
        best.2
    }

    /// R* "nearly minimum overlap": among the 32 entries with least area
    /// enlargement, pick the one whose overlap with its siblings grows
    /// least when absorbing `mbr`.
    fn choose_min_overlap(&self, node: &Node, mbr: &Rect) -> NodeId {
        const CANDIDATES: usize = 32;
        let mut idx: Vec<usize> = (0..node.entries.len()).collect();
        if idx.len() > CANDIDATES {
            idx.sort_by(|&a, &b| {
                node.entries[a]
                    .mbr
                    .enlargement(mbr)
                    .partial_cmp(&node.entries[b].mbr.enlargement(mbr))
                    .unwrap()
            });
            idx.truncate(CANDIDATES);
        }
        let mut best = (
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            NodeId(u32::MAX),
        );
        for &i in &idx {
            let cand = &node.entries[i];
            let grown = cand.mbr.union(mbr);
            let mut overlap_delta = 0.0;
            for (j, other) in node.entries.iter().enumerate() {
                if j == i {
                    continue;
                }
                overlap_delta += grown.overlap_area(&other.mbr) - cand.mbr.overlap_area(&other.mbr);
            }
            let enl = cand.mbr.enlargement(mbr);
            let area = cand.mbr.area();
            if (overlap_delta, enl, area) < (best.0, best.1, best.2) {
                if let ChildRef::Node(c) = cand.child {
                    best = (overlap_delta, enl, area, c);
                }
            }
        }
        best.3
    }

    fn handle_overflow(&mut self, mut id: NodeId, reinserted: &mut Vec<bool>) {
        loop {
            if self.node(id).entries.len() <= self.cfg.max_entries {
                return;
            }
            let level = self.node(id).level as usize;
            if level >= reinserted.len() {
                // The tree can grow mid-insertion (root splits during a
                // forced re-insert cascade); extend the per-level flags.
                reinserted.resize(level + 1, false);
            }
            let is_root = id == self.root;
            if !is_root && !reinserted[level] {
                reinserted[level] = true;
                self.forced_reinsert(id, reinserted);
                return; // re-insertion handled any cascading overflow
            }
            let parent = self.split_node(id);
            match parent {
                Some(p) => id = p,
                None => return, // split created a new root
            }
        }
    }

    /// Removes the `reinsert_count` entries farthest from the node's center
    /// and re-inserts them from the top (R* forced re-insert, far-first).
    fn forced_reinsert(&mut self, id: NodeId, reinserted: &mut Vec<bool>) {
        let center = self
            .node(id)
            .mbr()
            .expect("overflowing node non-empty")
            .center();
        let node = Arc::make_mut(&mut self.nodes[id.0 as usize]);
        node.entries.sort_by(|a, b| {
            // Descending distance: farthest first at the front.
            b.mbr
                .center()
                .dist(&center)
                .partial_cmp(&a.mbr.center().dist(&center))
                .unwrap()
        });
        let count = self
            .cfg
            .reinsert_count
            .min(node.entries.len() - self.cfg.min_entries);
        let removed: Vec<Entry> = node.entries.drain(..count).collect();
        let level = node.level;
        self.mark_dirty(id);
        self.adjust_upward(id);
        for e in removed {
            self.insert_at_level(e, level, reinserted);
        }
    }

    /// Splits an overflowing node; returns its parent (for cascade checks)
    /// or `None` when a new root was created.
    fn split_node(&mut self, id: NodeId) -> Option<NodeId> {
        let level = self.node(id).level;
        let entries = std::mem::take(&mut self.node_mut(id).entries);
        let rects: Vec<Rect> = entries.iter().map(|e| e.mbr).collect();
        let (left_idx, right_idx) = rstar_split(&rects, self.cfg.min_entries);

        let left_entries: Vec<Entry> = left_idx.iter().map(|&i| entries[i]).collect();
        let right_entries: Vec<Entry> = right_idx.iter().map(|&i| entries[i]).collect();

        self.node_mut(id).entries = left_entries;
        let sibling = NodeId(self.nodes.len() as u32);
        self.nodes.push(Arc::new(Node {
            parent: self.node(id).parent,
            level,
            entries: right_entries,
        }));
        // Children moved to the sibling need their parent pointer fixed.
        let moved: Vec<NodeId> = self.nodes[sibling.0 as usize]
            .entries
            .iter()
            .filter_map(|e| match e.child {
                ChildRef::Node(c) => Some(c),
                ChildRef::Object(_) => None,
            })
            .collect();
        for c in moved {
            self.node_mut(c).parent = Some(sibling);
        }

        self.mark_dirty(id);
        self.mark_dirty(sibling);
        let sibling_mbr = self.node(sibling).mbr().expect("split side non-empty");
        match self.node(id).parent {
            Some(p) => {
                self.refresh_parent_entry(id);
                self.node_mut(p).entries.push(Entry {
                    mbr: sibling_mbr,
                    child: ChildRef::Node(sibling),
                });
                self.mark_dirty(p);
                self.adjust_upward(p);
                Some(p)
            }
            None => {
                // Root split: grow the tree by one level.
                let old_root_mbr = self.node(id).mbr().expect("split side non-empty");
                let new_root = NodeId(self.nodes.len() as u32);
                self.nodes.push(Arc::new(Node {
                    parent: None,
                    level: level + 1,
                    entries: vec![
                        Entry {
                            mbr: old_root_mbr,
                            child: ChildRef::Node(id),
                        },
                        Entry {
                            mbr: sibling_mbr,
                            child: ChildRef::Node(sibling),
                        },
                    ],
                }));
                self.node_mut(id).parent = Some(new_root);
                self.node_mut(sibling).parent = Some(new_root);
                self.root = new_root;
                self.height += 1;
                self.mark_dirty(new_root);
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion (Guttman delete + condense)
    // ------------------------------------------------------------------

    /// Deletes one object entry; `mbr` guides the leaf search (it must be
    /// the MBR the object was inserted with). Returns `false` when the
    /// object is not in the tree.
    pub fn delete(&mut self, id: crate::ObjectId, mbr: &Rect) -> bool {
        let Some(leaf) = self.find_leaf(self.root, id, mbr) else {
            return false;
        };
        self.node_mut(leaf)
            .entries
            .retain(|e| e.child != ChildRef::Object(id));
        self.mark_dirty(leaf);
        self.object_count -= 1;
        self.condense(leaf);
        true
    }

    fn find_leaf(&self, node: NodeId, id: crate::ObjectId, mbr: &Rect) -> Option<NodeId> {
        let n = self.node(node);
        if n.is_leaf() {
            return n
                .entries
                .iter()
                .any(|e| e.child == ChildRef::Object(id))
                .then_some(node);
        }
        for e in &n.entries {
            if let ChildRef::Node(c) = e.child {
                if e.mbr.contains_rect(mbr) {
                    if let Some(found) = self.find_leaf(c, id, mbr) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }

    /// Guttman's CondenseTree: walk up from a shrunken node, detach
    /// under-full nodes, re-insert their orphaned entries at their levels,
    /// and cut a single-child non-leaf root.
    fn condense(&mut self, mut id: NodeId) {
        let mut orphans: Vec<(Entry, u16)> = Vec::new();
        while let Some(parent) = self.node(id).parent {
            if self.node(id).entries.len() < self.cfg.min_entries {
                // Detach `id`: its parent loses the entry, its own entries
                // queue for re-insertion at their original level.
                let level = self.node(id).level;
                let entries = std::mem::take(&mut self.node_mut(id).entries);
                orphans.extend(entries.into_iter().map(|e| (e, level)));
                self.node_mut(parent)
                    .entries
                    .retain(|e| e.child != ChildRef::Node(id));
                self.node_mut(id).parent = None;
                self.mark_dirty(id);
                self.mark_dirty(parent);
            } else {
                self.refresh_parent_entry(id);
            }
            id = parent;
        }
        // Re-insert orphans (children first: higher level values last so
        // the tree height is stable while leaves go back in).
        orphans.sort_by_key(|&(_, level)| level);
        let mut reinserted = vec![false; self.height as usize + 1];
        for (entry, level) in orphans {
            self.insert_at_level(entry, level, &mut reinserted);
        }
        // Shrink the root while it is a single-child internal node.
        while self.node(self.root).level > 0 && self.node(self.root).entries.len() == 1 {
            let old_root = self.root;
            let ChildRef::Node(child) = self.node(self.root).entries[0].child else {
                unreachable!("non-leaf root holds node entries")
            };
            self.node_mut(child).parent = None;
            self.root = child;
            self.height -= 1;
            self.node_mut(old_root).entries.clear();
            self.mark_dirty(old_root);
        }
    }

    /// Recomputes the MBR stored for `id` in its parent entry. Read-checks
    /// before taking the copy-on-write mutable path: an unchanged MBR must
    /// not copy a shared parent node (`adjust_upward` walks whole spines).
    fn refresh_parent_entry(&mut self, id: NodeId) {
        if let Some(p) = self.node(id).parent {
            let mbr = self.node(id).mbr().expect("child non-empty");
            let stale = self
                .node(p)
                .entries
                .iter()
                .any(|e| e.child == ChildRef::Node(id) && e.mbr != mbr);
            if !stale {
                return;
            }
            let parent = Arc::make_mut(&mut self.nodes[p.0 as usize]);
            for e in &mut parent.entries {
                if e.child == ChildRef::Node(id) {
                    e.mbr = mbr;
                    break;
                }
            }
            self.dirty.push(p);
        }
    }

    /// Propagates MBR refreshes from `id` to the root.
    fn adjust_upward(&mut self, mut id: NodeId) {
        while let Some(p) = self.node(id).parent {
            self.refresh_parent_entry(id);
            id = p;
        }
    }

    // ------------------------------------------------------------------
    // Validation (test support)
    // ------------------------------------------------------------------

    /// Structural validation: entry MBRs cover children, levels are
    /// consistent, parent pointers are correct, fan-out bounds hold, and
    /// every object appears exactly once. `strict_fill` additionally checks
    /// the minimum fill (meaningful only for purely insert-built trees;
    /// STR packing may leave one under-full node per level).
    pub fn validate(&self, expected_objects: usize, strict_fill: bool) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(self.root, None::<Rect>)];
        let root_level = self.node(self.root).level;
        if root_level + 1 != self.height {
            return Err(format!(
                "height {} disagrees with root level {root_level}",
                self.height
            ));
        }
        if self.node(self.root).parent.is_some() {
            return Err("root has a parent".into());
        }
        while let Some((id, bound)) = stack.pop() {
            let node = self.node(id);
            if let Some(b) = bound {
                let mbr = node
                    .mbr()
                    .ok_or_else(|| format!("{id}: empty non-root node"))?;
                if b != mbr {
                    return Err(format!("{id}: parent entry MBR {b:?} != node MBR {mbr:?}"));
                }
            }
            if id != self.root {
                if node.entries.len() > self.cfg.max_entries {
                    return Err(format!("{id}: overflowing node"));
                }
                if strict_fill && node.entries.len() < self.cfg.min_entries {
                    return Err(format!("{id}: under-filled node"));
                }
            }
            for e in &node.entries {
                match e.child {
                    ChildRef::Object(o) => {
                        if node.level != 0 {
                            return Err(format!("{id}: object entry in non-leaf"));
                        }
                        if !seen.insert(o) {
                            return Err(format!("object {o} appears twice"));
                        }
                    }
                    ChildRef::Node(c) => {
                        let child = self.node(c);
                        if child.level + 1 != node.level {
                            return Err(format!("{id} -> {c}: level mismatch"));
                        }
                        if child.parent != Some(id) {
                            return Err(format!("{c}: wrong parent pointer"));
                        }
                        stack.push((c, Some(e.mbr)));
                    }
                }
            }
        }
        if seen.len() != expected_objects {
            return Err(format!(
                "tree holds {} objects, expected {expected_objects}",
                seen.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectId;
    use pc_geom::Point;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_objects(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.01);
                let h: f64 = rng.random_range(0.0..0.01);
                SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                    size_bytes: 1000,
                }
            })
            .collect()
    }

    #[test]
    fn empty_tree_is_valid() {
        let tree = RTree::new(RTreeConfig::small());
        assert!(tree.validate(0, false).is_ok());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.root_mbr(), None);
    }

    #[test]
    fn bulk_load_structure_is_valid() {
        for n in [1usize, 7, 8, 9, 64, 65, 200, 777] {
            let objs = random_objects(n, 42 + n as u64);
            let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
            tree.validate(n, false)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_height_grows_logarithmically() {
        let objs = random_objects(512, 7);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        // 512 objects, fan 8 => 64 leaves => 8 level-1 => 1 root: height 4... but
        // STR may produce slightly fewer tiles; assert a sane band instead.
        assert!(
            tree.height() >= 3 && tree.height() <= 5,
            "height {}",
            tree.height()
        );
    }

    #[test]
    fn dynamic_insert_structure_is_valid() {
        let objs = random_objects(300, 11);
        let mut tree = RTree::new(RTreeConfig::small());
        for (i, o) in objs.iter().enumerate() {
            tree.insert(o);
            if i % 50 == 49 {
                tree.validate(i + 1, true)
                    .unwrap_or_else(|e| panic!("after {} inserts: {e}", i + 1));
            }
        }
        tree.validate(300, true).unwrap();
        assert!(tree.height() > 1);
    }

    #[test]
    fn insert_identical_points_does_not_loop() {
        // Pathological input: many identical degenerate rectangles force
        // zero-area splits; the tree must still terminate and validate.
        let p = Point::new(0.5, 0.5);
        let mut tree = RTree::new(RTreeConfig::small());
        for i in 0..100u32 {
            tree.insert(&SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(p),
                size_bytes: 10,
            });
        }
        tree.validate(100, true).unwrap();
    }

    #[test]
    fn stats_reports_counts() {
        let objs = random_objects(100, 3);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let s = tree.stats();
        assert_eq!(s.object_count, 100);
        assert!(s.leaf_count >= 100 / 8);
        assert!(s.node_count > s.leaf_count);
        assert_eq!(s.height, tree.height());
        assert_eq!(
            s.index_bytes,
            s.node_count as u64 * crate::proto::PAGE_BYTES
        );
    }

    #[test]
    fn paper_config_has_plausible_fanout() {
        let cfg = RTreeConfig::paper();
        assert!(cfg.max_entries >= 90 && cfg.max_entries <= 110);
        assert!(cfg.min_entries >= cfg.max_entries / 3);
        assert!(cfg.reinsert_count < cfg.max_entries - cfg.min_entries);
    }

    #[test]
    fn node_ids_reach_every_node_once() {
        let objs = random_objects(150, 5);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let ids = tree.node_ids();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn delete_removes_objects_and_keeps_structure() {
        let objs = random_objects(200, 21);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        for (i, o) in objs.iter().enumerate().take(120) {
            assert!(tree.delete(o.id, &o.mbr), "object {i} must be found");
            if i % 20 == 19 {
                tree.validate(200 - i - 1, false)
                    .unwrap_or_else(|e| panic!("after {} deletes: {e}", i + 1));
            }
        }
        assert_eq!(tree.object_count(), 80);
        // Deleted objects are gone; survivors remain findable.
        let survivors = crate::query::range_query(&tree, &Rect::UNIT);
        assert_eq!(survivors.len(), 80);
        for o in &objs[..120] {
            assert!(!survivors.contains(&o.id));
        }
    }

    #[test]
    fn delete_missing_object_returns_false() {
        let objs = random_objects(50, 22);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        assert!(!tree.delete(ObjectId(999), &Rect::from_point(Point::new(0.5, 0.5))));
        assert!(tree.delete(objs[0].id, &objs[0].mbr));
        assert!(!tree.delete(objs[0].id, &objs[0].mbr), "double delete");
        tree.validate(49, false).unwrap();
    }

    #[test]
    fn delete_everything_leaves_a_valid_empty_tree() {
        let objs = random_objects(90, 23);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        for o in &objs {
            assert!(tree.delete(o.id, &o.mbr));
        }
        assert_eq!(tree.object_count(), 0);
        tree.validate(0, false).unwrap();
        assert!(crate::query::range_query(&tree, &Rect::UNIT).is_empty());
        // And the tree is reusable.
        tree.insert(&objs[0]);
        tree.validate(1, false).unwrap();
    }

    #[test]
    fn delete_shrinks_height_eventually() {
        let objs = random_objects(300, 24);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let h0 = tree.height();
        assert!(h0 >= 3);
        for o in &objs[..290] {
            tree.delete(o.id, &o.mbr);
        }
        tree.validate(10, false).unwrap();
        assert!(
            tree.height() < h0,
            "height should shrink after mass deletion"
        );
    }

    #[test]
    fn interleaved_insert_delete_stays_valid() {
        let objs = random_objects(400, 25);
        let mut tree = RTree::new(RTreeConfig::small());
        let mut live = std::collections::HashSet::new();
        let mut rng = SmallRng::seed_from_u64(26);
        for o in &objs {
            tree.insert(o);
            live.insert(o.id);
            if rng.random_bool(0.4) && live.len() > 5 {
                // Delete a random live object.
                let victim = *live.iter().next().unwrap();
                let vo = &objs[victim.0 as usize];
                assert!(tree.delete(vo.id, &vo.mbr));
                live.remove(&victim);
            }
        }
        tree.validate(live.len(), false).unwrap();
        let found = crate::query::range_query(&tree, &Rect::UNIT);
        assert_eq!(found.len(), live.len());
    }

    #[test]
    fn cloned_tree_shares_untouched_nodes() {
        // The copy-on-write contract: after a clone, a single insert must
        // copy only the touched spine (target leaf + refreshed ancestors +
        // any split fallout), leaving the bulk of the slab shared.
        let objs = random_objects(600, 31);
        let base = RTree::bulk_load(RTreeConfig::small(), &objs);
        let mut next = base.clone();
        assert_eq!(
            base.shared_node_slots(&next),
            base.slab_len(),
            "a fresh clone shares every slot"
        );
        next.insert(&SpatialObject {
            id: ObjectId(9000),
            mbr: Rect::from_point(Point::new(0.31, 0.62)),
            size_bytes: 10,
        });
        let shared = base.shared_node_slots(&next);
        let copied = base.slab_len() - shared;
        assert!(copied >= 1, "the insert must have copied its leaf");
        assert!(
            copied <= 4 * next.height() as usize + 8,
            "one insert copied {copied} of {} nodes — CoW is not sharing",
            base.slab_len()
        );
        // Both trees stay independently valid.
        base.validate(600, false).unwrap();
        next.validate(601, false).unwrap();
        // A delete after the clone behaves the same way.
        let mut pruned = base.clone();
        assert!(pruned.delete(objs[0].id, &objs[0].mbr));
        let shared = base.shared_node_slots(&pruned);
        assert!(base.slab_len() - shared <= 4 * base.height() as usize + 8);
        base.validate(600, false).unwrap();
        pruned.validate(599, false).unwrap();
    }

    #[test]
    fn dirty_tracking_reports_changed_nodes() {
        let objs = random_objects(120, 27);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        assert!(tree.take_dirty().is_empty(), "bulk load reports no dirt");
        let extra = SpatialObject {
            id: ObjectId(500),
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 10,
        };
        tree.insert(&extra);
        let dirty = tree.take_dirty();
        assert!(!dirty.is_empty(), "insert must dirty the target leaf");
        assert!(tree.take_dirty().is_empty(), "take drains");
        tree.delete(extra.id, &extra.mbr);
        assert!(!tree.take_dirty().is_empty(), "delete must dirty the leaf");
    }
}
