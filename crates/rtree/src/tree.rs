//! The R*-tree: page-oriented, with STR bulk loading for dataset
//! construction and full R* dynamic insertion (ChooseSubtree with the
//! overlap criterion, forced re-insert, R* split) for incremental use.

use crate::split::rstar_split;
use crate::{ChildRef, Entry, Node, NodeId, SpatialObject};
use pc_geom::Rect;
use std::sync::Arc;

/// Fan-out configuration. The defaults mirror the paper's setup: R*-tree
/// with a 4 KB page capacity and 40-byte entries (32-byte MBR + 8-byte
/// pointer), i.e. a maximum fan-out of ~102 and the customary 40 % minimum
/// fill.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    pub max_entries: usize,
    pub min_entries: usize,
    /// Entries removed by forced re-insert on the first overflow of a level
    /// (R* recommends 30 % of the maximum fan-out).
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Paper-scale configuration (4 KB pages).
    pub fn paper() -> Self {
        let max = (crate::proto::PAGE_BYTES - crate::proto::NODE_HEADER_BYTES) as usize
            / crate::proto::ENTRY_BYTES as usize;
        RTreeConfig {
            max_entries: max,
            min_entries: max * 2 / 5,
            reinsert_count: max * 3 / 10,
        }
    }

    /// Small fan-out for tests — forces deep trees on small datasets so the
    /// structural machinery (splits, re-inserts, BPTs) is exercised.
    pub fn small() -> Self {
        RTreeConfig {
            max_entries: 8,
            min_entries: 3,
            reinsert_count: 2,
        }
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig::paper()
    }
}

/// Index statistics for the §6.4 size report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    pub node_count: usize,
    pub leaf_count: usize,
    pub height: u16,
    pub object_count: usize,
    /// Disk footprint at one page per node (the paper's 3.8 MB / 18.5 MB).
    pub index_bytes: u64,
}

/// Node slots per slab segment (power of two so indexing is a shift+mask,
/// mirroring the object store's segmentation).
const NODE_CHUNK_SHIFT: u32 = 10;
/// Segment capacity derived from the shift.
pub const NODE_CHUNK_LEN: usize = 1 << NODE_CHUNK_SHIFT;

/// A two-dimensional R*-tree over [`SpatialObject`]s.
///
/// Node slots are `Arc`-per-node copy-on-write, and the slab itself is
/// segmented into [`NODE_CHUNK_LEN`]-slot `Arc` chunks: cloning a tree
/// clones only the segment pointer table (`len/1024` refcount bumps), and a
/// mutation after a clone copies the one segment the slot lives in (1024
/// pointer bumps) plus the node it actually touches ([`Arc::make_mut`]
/// twice), leaving everything else structurally shared between the two
/// trees. This is what makes an epoch publish in `pc_server` cost
/// O(batch · depth) node copies — *including* the pointer table, which a
/// flat `Vec<Arc<Node>>` slab would re-clone in full (O(nodes)) per epoch.
#[derive(Clone, Debug)]
pub struct RTree {
    cfg: RTreeConfig,
    /// Chunked slab: segment table → 1024 `Arc<Node>` slots per segment.
    nodes: Vec<Arc<Vec<Arc<Node>>>>,
    node_len: usize,
    root: NodeId,
    /// Number of levels; the root sits at `height - 1`, leaves at 0.
    height: u16,
    object_count: usize,
    /// Nodes whose entry sets changed since the last [`RTree::take_dirty`]
    /// — the hook the update/invalidation subsystem builds on. Detached
    /// nodes are reported too (clients may still cache them).
    dirty: Vec<NodeId>,
}

impl RTree {
    /// An empty tree (a single empty leaf as root).
    pub fn new(cfg: RTreeConfig) -> Self {
        let mut tree = RTree::hollow(cfg);
        tree.push_node(Node::new(None, 0));
        tree.height = 1;
        tree
    }

    /// A tree with no nodes at all — internal staging for the builders.
    fn hollow(cfg: RTreeConfig) -> Self {
        RTree {
            cfg,
            nodes: Vec::new(),
            node_len: 0,
            root: NodeId(0),
            height: 0,
            object_count: 0,
            dirty: Vec::new(),
        }
    }

    /// Appends a node to the slab, growing a fresh segment at chunk
    /// boundaries, and returns its id.
    fn push_node(&mut self, node: Node) -> NodeId {
        if self.node_len.is_multiple_of(NODE_CHUNK_LEN) {
            self.nodes
                .push(Arc::new(Vec::with_capacity(NODE_CHUNK_LEN)));
        }
        Arc::make_mut(self.nodes.last_mut().expect("segment just ensured")).push(Arc::new(node));
        let id = NodeId(self.node_len as u32);
        self.node_len += 1;
        id
    }

    /// Bulk loads with Sort-Tile-Recursive packing — the standard way to
    /// build a static R-tree over a full dataset.
    pub fn bulk_load(cfg: RTreeConfig, objects: &[SpatialObject]) -> Self {
        if objects.is_empty() {
            return RTree::new(cfg);
        }
        let mut tree = RTree::hollow(cfg);
        tree.object_count = objects.len();

        // Level 0.
        let leaf_items: Vec<(Rect, ChildRef)> = objects
            .iter()
            .map(|o| (o.mbr, ChildRef::Object(o.id)))
            .collect();
        let mut level_nodes = tree.str_pack(leaf_items, 0);
        let mut level = 0u16;

        while level_nodes.len() > 1 {
            level += 1;
            let items: Vec<(Rect, ChildRef)> = level_nodes
                .iter()
                .map(|&id| {
                    let mbr = tree.node(id).mbr().expect("packed node non-empty");
                    (mbr, ChildRef::Node(id))
                })
                .collect();
            level_nodes = tree.str_pack(items, level);
        }

        tree.root = level_nodes[0];
        tree.height = level + 1;
        // Fix parent pointers (str_pack fills children before parents).
        tree.rewire_parents();
        tree
    }

    /// Packs `items` into nodes of `cfg.max_entries` at `level`, returning
    /// the created node ids in tile order.
    fn str_pack(&mut self, mut items: Vec<(Rect, ChildRef)>, level: u16) -> Vec<NodeId> {
        let cap = self.cfg.max_entries;
        let n = items.len();
        let page_count = n.div_ceil(cap);
        let slab_count = (page_count as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slab_count);

        items.sort_by(|a, b| a.0.center().x.partial_cmp(&b.0.center().x).unwrap());

        let mut out = Vec::with_capacity(page_count);
        for slab in items.chunks_mut(slab_size.max(1)) {
            slab.sort_by(|a, b| a.0.center().y.partial_cmp(&b.0.center().y).unwrap());
            for tile in slab.chunks(cap) {
                let node = Node::with_entries(
                    None,
                    level,
                    tile.iter().map(|&(mbr, child)| Entry { mbr, child }),
                );
                out.push(self.push_node(node));
            }
        }
        out
    }

    fn rewire_parents(&mut self) {
        let ids: Vec<NodeId> = (0..self.node_len as u32).map(NodeId).collect();
        for id in ids {
            let children: Vec<NodeId> = self
                .node(id)
                .children()
                .iter()
                .filter_map(|c| match c {
                    ChildRef::Node(c) => Some(*c),
                    ChildRef::Object(_) => None,
                })
                .collect();
            for c in children {
                self.node_mut(c).parent = Some(id);
            }
        }
        let root = self.root;
        self.node_mut(root).parent = None;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let i = id.0 as usize;
        &self.nodes[i >> NODE_CHUNK_SHIFT][i & (NODE_CHUNK_LEN - 1)]
    }

    /// Mutable access to one node slot, copying the segment and then the
    /// node when either is shared with a cloned tree (the copy-on-write
    /// seam: everything that edits a node funnels through here). The
    /// segment copy is 1024 pointer bumps; slot-level sharing inside the
    /// copied segment is preserved.
    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let i = id.0 as usize;
        let chunk = Arc::make_mut(&mut self.nodes[i >> NODE_CHUNK_SHIFT]);
        Arc::make_mut(&mut chunk[i & (NODE_CHUNK_LEN - 1)])
    }

    /// Number of slab slots (reachable nodes plus detached husks) — the
    /// denominator for [`RTree::shared_node_slots`].
    pub fn slab_len(&self) -> usize {
        self.node_len
    }

    /// How many node slots `self` physically shares with `other` (same
    /// `Arc` allocation at the same slot). A diagnostic for the
    /// structural-sharing guarantees: after cloning a tree and applying a
    /// small update batch, all but the touched spines stay shared.
    pub fn shared_node_slots(&self, other: &RTree) -> usize {
        self.nodes
            .iter()
            .zip(&other.nodes)
            .map(|(a, b)| {
                if Arc::ptr_eq(a, b) {
                    // Same segment allocation → every slot in it is shared.
                    a.len()
                } else {
                    a.iter()
                        .zip(b.iter())
                        .filter(|(x, y)| Arc::ptr_eq(x, y))
                        .count()
                }
            })
            .sum()
    }

    /// Number of slab segments (denominator for
    /// [`shared_node_chunks`](RTree::shared_node_chunks)).
    pub fn node_chunk_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many whole slab segments `self` physically shares with `other`
    /// — the pointer-table analogue of [`RTree::shared_node_slots`]. A
    /// publish that edits `k` spines copies at most `k · depth` segments,
    /// independent of the dataset size.
    pub fn shared_node_chunks(&self, other: &RTree) -> usize {
        self.nodes
            .iter()
            .zip(&other.nodes)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// MBR of the whole tree (`None` when empty).
    pub fn root_mbr(&self) -> Option<Rect> {
        self.node(self.root).mbr()
    }

    #[inline]
    pub fn height(&self) -> u16 {
        self.height
    }

    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.cfg
    }

    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// All node ids currently in the slab (bulk-loaded trees have no holes;
    /// dynamically grown trees keep superseded slots but they are never
    /// referenced — this iterator only yields reachable nodes).
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            for c in self.node(id).children() {
                if let ChildRef::Node(c) = c {
                    stack.push(*c);
                }
            }
        }
        out
    }

    pub fn stats(&self) -> TreeStats {
        let ids = self.node_ids();
        let leaf_count = ids.iter().filter(|&&id| self.node(id).is_leaf()).count();
        TreeStats {
            node_count: ids.len(),
            leaf_count,
            height: self.height,
            object_count: self.object_count,
            index_bytes: ids.len() as u64 * crate::proto::PAGE_BYTES,
        }
    }

    // ------------------------------------------------------------------
    // Change tracking (update/invalidation hook)
    // ------------------------------------------------------------------

    #[inline]
    fn mark_dirty(&mut self, id: NodeId) {
        self.dirty.push(id);
    }

    /// Drains the set of nodes whose entries changed since the last call
    /// (deduplicated, unordered). Bulk loading does not report dirt — the
    /// tree is brand new.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.dirty);
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // R* dynamic insertion
    // ------------------------------------------------------------------

    /// Inserts one object (R* insertion with forced re-insert).
    pub fn insert(&mut self, obj: &SpatialObject) {
        let entry = Entry {
            mbr: obj.mbr,
            child: ChildRef::Object(obj.id),
        };
        // One forced re-insert per level per data insertion (R* rule).
        let mut reinserted = vec![false; self.height as usize + 1];
        self.insert_at_level(entry, 0, &mut reinserted);
        self.object_count += 1;
    }

    fn insert_at_level(&mut self, entry: Entry, level: u16, reinserted: &mut Vec<bool>) {
        let target = self.choose_subtree(&entry.mbr, level);
        if let ChildRef::Node(c) = entry.child {
            self.node_mut(c).parent = Some(target);
        }
        self.node_mut(target).push(entry);
        self.mark_dirty(target);
        self.adjust_upward(target);
        self.handle_overflow(target, reinserted);
    }

    /// Descends from the root to `target_level`, applying the R* criteria:
    /// minimal overlap enlargement when choosing among leaf children,
    /// minimal area enlargement otherwise.
    fn choose_subtree(&self, mbr: &Rect, target_level: u16) -> NodeId {
        let mut cur = self.root;
        while self.node(cur).level > target_level {
            let node = self.node(cur);
            let children_are_leaves = node.level == target_level + 1 && target_level == 0;
            let chosen = if children_are_leaves {
                self.choose_min_overlap(node, mbr)
            } else {
                self.choose_min_enlargement(node, mbr)
            };
            cur = chosen;
        }
        cur
    }

    fn choose_min_enlargement(&self, node: &Node, mbr: &Rect) -> NodeId {
        let mut best = (f64::INFINITY, f64::INFINITY, NodeId(u32::MAX));
        for e in node.entries() {
            let enl = e.mbr.enlargement(mbr);
            let area = e.mbr.area();
            if (enl, area) < (best.0, best.1) {
                if let ChildRef::Node(c) = e.child {
                    best = (enl, area, c);
                }
            }
        }
        best.2
    }

    /// R* "nearly minimum overlap": among the 32 entries with least area
    /// enlargement, pick the one whose overlap with its siblings grows
    /// least when absorbing `mbr`.
    fn choose_min_overlap(&self, node: &Node, mbr: &Rect) -> NodeId {
        const CANDIDATES: usize = 32;
        let mut idx: Vec<usize> = (0..node.len()).collect();
        if idx.len() > CANDIDATES {
            idx.sort_by(|&a, &b| {
                node.mbr_at(a)
                    .enlargement(mbr)
                    .partial_cmp(&node.mbr_at(b).enlargement(mbr))
                    .unwrap()
            });
            idx.truncate(CANDIDATES);
        }
        let mut best = (
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            NodeId(u32::MAX),
        );
        for &i in &idx {
            let cand = node.mbr_at(i);
            let grown = cand.union(mbr);
            let mut overlap_delta = 0.0;
            for j in 0..node.len() {
                if j == i {
                    continue;
                }
                let other = node.mbr_at(j);
                overlap_delta += grown.overlap_area(&other) - cand.overlap_area(&other);
            }
            let enl = cand.enlargement(mbr);
            let area = cand.area();
            if (overlap_delta, enl, area) < (best.0, best.1, best.2) {
                if let ChildRef::Node(c) = node.child_at(i) {
                    best = (overlap_delta, enl, area, c);
                }
            }
        }
        best.3
    }

    fn handle_overflow(&mut self, mut id: NodeId, reinserted: &mut Vec<bool>) {
        loop {
            if self.node(id).len() <= self.cfg.max_entries {
                return;
            }
            let level = self.node(id).level as usize;
            if level >= reinserted.len() {
                // The tree can grow mid-insertion (root splits during a
                // forced re-insert cascade); extend the per-level flags.
                reinserted.resize(level + 1, false);
            }
            let is_root = id == self.root;
            if !is_root && !reinserted[level] {
                reinserted[level] = true;
                self.forced_reinsert(id, reinserted);
                return; // re-insertion handled any cascading overflow
            }
            let parent = self.split_node(id);
            match parent {
                Some(p) => id = p,
                None => return, // split created a new root
            }
        }
    }

    /// Removes the `reinsert_count` entries farthest from the node's center
    /// and re-inserts them from the top (R* forced re-insert, far-first).
    fn forced_reinsert(&mut self, id: NodeId, reinserted: &mut Vec<bool>) {
        let center = self
            .node(id)
            .mbr()
            .expect("overflowing node non-empty")
            .center();
        let (reinsert_count, min_entries) = (self.cfg.reinsert_count, self.cfg.min_entries);
        let node = self.node_mut(id);
        let mut entries = node.take_entries();
        entries.sort_by(|a, b| {
            // Descending distance: farthest first at the front.
            b.mbr
                .center()
                .dist(&center)
                .partial_cmp(&a.mbr.center().dist(&center))
                .unwrap()
        });
        let count = reinsert_count.min(entries.len() - min_entries);
        let removed: Vec<Entry> = entries.drain(..count).collect();
        node.set_entries(entries);
        let level = node.level;
        self.mark_dirty(id);
        self.adjust_upward(id);
        for e in removed {
            self.insert_at_level(e, level, reinserted);
        }
    }

    /// Splits an overflowing node; returns its parent (for cascade checks)
    /// or `None` when a new root was created.
    fn split_node(&mut self, id: NodeId) -> Option<NodeId> {
        let level = self.node(id).level;
        let entries = self.node_mut(id).take_entries();
        let rects: Vec<Rect> = entries.iter().map(|e| e.mbr).collect();
        let (left_idx, right_idx) = rstar_split(&rects, self.cfg.min_entries);

        let left_entries: Vec<Entry> = left_idx.iter().map(|&i| entries[i]).collect();
        let right_entries: Vec<Entry> = right_idx.iter().map(|&i| entries[i]).collect();

        self.node_mut(id).set_entries(left_entries);
        let sibling_node = Node::with_entries(self.node(id).parent, level, right_entries);
        let sibling = self.push_node(sibling_node);
        // Children moved to the sibling need their parent pointer fixed.
        let moved: Vec<NodeId> = self
            .node(sibling)
            .children()
            .iter()
            .filter_map(|c| match c {
                ChildRef::Node(c) => Some(*c),
                ChildRef::Object(_) => None,
            })
            .collect();
        for c in moved {
            self.node_mut(c).parent = Some(sibling);
        }

        self.mark_dirty(id);
        self.mark_dirty(sibling);
        let sibling_mbr = self.node(sibling).mbr().expect("split side non-empty");
        match self.node(id).parent {
            Some(p) => {
                self.refresh_parent_entry(id);
                self.node_mut(p).push(Entry {
                    mbr: sibling_mbr,
                    child: ChildRef::Node(sibling),
                });
                self.mark_dirty(p);
                self.adjust_upward(p);
                Some(p)
            }
            None => {
                // Root split: grow the tree by one level.
                let old_root_mbr = self.node(id).mbr().expect("split side non-empty");
                let new_root = self.push_node(Node::with_entries(
                    None,
                    level + 1,
                    [
                        Entry {
                            mbr: old_root_mbr,
                            child: ChildRef::Node(id),
                        },
                        Entry {
                            mbr: sibling_mbr,
                            child: ChildRef::Node(sibling),
                        },
                    ],
                ));
                self.node_mut(id).parent = Some(new_root);
                self.node_mut(sibling).parent = Some(new_root);
                self.root = new_root;
                self.height += 1;
                self.mark_dirty(new_root);
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion (Guttman delete + condense)
    // ------------------------------------------------------------------

    /// Deletes one object entry; `mbr` guides the leaf search (it must be
    /// the MBR the object was inserted with). Returns `false` when the
    /// object is not in the tree.
    pub fn delete(&mut self, id: crate::ObjectId, mbr: &Rect) -> bool {
        let Some(leaf) = self.find_leaf(id, mbr) else {
            return false;
        };
        self.node_mut(leaf)
            .retain_entries(|e| e.child != ChildRef::Object(id));
        self.mark_dirty(leaf);
        self.object_count -= 1;
        self.condense(leaf);
        true
    }

    /// Locates the leaf holding `id`, descending only through entries whose
    /// MBR contains the object's. Iterative (explicit stack): like the
    /// query kernels, deletion must not recurse on pathological tree depth.
    fn find_leaf(&self, id: crate::ObjectId, mbr: &Rect) -> Option<NodeId> {
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            let n = self.node(cur);
            if n.is_leaf() {
                if n.children().contains(&ChildRef::Object(id)) {
                    return Some(cur);
                }
                continue;
            }
            for e in n.entries() {
                if let ChildRef::Node(c) = e.child {
                    if e.mbr.contains_rect(mbr) {
                        stack.push(c);
                    }
                }
            }
        }
        None
    }

    /// Guttman's CondenseTree: walk up from a shrunken node, detach
    /// under-full nodes, re-insert their orphaned entries at their levels,
    /// and cut a single-child non-leaf root.
    fn condense(&mut self, mut id: NodeId) {
        let mut orphans: Vec<(Entry, u16)> = Vec::new();
        while let Some(parent) = self.node(id).parent {
            if self.node(id).len() < self.cfg.min_entries {
                // Detach `id`: its parent loses the entry, its own entries
                // queue for re-insertion at their original level.
                let level = self.node(id).level;
                let entries = self.node_mut(id).take_entries();
                orphans.extend(entries.into_iter().map(|e| (e, level)));
                self.node_mut(parent)
                    .retain_entries(|e| e.child != ChildRef::Node(id));
                self.node_mut(id).parent = None;
                self.mark_dirty(id);
                self.mark_dirty(parent);
            } else {
                self.refresh_parent_entry(id);
            }
            id = parent;
        }
        // Re-insert orphans (children first: higher level values last so
        // the tree height is stable while leaves go back in).
        orphans.sort_by_key(|&(_, level)| level);
        let mut reinserted = vec![false; self.height as usize + 1];
        for (entry, level) in orphans {
            self.insert_at_level(entry, level, &mut reinserted);
        }
        // Shrink the root while it is a single-child internal node.
        while self.node(self.root).level > 0 && self.node(self.root).len() == 1 {
            let old_root = self.root;
            let ChildRef::Node(child) = self.node(self.root).child_at(0) else {
                unreachable!("non-leaf root holds node entries")
            };
            self.node_mut(child).parent = None;
            self.root = child;
            self.height -= 1;
            self.node_mut(old_root).clear_entries();
            self.mark_dirty(old_root);
        }
    }

    /// Recomputes the MBR stored for `id` in its parent entry. Read-checks
    /// before taking the copy-on-write mutable path: an unchanged MBR must
    /// not copy a shared parent node (`adjust_upward` walks whole spines).
    fn refresh_parent_entry(&mut self, id: NodeId) {
        if let Some(p) = self.node(id).parent {
            let mbr = self.node(id).mbr().expect("child non-empty");
            let slot = self
                .node(p)
                .entries()
                .position(|e| e.child == ChildRef::Node(id) && e.mbr != mbr);
            let Some(slot) = slot else {
                return;
            };
            self.node_mut(p).set_mbr_at(slot, mbr);
            self.dirty.push(p);
        }
    }

    /// Propagates MBR refreshes from `id` to the root.
    fn adjust_upward(&mut self, mut id: NodeId) {
        while let Some(p) = self.node(id).parent {
            self.refresh_parent_entry(id);
            id = p;
        }
    }

    // ------------------------------------------------------------------
    // Validation (test support)
    // ------------------------------------------------------------------

    /// Structural validation: entry MBRs cover children, levels are
    /// consistent, parent pointers are correct, fan-out bounds hold, and
    /// every object appears exactly once. `strict_fill` additionally checks
    /// the minimum fill (meaningful only for purely insert-built trees;
    /// STR packing may leave one under-full node per level).
    pub fn validate(&self, expected_objects: usize, strict_fill: bool) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(self.root, None::<Rect>)];
        let root_level = self.node(self.root).level;
        if root_level + 1 != self.height {
            return Err(format!(
                "height {} disagrees with root level {root_level}",
                self.height
            ));
        }
        if self.node(self.root).parent.is_some() {
            return Err("root has a parent".into());
        }
        while let Some((id, bound)) = stack.pop() {
            let node = self.node(id);
            if let Some(b) = bound {
                let mbr = node
                    .mbr()
                    .ok_or_else(|| format!("{id}: empty non-root node"))?;
                if b != mbr {
                    return Err(format!("{id}: parent entry MBR {b:?} != node MBR {mbr:?}"));
                }
            }
            if id != self.root {
                if node.len() > self.cfg.max_entries {
                    return Err(format!("{id}: overflowing node"));
                }
                if strict_fill && node.len() < self.cfg.min_entries {
                    return Err(format!("{id}: under-filled node"));
                }
            }
            for e in node.entries() {
                match e.child {
                    ChildRef::Object(o) => {
                        if node.level != 0 {
                            return Err(format!("{id}: object entry in non-leaf"));
                        }
                        if !seen.insert(o) {
                            return Err(format!("object {o} appears twice"));
                        }
                    }
                    ChildRef::Node(c) => {
                        let child = self.node(c);
                        if child.level + 1 != node.level {
                            return Err(format!("{id} -> {c}: level mismatch"));
                        }
                        if child.parent != Some(id) {
                            return Err(format!("{c}: wrong parent pointer"));
                        }
                        stack.push((c, Some(e.mbr)));
                    }
                }
            }
        }
        if seen.len() != expected_objects {
            return Err(format!(
                "tree holds {} objects, expected {expected_objects}",
                seen.len()
            ));
        }
        Ok(())
    }

    /// A pathological single-entry chain of `depth` levels over one object
    /// — the adversarial input for the recursion-depth regression tests
    /// (the old recursive kernels overflowed the stack on it; the iterative
    /// ones must not). Structurally valid but wildly under-filled.
    #[cfg(test)]
    pub(crate) fn degenerate_chain(cfg: RTreeConfig, depth: u16) -> RTree {
        assert!(depth >= 1);
        let mbr = Rect::from_coords(0.25, 0.25, 0.25, 0.25);
        let mut tree = RTree::hollow(cfg);
        tree.object_count = 1;
        let mut prev = tree.push_node(Node::with_entries(
            None,
            0,
            [Entry {
                mbr,
                child: ChildRef::Object(crate::ObjectId(0)),
            }],
        ));
        for level in 1..depth {
            let id = tree.push_node(Node::with_entries(
                None,
                level,
                [Entry {
                    mbr,
                    child: ChildRef::Node(prev),
                }],
            ));
            tree.node_mut(prev).parent = Some(id);
            prev = id;
        }
        tree.root = prev;
        tree.height = depth;
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectId;
    use pc_geom::Point;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_objects(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.01);
                let h: f64 = rng.random_range(0.0..0.01);
                SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                    size_bytes: 1000,
                }
            })
            .collect()
    }

    #[test]
    fn empty_tree_is_valid() {
        let tree = RTree::new(RTreeConfig::small());
        assert!(tree.validate(0, false).is_ok());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.root_mbr(), None);
    }

    #[test]
    fn bulk_load_structure_is_valid() {
        for n in [1usize, 7, 8, 9, 64, 65, 200, 777] {
            let objs = random_objects(n, 42 + n as u64);
            let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
            tree.validate(n, false)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_height_grows_logarithmically() {
        let objs = random_objects(512, 7);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        // 512 objects, fan 8 => 64 leaves => 8 level-1 => 1 root: height 4... but
        // STR may produce slightly fewer tiles; assert a sane band instead.
        assert!(
            tree.height() >= 3 && tree.height() <= 5,
            "height {}",
            tree.height()
        );
    }

    #[test]
    fn dynamic_insert_structure_is_valid() {
        let objs = random_objects(300, 11);
        let mut tree = RTree::new(RTreeConfig::small());
        for (i, o) in objs.iter().enumerate() {
            tree.insert(o);
            if i % 50 == 49 {
                tree.validate(i + 1, true)
                    .unwrap_or_else(|e| panic!("after {} inserts: {e}", i + 1));
            }
        }
        tree.validate(300, true).unwrap();
        assert!(tree.height() > 1);
    }

    #[test]
    fn insert_identical_points_does_not_loop() {
        // Pathological input: many identical degenerate rectangles force
        // zero-area splits; the tree must still terminate and validate.
        let p = Point::new(0.5, 0.5);
        let mut tree = RTree::new(RTreeConfig::small());
        for i in 0..100u32 {
            tree.insert(&SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(p),
                size_bytes: 10,
            });
        }
        tree.validate(100, true).unwrap();
    }

    #[test]
    fn stats_reports_counts() {
        let objs = random_objects(100, 3);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let s = tree.stats();
        assert_eq!(s.object_count, 100);
        assert!(s.leaf_count >= 100 / 8);
        assert!(s.node_count > s.leaf_count);
        assert_eq!(s.height, tree.height());
        assert_eq!(
            s.index_bytes,
            s.node_count as u64 * crate::proto::PAGE_BYTES
        );
    }

    #[test]
    fn paper_config_has_plausible_fanout() {
        let cfg = RTreeConfig::paper();
        assert!(cfg.max_entries >= 90 && cfg.max_entries <= 110);
        assert!(cfg.min_entries >= cfg.max_entries / 3);
        assert!(cfg.reinsert_count < cfg.max_entries - cfg.min_entries);
    }

    #[test]
    fn node_ids_reach_every_node_once() {
        let objs = random_objects(150, 5);
        let tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let ids = tree.node_ids();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn delete_removes_objects_and_keeps_structure() {
        let objs = random_objects(200, 21);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        for (i, o) in objs.iter().enumerate().take(120) {
            assert!(tree.delete(o.id, &o.mbr), "object {i} must be found");
            if i % 20 == 19 {
                tree.validate(200 - i - 1, false)
                    .unwrap_or_else(|e| panic!("after {} deletes: {e}", i + 1));
            }
        }
        assert_eq!(tree.object_count(), 80);
        // Deleted objects are gone; survivors remain findable.
        let survivors = crate::query::range_query(&tree, &Rect::UNIT);
        assert_eq!(survivors.len(), 80);
        for o in &objs[..120] {
            assert!(!survivors.contains(&o.id));
        }
    }

    #[test]
    fn delete_missing_object_returns_false() {
        let objs = random_objects(50, 22);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        assert!(!tree.delete(ObjectId(999), &Rect::from_point(Point::new(0.5, 0.5))));
        assert!(tree.delete(objs[0].id, &objs[0].mbr));
        assert!(!tree.delete(objs[0].id, &objs[0].mbr), "double delete");
        tree.validate(49, false).unwrap();
    }

    #[test]
    fn delete_everything_leaves_a_valid_empty_tree() {
        let objs = random_objects(90, 23);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        for o in &objs {
            assert!(tree.delete(o.id, &o.mbr));
        }
        assert_eq!(tree.object_count(), 0);
        tree.validate(0, false).unwrap();
        assert!(crate::query::range_query(&tree, &Rect::UNIT).is_empty());
        // And the tree is reusable.
        tree.insert(&objs[0]);
        tree.validate(1, false).unwrap();
    }

    #[test]
    fn delete_shrinks_height_eventually() {
        let objs = random_objects(300, 24);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        let h0 = tree.height();
        assert!(h0 >= 3);
        for o in &objs[..290] {
            tree.delete(o.id, &o.mbr);
        }
        tree.validate(10, false).unwrap();
        assert!(
            tree.height() < h0,
            "height should shrink after mass deletion"
        );
    }

    #[test]
    fn interleaved_insert_delete_stays_valid() {
        let objs = random_objects(400, 25);
        let mut tree = RTree::new(RTreeConfig::small());
        let mut live = std::collections::HashSet::new();
        let mut rng = SmallRng::seed_from_u64(26);
        for o in &objs {
            tree.insert(o);
            live.insert(o.id);
            if rng.random_bool(0.4) && live.len() > 5 {
                // Delete a random live object.
                let victim = *live.iter().next().unwrap();
                let vo = &objs[victim.0 as usize];
                assert!(tree.delete(vo.id, &vo.mbr));
                live.remove(&victim);
            }
        }
        tree.validate(live.len(), false).unwrap();
        let found = crate::query::range_query(&tree, &Rect::UNIT);
        assert_eq!(found.len(), live.len());
    }

    #[test]
    fn cloned_tree_shares_untouched_nodes() {
        // The copy-on-write contract: after a clone, a single insert must
        // copy only the touched spine (target leaf + refreshed ancestors +
        // any split fallout), leaving the bulk of the slab shared.
        let objs = random_objects(600, 31);
        let base = RTree::bulk_load(RTreeConfig::small(), &objs);
        let mut next = base.clone();
        assert_eq!(
            base.shared_node_slots(&next),
            base.slab_len(),
            "a fresh clone shares every slot"
        );
        next.insert(&SpatialObject {
            id: ObjectId(9000),
            mbr: Rect::from_point(Point::new(0.31, 0.62)),
            size_bytes: 10,
        });
        let shared = base.shared_node_slots(&next);
        let copied = base.slab_len() - shared;
        assert!(copied >= 1, "the insert must have copied its leaf");
        assert!(
            copied <= 4 * next.height() as usize + 8,
            "one insert copied {copied} of {} nodes — CoW is not sharing",
            base.slab_len()
        );
        // Both trees stay independently valid.
        base.validate(600, false).unwrap();
        next.validate(601, false).unwrap();
        // A delete after the clone behaves the same way.
        let mut pruned = base.clone();
        assert!(pruned.delete(objs[0].id, &objs[0].mbr));
        let shared = base.shared_node_slots(&pruned);
        assert!(base.slab_len() - shared <= 4 * base.height() as usize + 8);
        base.validate(600, false).unwrap();
        pruned.validate(599, false).unwrap();
    }

    #[test]
    fn cloned_tree_shares_untouched_chunks() {
        // Pointer-table sharing: with the slab spanning multiple 1024-slot
        // segments, an insert after a clone must copy only the segments the
        // touched spine lands in, leaving whole segments shared.
        let objs = random_objects(9000, 33);
        let base = RTree::bulk_load(RTreeConfig::small(), &objs);
        assert!(
            base.node_chunk_count() >= 2,
            "need a multi-segment slab for this test (got {} nodes)",
            base.slab_len()
        );
        let mut next = base.clone();
        assert_eq!(
            base.shared_node_chunks(&next),
            base.node_chunk_count(),
            "a fresh clone shares every segment"
        );
        next.insert(&SpatialObject {
            id: ObjectId(90000),
            mbr: Rect::from_point(Point::new(0.44, 0.17)),
            size_bytes: 10,
        });
        let copied_slots = base.slab_len() - base.shared_node_slots(&next);
        let copied_chunks = base.node_chunk_count() - base.shared_node_chunks(&next);
        assert!(
            copied_chunks >= 1 && copied_chunks <= copied_slots,
            "{copied_chunks} segments copied for {copied_slots} touched slots"
        );
        assert!(
            base.shared_node_chunks(&next) >= base.node_chunk_count().saturating_sub(copied_slots),
            "untouched segments must stay shared ({}/{} shared)",
            base.shared_node_chunks(&next),
            base.node_chunk_count()
        );
        base.validate(9000, false).unwrap();
        next.validate(9001, false).unwrap();
    }

    #[test]
    fn degenerate_chain_is_structurally_valid() {
        let tree = RTree::degenerate_chain(RTreeConfig::small(), 500);
        assert_eq!(tree.height(), 500);
        tree.validate(1, false).unwrap();
    }

    #[test]
    fn dirty_tracking_reports_changed_nodes() {
        let objs = random_objects(120, 27);
        let mut tree = RTree::bulk_load(RTreeConfig::small(), &objs);
        assert!(tree.take_dirty().is_empty(), "bulk load reports no dirt");
        let extra = SpatialObject {
            id: ObjectId(500),
            mbr: Rect::from_point(Point::new(0.5, 0.5)),
            size_bytes: 10,
        };
        tree.insert(&extra);
        let dirty = tree.take_dirty();
        assert!(!dirty.is_empty(), "insert must dirty the target leaf");
        assert!(tree.take_dirty().is_empty(), "take drains");
        tree.delete(extra.id, &extra.mbr);
        assert!(!tree.take_dirty().is_empty(), "delete must dirty the leaf");
    }
}
