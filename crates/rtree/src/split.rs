//! The R* split algorithm (Beckmann et al.), shared by dynamic node splits
//! and by binary-partition-tree construction (§4.2 uses "the R-tree node
//! splitting algorithm to assure minimal overlap between the MBRs of the
//! two subsets").

use pc_geom::Rect;

/// Splits `rects` into two index groups, each of size at least `m`, using
/// the R* heuristic: pick the axis (and sort direction) with minimum total
/// margin over all candidate distributions, then within it the distribution
/// with minimum overlap, ties broken by minimum combined area.
///
/// # Panics
/// Panics unless `1 <= m` and `2 * m <= rects.len()`.
pub(crate) fn rstar_split(rects: &[Rect], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    assert!(m >= 1 && 2 * m <= n, "invalid split bounds: n={n}, m={m}");

    // Best candidate over all (axis, sort-direction) orderings, compared by
    // (total margin, overlap, area) lexicographically.
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut best_split: Option<(Vec<usize>, usize)> = None;

    for axis in 0..2usize {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                sort_key(&rects[a], axis, by_upper)
                    .partial_cmp(&sort_key(&rects[b], axis, by_upper))
                    .unwrap()
            });

            // Prefix/suffix MBRs make every distribution O(1).
            let mut prefix = Vec::with_capacity(n);
            let mut acc = rects[order[0]];
            prefix.push(acc);
            for &i in &order[1..] {
                acc = acc.union(&rects[i]);
                prefix.push(acc);
            }
            let mut suffix = vec![rects[order[n - 1]]; n];
            for i in (0..n - 1).rev() {
                suffix[i] = rects[order[i]].union(&suffix[i + 1]);
            }

            let mut margin_sum = 0.0;
            let mut local_best = (f64::INFINITY, f64::INFINITY, 0usize); // (overlap, area, k)
            for k in m..=n - m {
                let g1 = prefix[k - 1];
                let g2 = suffix[k];
                margin_sum += g1.margin() + g2.margin();
                let overlap = g1.overlap_area(&g2);
                let area = g1.area() + g2.area();
                if (overlap, area) < (local_best.0, local_best.1) {
                    local_best = (overlap, area, k);
                }
            }
            let key = (margin_sum, local_best.0, local_best.1);
            if key < best_key {
                best_key = key;
                best_split = Some((order, local_best.2));
            }
        }
    }

    let (order, k) = best_split.expect("split must find a distribution");
    (order[..k].to_vec(), order[k..].to_vec())
}

fn sort_key(r: &Rect, axis: usize, by_upper: bool) -> f64 {
    match (axis, by_upper) {
        (0, false) => r.min.x,
        (0, true) => r.max.x,
        (1, false) => r.min.y,
        (1, true) => r.max.y,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects_grid(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 0.1;
                let y = (i / 10) as f64 * 0.1;
                Rect::from_coords(x, y, x + 0.05, y + 0.05)
            })
            .collect()
    }

    #[test]
    fn split_is_a_partition() {
        let rects = rects_grid(20);
        let (l, r) = rstar_split(&rects, 5);
        assert_eq!(l.len() + r.len(), 20);
        let mut all: Vec<usize> = l.iter().chain(r.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        assert!(l.len() >= 5 && r.len() >= 5);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two far-apart clusters must end up in different groups.
        let mut rects = Vec::new();
        for i in 0..5 {
            let d = i as f64 * 0.01;
            rects.push(Rect::from_coords(d, d, d + 0.01, d + 0.01));
        }
        for i in 0..5 {
            let d = 0.9 + i as f64 * 0.01;
            rects.push(Rect::from_coords(d, d, d + 0.01, d + 0.01));
        }
        let (l, r) = rstar_split(&rects, 2);
        let lset: std::collections::HashSet<_> = l.iter().copied().collect();
        let l_is_low = (0..5).all(|i| lset.contains(&i)) && l.len() == 5;
        let r_is_low = (0..5).all(|i| !lset.contains(&i)) && r.len() == 5;
        assert!(l_is_low || r_is_low, "clusters were mixed: {l:?} / {r:?}");
    }

    #[test]
    fn split_minimum_group_size_respected() {
        let rects = rects_grid(7);
        let (l, r) = rstar_split(&rects, 3);
        assert!(l.len() >= 3 && r.len() >= 3);
        assert_eq!(l.len() + r.len(), 7);
    }

    #[test]
    fn split_two_items() {
        let rects = vec![
            Rect::from_coords(0.0, 0.0, 0.1, 0.1),
            Rect::from_coords(0.8, 0.8, 0.9, 0.9),
        ];
        let (l, r) = rstar_split(&rects, 1);
        assert_eq!(l.len(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn split_zero_area_rects() {
        // Degenerate (point) rectangles must not break the heuristic.
        let rects: Vec<Rect> = (0..6)
            .map(|i| Rect::from_point(pc_geom::Point::new(i as f64 * 0.1, 0.5)))
            .collect();
        let (l, r) = rstar_split(&rects, 2);
        assert_eq!(l.len() + r.len(), 6);
        assert!(l.len() >= 2 && r.len() >= 2);
    }

    #[test]
    #[should_panic(expected = "invalid split bounds")]
    fn split_rejects_undersized_input() {
        let rects = vec![Rect::from_coords(0.0, 0.0, 0.1, 0.1)];
        rstar_split(&rects, 1);
    }
}
