//! Client ↔ server wire protocol and byte accounting.
//!
//! Every metric in the paper's evaluation (uplink/downlink bytes, response
//! time, hit rates) is a function of the bytes these message types occupy
//! on the 384 Kbps channel, so the accounting rules live here, next to the
//! types, and are used consistently by the proactive client, the server and
//! both baselines.
//!
//! Sizes use fixed per-record costs (an MBR is four 8-byte coordinates, a
//! pointer/id is 8 bytes, …). The absolute constants only scale the
//! results; all comparisons in the paper are *relative* across caching
//! models that share these rules.
//!
//! These sizes are not just a model: the `pc_wire` crate encodes every
//! envelope into real length-prefixed frames whose body length equals
//! `wire_bytes()` exactly (framing overhead itemized separately), and the
//! TCP loopback transport (`pc_server::wire`) cross-checks measured frame
//! bytes against these constants on every run. Changing a constant here
//! without the matching codec change fails the reconciliation pins.

use crate::bpt::Code;
use crate::{NodeId, ObjectId, SpatialObject};
use pc_geom::{Point, Rect};

/// Disk page size of the R*-tree (§6.1: "a page capacity of 4 KB").
pub const PAGE_BYTES: u64 = 4096;
/// One `(MBR, pointer)` entry: 4 × 8-byte coordinates + 8-byte pointer.
pub const ENTRY_BYTES: u64 = 40;
/// Per-node page header (level, count, parent).
pub const NODE_HEADER_BYTES: u64 = 16;
/// Per-object transmission header: id + payload length + MBR.
pub const OBJECT_HEADER_BYTES: u64 = 40;
/// A query descriptor (type tag + window/center/threshold + k).
pub const QUERY_DESC_BYTES: u64 = 64;
/// One serialized heap entry of a remainder query: cell/object reference +
/// MBR + priority key + flags.
pub const HEAP_ENTRY_BYTES: u64 = 48;
/// A serialized heap *pair* (join): two sides + key.
pub const HEAP_PAIR_BYTES: u64 = 88;
/// Server confirmation that a client-cached object is a result (id only).
pub const CONFIRM_BYTES: u64 = 8;
/// One join result pair (two ids).
pub const PAIR_BYTES: u64 = 8;
/// One object id in a page-cache uplink manifest.
pub const OBJECT_ID_BYTES: u64 = 4;
/// Header of a per-node index shipment (node id, level, parent, count).
pub const SHIPMENT_HEADER_BYTES: u64 = 16;
/// A §4.3 false-miss-rate report on the uplink: the rate (8 bytes) plus the
/// reporting-window tag.
pub const FMR_REPORT_BYTES: u64 = 12;
/// The server's answer to an fmr report: the resolution byte `D` (§4.3).
pub const FMR_REPLY_BYTES: u64 = 1;
/// A client's disconnect/forget notice (type tag only).
pub const FORGET_BYTES: u64 = 4;
/// The server's one-byte acknowledgement of a forget notice.
pub const FORGET_ACK_BYTES: u64 = 1;
/// An epoch stamp on a version-aware remainder (§7 invalidation protocol).
pub const EPOCH_BYTES: u64 = 8;
/// One invalidated node id piggybacked on a versioned reply.
pub const INVALIDATION_BYTES: u64 = 8;
/// A full-refresh refusal: type tag plus the current epoch stamp. Sent when
/// the client's epoch fell below the server's pruned invalidation horizon,
/// so no per-node list can be enumerated honestly.
pub const FULL_REFRESH_BYTES: u64 = 4 + EPOCH_BYTES;
/// Header of a per-shard epoch vector (shard count; the entries are
/// [`EPOCH_BYTES`] each).
pub const EPOCH_VECTOR_HEADER_BYTES: u64 = 4;
/// Header of one router → shard sub-query (shard id + type tag); the
/// remainder payload is sized like any uplink remainder.
pub const SHARD_SUB_HEADER_BYTES: u64 = 8;

/// A spatial query, the three types of §6.1 ("randomly selected from range,
/// kNN, and join").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// Window query centered on the client ("the window of a range query is
    /// centered at client's current position").
    Range { window: Rect },
    /// k-nearest-neighbor query from `center`.
    Knn { center: Point, k: u32 },
    /// Distance self-join: all object pairs closer than `dist`.
    Join { dist: f64 },
}

impl QuerySpec {
    /// Priority-queue key for an MBR under this query (mindist for kNN,
    /// order-irrelevant zero for range; join keys pairs, see
    /// [`pair_key`]).
    #[inline]
    pub fn key_for(&self, mbr: &Rect) -> f64 {
        match self {
            QuerySpec::Range { .. } => 0.0,
            QuerySpec::Knn { center, .. } => mbr.min_dist(center),
            QuerySpec::Join { .. } => 0.0,
        }
    }

    /// Whether an MBR can contribute results to this (non-join) query.
    #[inline]
    pub fn qualifies(&self, mbr: &Rect) -> bool {
        match self {
            QuerySpec::Range { window } => window.intersects(mbr),
            QuerySpec::Knn { .. } => true,
            QuerySpec::Join { .. } => true,
        }
    }

    pub fn is_join(&self) -> bool {
        matches!(self, QuerySpec::Join { .. })
    }
}

/// Priority key for a candidate pair of a distance join.
#[inline]
pub fn pair_key(a: &Rect, b: &Rect) -> f64 {
    a.min_dist_rect(b)
}

/// Reference to a BPT cell: the paper's `(n, code)` super-entry id. The
/// root cell `(n, ε)` denotes the whole node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellRef {
    pub node: NodeId,
    pub code: Code,
}

impl CellRef {
    pub fn node_root(node: NodeId) -> CellRef {
        CellRef {
            node,
            code: Code::ROOT,
        }
    }
}

impl std::fmt::Display for CellRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.node, self.code)
    }
}

/// One side of a traversal frontier: a cell (node subset) or an object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Side {
    Cell {
        cell: CellRef,
        mbr: Rect,
    },
    Obj {
        id: ObjectId,
        mbr: Rect,
        /// Whether the *client* holds the object's payload. Set by the
        /// client view during expansion and preserved across the wire so
        /// the server can skip retransmission (a paper Example 3.1
        /// "confirmed without download" case).
        cached: bool,
    },
}

impl Side {
    #[inline]
    pub fn mbr(&self) -> Rect {
        match self {
            Side::Cell { mbr, .. } | Side::Obj { mbr, .. } => *mbr,
        }
    }

    #[inline]
    pub fn is_obj(&self) -> bool {
        matches!(self, Side::Obj { .. })
    }
}

/// A serialized heap entry of a remainder query: the paper ships the whole
/// execution state `H`, so entries are either single frontier items
/// (range/kNN) or frontier pairs (join).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeapEntry {
    Single(Side),
    Pair(Side, Side),
}

impl HeapEntry {
    /// Bytes this entry occupies on the uplink.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            HeapEntry::Single(_) => HEAP_ENTRY_BYTES,
            HeapEntry::Pair(..) => HEAP_PAIR_BYTES,
        }
    }

    /// Whether the entry is a leaf entry in the paper's sense (an object,
    /// or an object pair).
    pub fn is_leaf(&self) -> bool {
        match self {
            HeapEntry::Single(s) => s.is_obj(),
            HeapEntry::Pair(a, b) => a.is_obj() && b.is_obj(),
        }
    }
}

/// The remainder query `Qr = {Q, H}` (§3.3): the original query plus the
/// priority-queue state at the point the client ran out of local index.
#[derive(Clone, Debug, PartialEq)]
pub struct RemainderQuery {
    pub spec: QuerySpec,
    /// Results already confirmed locally (the paper's `m`); for kNN the
    /// server answers a `(k - m)`-NN over `heap`.
    pub already_found: u32,
    /// `(priority key, entry)` pairs, in no particular order (the server
    /// re-heapifies).
    pub heap: Vec<(f64, HeapEntry)>,
}

impl RemainderQuery {
    /// Uplink cost of submitting this remainder.
    pub fn uplink_bytes(&self) -> u64 {
        QUERY_DESC_BYTES + self.heap.iter().map(|(_, e)| e.wire_bytes()).sum::<u64>()
    }
}

/// What a shipped cell record points at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellKind {
    /// A super entry — expandable only by asking the server again.
    Super,
    /// A full entry pointing at a child node.
    Node(NodeId),
    /// A full leaf entry pointing at an object.
    Object(ObjectId),
}

/// One cell of a node shipment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRecord {
    pub code: Code,
    pub mbr: Rect,
    pub kind: CellKind,
}

/// The supporting-index shipment for one R-tree node: a covering antichain
/// of its BPT (a full form, normal compact form, or d⁺-level compact form —
/// the engine cannot tell and does not care).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeShipment {
    pub node: NodeId,
    pub level: u16,
    /// R-tree parent, shipped so the client cache can maintain the item
    /// hierarchy of §5.2 (metadata (5)).
    pub parent: Option<NodeId>,
    pub cells: Vec<CellRecord>,
}

impl NodeShipment {
    pub fn wire_bytes(&self) -> u64 {
        SHIPMENT_HEADER_BYTES + self.cells.len() as u64 * ENTRY_BYTES
    }
}

/// The server's reply to a remainder query: result objects `Rr` plus the
/// supporting index `Ir` (§3.2), with byte-free confirmations for results
/// the client already caches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerReply {
    /// Result objects the client holds already — ids only, no payload.
    pub confirmed: Vec<ObjectId>,
    /// Result objects with payload transmission.
    pub objects: Vec<SpatialObject>,
    /// Join result pairs discovered at the server.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Supporting index `Ir`.
    pub index: Vec<NodeShipment>,
    /// Server-side cell expansions (CPU accounting for Fig. 9 / §6.4).
    pub expansions: u64,
}

impl ServerReply {
    /// Payload bytes of transmitted result objects.
    pub fn object_bytes(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| OBJECT_HEADER_BYTES + o.size_bytes as u64)
            .sum()
    }

    /// Bytes of the supporting index.
    pub fn index_bytes(&self) -> u64 {
        self.index.iter().map(|s| s.wire_bytes()).sum()
    }

    /// Total downlink bytes.
    pub fn downlink_bytes(&self) -> u64 {
        self.confirmed.len() as u64 * CONFIRM_BYTES
            + self.object_bytes()
            + self.pairs.len() as u64 * PAIR_BYTES
            + self.index_bytes()
    }
}

/// A direct (uncached) query's answer: result ids plus join pairs. The
/// payload-vs-confirmation split is *not* decided here — clients that ship
/// an id manifest (PAG) negotiate transmission from their own cache state —
/// so the wire size of this reply is the id/pair lists alone.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DirectReply {
    /// Result object ids, in confirmation (pop) order.
    pub results: Vec<ObjectId>,
    /// Join result pairs, canonical (`small id, large id`) order.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Server-side cell expansions (CPU accounting).
    pub expansions: u64,
}

impl DirectReply {
    /// Downlink bytes of the id/pair lists.
    pub fn wire_bytes(&self) -> u64 {
        self.results.len() as u64 * OBJECT_ID_BYTES + self.pairs.len() as u64 * PAIR_BYTES
    }
}

/// Reply of the version-aware remainder protocol (§7 invalidation
/// extension): every contact piggybacks the changed-node list and the
/// current epoch; a behind-epoch resume is refused outright.
#[derive(Clone, Debug, PartialEq)]
pub enum VersionedReply {
    /// The resume is valid; `invalidate` lists nodes changed since the
    /// client's epoch (piggybacked; the client drops its stale copies).
    Fresh {
        reply: ServerReply,
        invalidate: Vec<NodeId>,
        epoch: u64,
    },
    /// The remainder referenced changed nodes: the client must invalidate
    /// and re-run stage ① against its cleaned cache.
    Stale { invalidate: Vec<NodeId>, epoch: u64 },
    /// The client's epoch fell below the server's pruned invalidation
    /// horizon (the update log forgets history below the fleet's low-water
    /// mark): no per-node invalidation list can be enumerated honestly, so
    /// the client must drop its *entire* cache, re-sync its catalog and
    /// resubmit. The refusal itself is a fixed-size message
    /// ([`FULL_REFRESH_BYTES`]); the cost of re-warming the cache is paid
    /// — and accounted — on the queries that follow.
    FullRefresh { epoch: u64 },
}

impl VersionedReply {
    /// Downlink bytes: the inner reply (when fresh) plus the invalidation
    /// list and the epoch stamp; a full-refresh refusal is fixed-size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            VersionedReply::Fresh {
                reply, invalidate, ..
            } => {
                reply.downlink_bytes() + invalidate.len() as u64 * INVALIDATION_BYTES + EPOCH_BYTES
            }
            VersionedReply::Stale { invalidate, .. } => {
                invalidate.len() as u64 * INVALIDATION_BYTES + EPOCH_BYTES
            }
            VersionedReply::FullRefresh { .. } => FULL_REFRESH_BYTES,
        }
    }
}

// ---------------------------------------------------------------------
// Cluster backplane envelopes
// ---------------------------------------------------------------------

/// Per-shard epoch stamps carried on the cluster backplane: entry `i` is
/// the epoch shard `i`'s reply was answered at, so staleness is decided
/// per shard instead of globally (an update landing in shard 3 never
/// refuses a query that only touched shard 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochVector {
    pub epochs: Vec<u64>,
}

impl EpochVector {
    /// Wire bytes: the shard-count header plus one epoch stamp per shard.
    pub fn wire_bytes(&self) -> u64 {
        EPOCH_VECTOR_HEADER_BYTES + self.epochs.len() as u64 * EPOCH_BYTES
    }
}

/// One router → shard leg of a scattered remainder: the sub-heap of the
/// client's frontier that this shard owns, re-addressed into the shard's
/// local node-id space.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSubRequest {
    /// Index of the target shard in the cluster's shard map.
    pub shard: u32,
    pub query: RemainderQuery,
}

impl ShardSubRequest {
    /// Backplane bytes of this leg: routing header plus the sub-query,
    /// sized exactly like a client uplink remainder.
    pub fn wire_bytes(&self) -> u64 {
        SHARD_SUB_HEADER_BYTES + self.query.uplink_bytes()
    }
}

/// One shard → router leg of a gathered remainder: the shard's partial
/// reply stamped with the epoch vector entry it was answered at. The
/// router merges these into one client-facing [`ServerReply`],
/// deduplicating objects that straddle tile boundaries so each object is
/// wire-charged exactly once on the client channel.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSubReply {
    pub shard: u32,
    pub epochs: EpochVector,
    pub reply: ServerReply,
}

impl ShardSubReply {
    /// Backplane bytes of this leg: routing header, epoch vector and the
    /// partial reply at its client-downlink size (before router dedup).
    pub fn wire_bytes(&self) -> u64 {
        SHARD_SUB_HEADER_BYTES + self.epochs.wire_bytes() + self.reply.downlink_bytes()
    }
}

// ---------------------------------------------------------------------
// Request/reply envelopes
// ---------------------------------------------------------------------

/// Everything a client can ask the server over the 384 Kbps channel — the
/// typed uplink surface behind the `Transport` seam (`pc_server`). Each
/// variant sizes itself with the same per-record constants as the payload
/// types it wraps, so the byte ledger can account control traffic (fmr
/// reports, disconnects) exactly like query traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Stage ② of Fig. 3: resume a remainder query `Qr = {Q, H}`.
    Remainder(RemainderQuery),
    /// A remainder stamped with the client's last-synced epoch (§7).
    RemainderVersioned { query: RemainderQuery, epoch: u64 },
    /// Evaluate a query from scratch (no client-side index): the PAG/SEM
    /// protocols and the simulator's ground-truth oracle.
    Direct(QuerySpec),
    /// The periodic §4.3 false-miss-rate report.
    ReportFmr { fmr: f64 },
    /// Drop this client's adaptive state (disconnect).
    Forget,
}

impl Request {
    /// Uplink bytes this request occupies.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Request::Remainder(rq) => rq.uplink_bytes(),
            Request::RemainderVersioned { query, .. } => query.uplink_bytes() + EPOCH_BYTES,
            Request::Direct(_) => QUERY_DESC_BYTES,
            Request::ReportFmr { .. } => FMR_REPORT_BYTES,
            Request::Forget => FORGET_BYTES,
        }
    }

    /// Short label for traces and panic messages.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Remainder(_) => "remainder",
            Request::RemainderVersioned { .. } => "remainder-versioned",
            Request::Direct(_) => "direct",
            Request::ReportFmr { .. } => "report-fmr",
            Request::Forget => "forget",
        }
    }
}

/// The server's answer to a [`Request`] — one variant per request variant,
/// in the same order. A transport returning a mismatched variant is a
/// protocol violation (the `into_*` accessors panic on it).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Remainder`].
    Remainder(ServerReply),
    /// Answer to [`Request::RemainderVersioned`].
    Versioned(VersionedReply),
    /// Answer to [`Request::Direct`].
    Direct(DirectReply),
    /// Answer to [`Request::ReportFmr`]: the resolution byte `D` (the new
    /// d⁺-level the server will use for this client).
    NewD(u8),
    /// Answer to [`Request::Forget`]: whether state was tracked.
    Forgotten(bool),
}

impl Response {
    /// Downlink bytes this response occupies.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Response::Remainder(reply) => reply.downlink_bytes(),
            Response::Versioned(v) => v.wire_bytes(),
            Response::Direct(d) => d.wire_bytes(),
            Response::NewD(_) => FMR_REPLY_BYTES,
            Response::Forgotten(_) => FORGET_ACK_BYTES,
        }
    }

    fn violation(&self, want: &'static str) -> ! {
        let got = match self {
            Response::Remainder(_) => "remainder",
            Response::Versioned(_) => "remainder-versioned",
            Response::Direct(_) => "direct",
            Response::NewD(_) => "report-fmr",
            Response::Forgotten(_) => "forget",
        };
        panic!("transport protocol violation: expected a {want} response, got {got}")
    }

    pub fn into_remainder(self) -> ServerReply {
        match self {
            Response::Remainder(reply) => reply,
            other => other.violation("remainder"),
        }
    }

    pub fn into_versioned(self) -> VersionedReply {
        match self {
            Response::Versioned(v) => v,
            other => other.violation("remainder-versioned"),
        }
    }

    pub fn into_direct(self) -> DirectReply {
        match self {
            Response::Direct(d) => d,
            other => other.violation("direct"),
        }
    }

    pub fn into_new_d(self) -> u8 {
        match self {
            Response::NewD(d) => d,
            other => other.violation("report-fmr"),
        }
    }

    pub fn into_forgotten(self) -> bool {
        match self {
            Response::Forgotten(b) => b,
            other => other.violation("forget"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_keys() {
        let knn = QuerySpec::Knn {
            center: Point::new(0.0, 0.0),
            k: 3,
        };
        let r = Rect::from_coords(3.0, 4.0, 5.0, 6.0);
        assert_eq!(knn.key_for(&r), 5.0);
        let range = QuerySpec::Range {
            window: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        };
        assert_eq!(range.key_for(&r), 0.0);
    }

    #[test]
    fn range_qualification_uses_window() {
        let range = QuerySpec::Range {
            window: Rect::from_coords(0.0, 0.0, 0.5, 0.5),
        };
        assert!(range.qualifies(&Rect::from_coords(0.4, 0.4, 0.6, 0.6)));
        assert!(!range.qualifies(&Rect::from_coords(0.6, 0.6, 0.7, 0.7)));
        let knn = QuerySpec::Knn {
            center: Point::ORIGIN,
            k: 1,
        };
        assert!(knn.qualifies(&Rect::from_coords(0.9, 0.9, 1.0, 1.0)));
    }

    #[test]
    fn remainder_uplink_bytes_sum_entries() {
        let side = Side::Cell {
            cell: CellRef::node_root(NodeId(1)),
            mbr: Rect::UNIT,
        };
        let rq = RemainderQuery {
            spec: QuerySpec::Join { dist: 0.1 },
            already_found: 0,
            heap: vec![
                (0.0, HeapEntry::Single(side)),
                (0.1, HeapEntry::Pair(side, side)),
            ],
        };
        assert_eq!(
            rq.uplink_bytes(),
            QUERY_DESC_BYTES + HEAP_ENTRY_BYTES + HEAP_PAIR_BYTES
        );
    }

    #[test]
    fn cluster_backplane_byte_accounting() {
        let vector = EpochVector {
            epochs: vec![3, 0, 7],
        };
        assert_eq!(
            vector.wire_bytes(),
            EPOCH_VECTOR_HEADER_BYTES + 3 * EPOCH_BYTES
        );
        let side = Side::Cell {
            cell: CellRef::node_root(NodeId(1)),
            mbr: Rect::UNIT,
        };
        let query = RemainderQuery {
            spec: QuerySpec::Range { window: Rect::UNIT },
            already_found: 2,
            heap: vec![(0.0, HeapEntry::Single(side))],
        };
        let sub = ShardSubRequest { shard: 1, query };
        assert_eq!(
            sub.wire_bytes(),
            SHARD_SUB_HEADER_BYTES + QUERY_DESC_BYTES + HEAP_ENTRY_BYTES
        );
        let reply = ServerReply {
            confirmed: vec![ObjectId(1)],
            ..ServerReply::default()
        };
        let gathered = ShardSubReply {
            shard: 1,
            epochs: vector,
            reply: reply.clone(),
        };
        assert_eq!(
            gathered.wire_bytes(),
            SHARD_SUB_HEADER_BYTES
                + EPOCH_VECTOR_HEADER_BYTES
                + 3 * EPOCH_BYTES
                + reply.downlink_bytes()
        );
    }

    #[test]
    fn heap_entry_leaf_detection() {
        let cell = Side::Cell {
            cell: CellRef::node_root(NodeId(0)),
            mbr: Rect::UNIT,
        };
        let obj = Side::Obj {
            id: ObjectId(4),
            mbr: Rect::UNIT,
            cached: false,
        };
        assert!(!HeapEntry::Single(cell).is_leaf());
        assert!(HeapEntry::Single(obj).is_leaf());
        assert!(HeapEntry::Pair(obj, obj).is_leaf());
        assert!(!HeapEntry::Pair(obj, cell).is_leaf());
    }

    #[test]
    fn reply_byte_accounting() {
        let reply = ServerReply {
            confirmed: vec![ObjectId(1), ObjectId(2)],
            objects: vec![SpatialObject {
                id: ObjectId(3),
                mbr: Rect::UNIT,
                size_bytes: 1000,
            }],
            pairs: vec![(ObjectId(1), ObjectId(3))],
            index: vec![NodeShipment {
                node: NodeId(0),
                level: 1,
                parent: None,
                cells: vec![
                    CellRecord {
                        code: Code::ROOT,
                        mbr: Rect::UNIT,
                        kind: CellKind::Super,
                    };
                    3
                ],
            }],
            expansions: 7,
        };
        assert_eq!(reply.object_bytes(), OBJECT_HEADER_BYTES + 1000);
        assert_eq!(reply.index_bytes(), SHIPMENT_HEADER_BYTES + 3 * ENTRY_BYTES);
        assert_eq!(
            reply.downlink_bytes(),
            2 * CONFIRM_BYTES
                + (OBJECT_HEADER_BYTES + 1000)
                + PAIR_BYTES
                + (SHIPMENT_HEADER_BYTES + 3 * ENTRY_BYTES)
        );
    }

    fn sample_remainder() -> RemainderQuery {
        let side = Side::Cell {
            cell: CellRef::node_root(NodeId(1)),
            mbr: Rect::UNIT,
        };
        RemainderQuery {
            spec: QuerySpec::Join { dist: 0.1 },
            already_found: 0,
            heap: vec![
                (0.0, HeapEntry::Single(side)),
                (0.1, HeapEntry::Pair(side, side)),
            ],
        }
    }

    #[test]
    fn request_envelopes_size_like_their_payloads() {
        let rq = sample_remainder();
        assert_eq!(
            Request::Remainder(rq.clone()).wire_bytes(),
            rq.uplink_bytes()
        );
        assert_eq!(
            Request::RemainderVersioned {
                query: rq.clone(),
                epoch: 3
            }
            .wire_bytes(),
            rq.uplink_bytes() + EPOCH_BYTES
        );
        assert_eq!(
            Request::Direct(QuerySpec::Join { dist: 0.1 }).wire_bytes(),
            QUERY_DESC_BYTES
        );
        assert_eq!(
            Request::ReportFmr { fmr: 0.5 }.wire_bytes(),
            FMR_REPORT_BYTES
        );
        assert_eq!(Request::Forget.wire_bytes(), FORGET_BYTES);
    }

    #[test]
    fn response_envelopes_size_like_their_payloads() {
        let reply = ServerReply {
            confirmed: vec![ObjectId(1)],
            objects: vec![SpatialObject {
                id: ObjectId(2),
                mbr: Rect::UNIT,
                size_bytes: 500,
            }],
            ..Default::default()
        };
        assert_eq!(
            Response::Remainder(reply.clone()).wire_bytes(),
            reply.downlink_bytes()
        );
        let fresh = VersionedReply::Fresh {
            reply: reply.clone(),
            invalidate: vec![NodeId(4), NodeId(5)],
            epoch: 9,
        };
        assert_eq!(
            Response::Versioned(fresh).wire_bytes(),
            reply.downlink_bytes() + 2 * INVALIDATION_BYTES + EPOCH_BYTES
        );
        let stale = VersionedReply::Stale {
            invalidate: vec![NodeId(4)],
            epoch: 9,
        };
        assert_eq!(
            Response::Versioned(stale).wire_bytes(),
            INVALIDATION_BYTES + EPOCH_BYTES
        );
        let refresh = VersionedReply::FullRefresh { epoch: 9 };
        assert_eq!(
            Response::Versioned(refresh).wire_bytes(),
            FULL_REFRESH_BYTES,
            "full-refresh refusals are fixed-size"
        );
        let direct = DirectReply {
            results: vec![ObjectId(1), ObjectId(2), ObjectId(3)],
            pairs: vec![(ObjectId(1), ObjectId(2))],
            expansions: 0,
        };
        assert_eq!(
            Response::Direct(direct).wire_bytes(),
            3 * OBJECT_ID_BYTES + PAIR_BYTES
        );
        assert_eq!(Response::NewD(3).wire_bytes(), FMR_REPLY_BYTES);
        assert_eq!(Response::Forgotten(true).wire_bytes(), FORGET_ACK_BYTES);
    }

    #[test]
    fn response_accessors_unwrap_matching_variants() {
        assert_eq!(Response::NewD(5).into_new_d(), 5);
        assert!(Response::Forgotten(true).into_forgotten());
        assert_eq!(
            Response::Direct(DirectReply::default()).into_direct(),
            DirectReply::default()
        );
        assert_eq!(
            Response::Remainder(ServerReply::default()).into_remainder(),
            ServerReply::default()
        );
    }

    #[test]
    #[should_panic(expected = "transport protocol violation")]
    fn mismatched_response_variant_panics() {
        Response::NewD(1).into_remainder();
    }
}
