//! Client ↔ server wire protocol and byte accounting.
//!
//! Every metric in the paper's evaluation (uplink/downlink bytes, response
//! time, hit rates) is a function of the bytes these message types occupy
//! on the 384 Kbps channel, so the accounting rules live here, next to the
//! types, and are used consistently by the proactive client, the server and
//! both baselines.
//!
//! Sizes use fixed per-record costs (an MBR is four 8-byte coordinates, a
//! pointer/id is 8 bytes, …). The absolute constants only scale the
//! results; all comparisons in the paper are *relative* across caching
//! models that share these rules.

use crate::bpt::Code;
use crate::{NodeId, ObjectId, SpatialObject};
use pc_geom::{Point, Rect};

/// Disk page size of the R*-tree (§6.1: "a page capacity of 4 KB").
pub const PAGE_BYTES: u64 = 4096;
/// One `(MBR, pointer)` entry: 4 × 8-byte coordinates + 8-byte pointer.
pub const ENTRY_BYTES: u64 = 40;
/// Per-node page header (level, count, parent).
pub const NODE_HEADER_BYTES: u64 = 16;
/// Per-object transmission header: id + payload length + MBR.
pub const OBJECT_HEADER_BYTES: u64 = 40;
/// A query descriptor (type tag + window/center/threshold + k).
pub const QUERY_DESC_BYTES: u64 = 64;
/// One serialized heap entry of a remainder query: cell/object reference +
/// MBR + priority key + flags.
pub const HEAP_ENTRY_BYTES: u64 = 48;
/// A serialized heap *pair* (join): two sides + key.
pub const HEAP_PAIR_BYTES: u64 = 88;
/// Server confirmation that a client-cached object is a result (id only).
pub const CONFIRM_BYTES: u64 = 8;
/// One join result pair (two ids).
pub const PAIR_BYTES: u64 = 8;
/// One object id in a page-cache uplink manifest.
pub const OBJECT_ID_BYTES: u64 = 4;
/// Header of a per-node index shipment (node id, level, parent, count).
pub const SHIPMENT_HEADER_BYTES: u64 = 16;

/// A spatial query, the three types of §6.1 ("randomly selected from range,
/// kNN, and join").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// Window query centered on the client ("the window of a range query is
    /// centered at client's current position").
    Range { window: Rect },
    /// k-nearest-neighbor query from `center`.
    Knn { center: Point, k: u32 },
    /// Distance self-join: all object pairs closer than `dist`.
    Join { dist: f64 },
}

impl QuerySpec {
    /// Priority-queue key for an MBR under this query (mindist for kNN,
    /// order-irrelevant zero for range; join keys pairs, see
    /// [`pair_key`]).
    #[inline]
    pub fn key_for(&self, mbr: &Rect) -> f64 {
        match self {
            QuerySpec::Range { .. } => 0.0,
            QuerySpec::Knn { center, .. } => mbr.min_dist(center),
            QuerySpec::Join { .. } => 0.0,
        }
    }

    /// Whether an MBR can contribute results to this (non-join) query.
    #[inline]
    pub fn qualifies(&self, mbr: &Rect) -> bool {
        match self {
            QuerySpec::Range { window } => window.intersects(mbr),
            QuerySpec::Knn { .. } => true,
            QuerySpec::Join { .. } => true,
        }
    }

    pub fn is_join(&self) -> bool {
        matches!(self, QuerySpec::Join { .. })
    }
}

/// Priority key for a candidate pair of a distance join.
#[inline]
pub fn pair_key(a: &Rect, b: &Rect) -> f64 {
    a.min_dist_rect(b)
}

/// Reference to a BPT cell: the paper's `(n, code)` super-entry id. The
/// root cell `(n, ε)` denotes the whole node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellRef {
    pub node: NodeId,
    pub code: Code,
}

impl CellRef {
    pub fn node_root(node: NodeId) -> CellRef {
        CellRef {
            node,
            code: Code::ROOT,
        }
    }
}

impl std::fmt::Display for CellRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.node, self.code)
    }
}

/// One side of a traversal frontier: a cell (node subset) or an object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Side {
    Cell {
        cell: CellRef,
        mbr: Rect,
    },
    Obj {
        id: ObjectId,
        mbr: Rect,
        /// Whether the *client* holds the object's payload. Set by the
        /// client view during expansion and preserved across the wire so
        /// the server can skip retransmission (a paper Example 3.1
        /// "confirmed without download" case).
        cached: bool,
    },
}

impl Side {
    #[inline]
    pub fn mbr(&self) -> Rect {
        match self {
            Side::Cell { mbr, .. } | Side::Obj { mbr, .. } => *mbr,
        }
    }

    #[inline]
    pub fn is_obj(&self) -> bool {
        matches!(self, Side::Obj { .. })
    }
}

/// A serialized heap entry of a remainder query: the paper ships the whole
/// execution state `H`, so entries are either single frontier items
/// (range/kNN) or frontier pairs (join).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeapEntry {
    Single(Side),
    Pair(Side, Side),
}

impl HeapEntry {
    /// Bytes this entry occupies on the uplink.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            HeapEntry::Single(_) => HEAP_ENTRY_BYTES,
            HeapEntry::Pair(..) => HEAP_PAIR_BYTES,
        }
    }

    /// Whether the entry is a leaf entry in the paper's sense (an object,
    /// or an object pair).
    pub fn is_leaf(&self) -> bool {
        match self {
            HeapEntry::Single(s) => s.is_obj(),
            HeapEntry::Pair(a, b) => a.is_obj() && b.is_obj(),
        }
    }
}

/// The remainder query `Qr = {Q, H}` (§3.3): the original query plus the
/// priority-queue state at the point the client ran out of local index.
#[derive(Clone, Debug, PartialEq)]
pub struct RemainderQuery {
    pub spec: QuerySpec,
    /// Results already confirmed locally (the paper's `m`); for kNN the
    /// server answers a `(k - m)`-NN over `heap`.
    pub already_found: u32,
    /// `(priority key, entry)` pairs, in no particular order (the server
    /// re-heapifies).
    pub heap: Vec<(f64, HeapEntry)>,
}

impl RemainderQuery {
    /// Uplink cost of submitting this remainder.
    pub fn uplink_bytes(&self) -> u64 {
        QUERY_DESC_BYTES + self.heap.iter().map(|(_, e)| e.wire_bytes()).sum::<u64>()
    }
}

/// What a shipped cell record points at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellKind {
    /// A super entry — expandable only by asking the server again.
    Super,
    /// A full entry pointing at a child node.
    Node(NodeId),
    /// A full leaf entry pointing at an object.
    Object(ObjectId),
}

/// One cell of a node shipment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRecord {
    pub code: Code,
    pub mbr: Rect,
    pub kind: CellKind,
}

/// The supporting-index shipment for one R-tree node: a covering antichain
/// of its BPT (a full form, normal compact form, or d⁺-level compact form —
/// the engine cannot tell and does not care).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeShipment {
    pub node: NodeId,
    pub level: u16,
    /// R-tree parent, shipped so the client cache can maintain the item
    /// hierarchy of §5.2 (metadata (5)).
    pub parent: Option<NodeId>,
    pub cells: Vec<CellRecord>,
}

impl NodeShipment {
    pub fn wire_bytes(&self) -> u64 {
        SHIPMENT_HEADER_BYTES + self.cells.len() as u64 * ENTRY_BYTES
    }
}

/// The server's reply to a remainder query: result objects `Rr` plus the
/// supporting index `Ir` (§3.2), with byte-free confirmations for results
/// the client already caches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerReply {
    /// Result objects the client holds already — ids only, no payload.
    pub confirmed: Vec<ObjectId>,
    /// Result objects with payload transmission.
    pub objects: Vec<SpatialObject>,
    /// Join result pairs discovered at the server.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Supporting index `Ir`.
    pub index: Vec<NodeShipment>,
    /// Server-side cell expansions (CPU accounting for Fig. 9 / §6.4).
    pub expansions: u64,
}

impl ServerReply {
    /// Payload bytes of transmitted result objects.
    pub fn object_bytes(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| OBJECT_HEADER_BYTES + o.size_bytes as u64)
            .sum()
    }

    /// Bytes of the supporting index.
    pub fn index_bytes(&self) -> u64 {
        self.index.iter().map(|s| s.wire_bytes()).sum()
    }

    /// Total downlink bytes.
    pub fn downlink_bytes(&self) -> u64 {
        self.confirmed.len() as u64 * CONFIRM_BYTES
            + self.object_bytes()
            + self.pairs.len() as u64 * PAIR_BYTES
            + self.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_keys() {
        let knn = QuerySpec::Knn {
            center: Point::new(0.0, 0.0),
            k: 3,
        };
        let r = Rect::from_coords(3.0, 4.0, 5.0, 6.0);
        assert_eq!(knn.key_for(&r), 5.0);
        let range = QuerySpec::Range {
            window: Rect::from_coords(0.0, 0.0, 1.0, 1.0),
        };
        assert_eq!(range.key_for(&r), 0.0);
    }

    #[test]
    fn range_qualification_uses_window() {
        let range = QuerySpec::Range {
            window: Rect::from_coords(0.0, 0.0, 0.5, 0.5),
        };
        assert!(range.qualifies(&Rect::from_coords(0.4, 0.4, 0.6, 0.6)));
        assert!(!range.qualifies(&Rect::from_coords(0.6, 0.6, 0.7, 0.7)));
        let knn = QuerySpec::Knn {
            center: Point::ORIGIN,
            k: 1,
        };
        assert!(knn.qualifies(&Rect::from_coords(0.9, 0.9, 1.0, 1.0)));
    }

    #[test]
    fn remainder_uplink_bytes_sum_entries() {
        let side = Side::Cell {
            cell: CellRef::node_root(NodeId(1)),
            mbr: Rect::UNIT,
        };
        let rq = RemainderQuery {
            spec: QuerySpec::Join { dist: 0.1 },
            already_found: 0,
            heap: vec![
                (0.0, HeapEntry::Single(side)),
                (0.1, HeapEntry::Pair(side, side)),
            ],
        };
        assert_eq!(
            rq.uplink_bytes(),
            QUERY_DESC_BYTES + HEAP_ENTRY_BYTES + HEAP_PAIR_BYTES
        );
    }

    #[test]
    fn heap_entry_leaf_detection() {
        let cell = Side::Cell {
            cell: CellRef::node_root(NodeId(0)),
            mbr: Rect::UNIT,
        };
        let obj = Side::Obj {
            id: ObjectId(4),
            mbr: Rect::UNIT,
            cached: false,
        };
        assert!(!HeapEntry::Single(cell).is_leaf());
        assert!(HeapEntry::Single(obj).is_leaf());
        assert!(HeapEntry::Pair(obj, obj).is_leaf());
        assert!(!HeapEntry::Pair(obj, cell).is_leaf());
    }

    #[test]
    fn reply_byte_accounting() {
        let reply = ServerReply {
            confirmed: vec![ObjectId(1), ObjectId(2)],
            objects: vec![SpatialObject {
                id: ObjectId(3),
                mbr: Rect::UNIT,
                size_bytes: 1000,
            }],
            pairs: vec![(ObjectId(1), ObjectId(3))],
            index: vec![NodeShipment {
                node: NodeId(0),
                level: 1,
                parent: None,
                cells: vec![
                    CellRecord {
                        code: Code::ROOT,
                        mbr: Rect::UNIT,
                        kind: CellKind::Super,
                    };
                    3
                ],
            }],
            expansions: 7,
        };
        assert_eq!(reply.object_bytes(), OBJECT_HEADER_BYTES + 1000);
        assert_eq!(reply.index_bytes(), SHIPMENT_HEADER_BYTES + 3 * ENTRY_BYTES);
        assert_eq!(
            reply.downlink_bytes(),
            2 * CONFIRM_BYTES
                + (OBJECT_HEADER_BYTES + 1000)
                + PAIR_BYTES
                + (SHIPMENT_HEADER_BYTES + 3 * ENTRY_BYTES)
        );
    }
}
