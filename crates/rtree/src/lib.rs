//! R*-tree index, binary partition trees (BPT), the generic spatial query
//! engine of the paper's §3.3, and the client↔server wire protocol.
//!
//! This crate is the substrate shared by the proactive-caching client, the
//! server, and both baselines:
//!
//! * [`RTree`] — a page-oriented R*-tree (Beckmann et al. \[2\]) with dynamic
//!   insertion (forced re-insert + R* split) and STR bulk loading.
//! * [`bpt`] — per-node **binary partition trees** (§4.2): an offline
//!   recursive R*-split of each node's entry set, giving every subset of
//!   entries a *super entry* addressed by `(NodeId, Code)`.
//! * [`engine`] — the **generic query processor** (paper Algorithm 1): one
//!   best-first loop that evaluates range, kNN and distance self-join
//!   queries over any [`engine::IndexView`], handling *missing entries* and
//!   producing remainder queries. The server runs the same engine over a
//!   complete view; the client runs it over its cache.
//! * [`proto`] — query specifications, serialized heap entries, remainder
//!   queries, server replies, and the byte-accounting rules used by every
//!   experiment metric.

pub mod bpt;
pub mod engine;
pub mod naive;
pub mod proto;
pub mod query;
mod split;
mod tree;
pub mod view;

#[cfg(test)]
mod proptests;

use pc_geom::Rect;

pub use tree::{RTree, RTreeConfig, TreeStats};

/// Identifier of a data object. Objects are numbered densely from zero so
/// stores can be plain vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of an R-tree node (slab index into [`RTree`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A spatial data object: an MBR plus a payload *size*.
///
/// Following DESIGN.md, payload bytes are accounted but never materialized —
/// every algorithm in the paper operates on ids and MBRs only, while the
/// channel model charges `size_bytes` per transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub mbr: Rect,
    pub size_bytes: u32,
}

/// What an R-tree entry points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildRef {
    Node(NodeId),
    Object(ObjectId),
}

/// One `(MBR, pointer)` slot of an R-tree node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    pub mbr: Rect,
    pub child: ChildRef,
}

/// An R-tree node. `level == 0` means leaf (entries point at objects).
#[derive(Clone, Debug)]
pub struct Node {
    pub parent: Option<NodeId>,
    pub level: u16,
    pub entries: Vec<Entry>,
}

impl Node {
    /// MBR covering all entries (`None` for an empty node, which only occurs
    /// transiently during splits).
    pub fn mbr(&self) -> Option<Rect> {
        Rect::union_all(self.entries.iter().map(|e| e.mbr))
    }

    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }
}

/// The flat object store backing an [`RTree`]. Object ids must equal their
/// vector index; [`ObjectStore::new`] enforces this.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    objects: Vec<SpatialObject>,
}

impl ObjectStore {
    /// Builds a store, checking the dense-id invariant.
    ///
    /// # Panics
    /// Panics if any object's id differs from its position.
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(
                o.id.0 as usize, i,
                "ObjectStore requires dense ids (object at position {i} has id {})",
                o.id
            );
        }
        ObjectStore { objects }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatialObject {
        &self.objects[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &SpatialObject> {
        self.objects.iter()
    }

    /// Total payload bytes across all objects (denominator of the paper's
    /// uniform-access byte hit rate formula in §4.1).
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size_bytes as u64).sum()
    }

    /// Appends a new object (dense ids: the next id is assigned). Used by
    /// the server-update extension.
    pub fn push(&mut self, mbr: Rect, size_bytes: u32) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        self.objects.push(SpatialObject {
            id,
            mbr,
            size_bytes,
        });
        id
    }

    /// Relocates an object (server-update extension). The index must be
    /// updated separately (delete + insert).
    pub fn set_mbr(&mut self, id: ObjectId, mbr: Rect) {
        self.objects[id.0 as usize].mbr = mbr;
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use pc_geom::Point;

    #[test]
    fn object_store_dense_ids_ok() {
        let objs = (0..4)
            .map(|i| SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(Point::new(i as f64 * 0.1, 0.5)),
                size_bytes: 100 + i,
            })
            .collect();
        let store = ObjectStore::new(objs);
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(ObjectId(2)).size_bytes, 102);
        assert_eq!(store.total_bytes(), 100 + 101 + 102 + 103);
    }

    #[test]
    #[should_panic(expected = "dense ids")]
    fn object_store_rejects_sparse_ids() {
        let objs = vec![SpatialObject {
            id: ObjectId(5),
            mbr: Rect::from_point(Point::ORIGIN),
            size_bytes: 1,
        }];
        ObjectStore::new(objs);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let node = Node {
            parent: None,
            level: 0,
            entries: vec![
                Entry {
                    mbr: Rect::from_coords(0.0, 0.0, 0.2, 0.2),
                    child: ChildRef::Object(ObjectId(0)),
                },
                Entry {
                    mbr: Rect::from_coords(0.5, 0.5, 0.9, 0.6),
                    child: ChildRef::Object(ObjectId(1)),
                },
            ],
        };
        assert_eq!(node.mbr().unwrap(), Rect::from_coords(0.0, 0.0, 0.9, 0.6));
        assert!(node.is_leaf());
    }
}
