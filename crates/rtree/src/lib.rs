//! R*-tree index, binary partition trees (BPT), the generic spatial query
//! engine of the paper's §3.3, and the client↔server wire protocol.
//!
//! This crate is the substrate shared by the proactive-caching client, the
//! server, and both baselines:
//!
//! * [`RTree`] — a page-oriented R*-tree (Beckmann et al. \[2\]) with dynamic
//!   insertion (forced re-insert + R* split) and STR bulk loading.
//! * [`bpt`] — per-node **binary partition trees** (§4.2): an offline
//!   recursive R*-split of each node's entry set, giving every subset of
//!   entries a *super entry* addressed by `(NodeId, Code)`.
//! * [`engine`] — the **generic query processor** (paper Algorithm 1): one
//!   best-first loop that evaluates range, kNN and distance self-join
//!   queries over any [`engine::IndexView`], handling *missing entries* and
//!   producing remainder queries. The server runs the same engine over a
//!   complete view; the client runs it over its cache.
//! * [`proto`] — query specifications, serialized heap entries, remainder
//!   queries, server replies, and the byte-accounting rules used by every
//!   experiment metric.

pub mod bpt;
pub mod engine;
pub mod naive;
pub mod proto;
pub mod query;
mod split;
mod tree;
pub mod view;

#[cfg(test)]
mod proptests;

use pc_geom::Rect;

pub use tree::{RTree, RTreeConfig, TreeStats, NODE_CHUNK_LEN};

/// Identifier of a data object. Objects are numbered densely from zero so
/// stores can be plain vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of an R-tree node (slab index into [`RTree`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A spatial data object: an MBR plus a payload *size*.
///
/// Following DESIGN.md, payload bytes are accounted but never materialized —
/// every algorithm in the paper operates on ids and MBRs only, while the
/// channel model charges `size_bytes` per transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub mbr: Rect,
    pub size_bytes: u32,
}

/// What an R-tree entry points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildRef {
    Node(NodeId),
    Object(ObjectId),
}

/// One `(MBR, pointer)` slot of an R-tree node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    pub mbr: Rect,
    pub child: ChildRef,
}

/// An R-tree node. `level == 0` means leaf (entries point at objects).
///
/// Entries are stored **struct-of-arrays**: the four MBR coordinates live in
/// parallel `f64` columns (`min_x`/`min_y`/`max_x`/`max_y`) beside a child
/// pointer column, instead of an array of [`Entry`] structs. The query hot
/// path (window qualification, `MINDIST` for kNN, rect-pair pruning for the
/// distance join) then scans contiguous same-type lanes the compiler can
/// keep in cache and autovectorize, rather than striding over 40-byte
/// records. [`Entry`] survives as a cheap by-value *view*: [`Node::entry`]
/// and the [`Node::entries`] iterator materialize one on demand, so
/// structural code (splits, condense, shipping forms) keeps its shape.
#[derive(Clone, Debug, Default)]
pub struct Node {
    pub parent: Option<NodeId>,
    pub level: u16,
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
    children: Vec<ChildRef>,
}

impl Node {
    /// An empty node at `level` (entries arrive via [`Node::push`]).
    pub fn new(parent: Option<NodeId>, level: u16) -> Self {
        Node {
            parent,
            level,
            min_x: Vec::new(),
            min_y: Vec::new(),
            max_x: Vec::new(),
            max_y: Vec::new(),
            children: Vec::new(),
        }
    }

    /// A node populated from an entry sequence.
    pub fn with_entries(
        parent: Option<NodeId>,
        level: u16,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Self {
        let mut node = Node::new(parent, level);
        for e in entries {
            node.push(e);
        }
        node
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The entry at `i`, materialized by value from the columns.
    #[inline]
    pub fn entry(&self, i: usize) -> Entry {
        Entry {
            mbr: self.mbr_at(i),
            child: self.children[i],
        }
    }

    /// The MBR column values at `i`, re-assembled into a [`Rect`].
    #[inline]
    pub fn mbr_at(&self, i: usize) -> Rect {
        Rect::from_coords(self.min_x[i], self.min_y[i], self.max_x[i], self.max_y[i])
    }

    #[inline]
    pub fn child_at(&self, i: usize) -> ChildRef {
        self.children[i]
    }

    /// The child pointer column.
    #[inline]
    pub fn children(&self) -> &[ChildRef] {
        &self.children
    }

    /// The raw MBR columns `(min_x, min_y, max_x, max_y)` — the lanes the
    /// iterative kernels in [`crate::query`] scan directly.
    #[inline]
    pub fn mbr_cols(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (&self.min_x, &self.min_y, &self.max_x, &self.max_y)
    }

    /// Iterates the entries as by-value [`Entry`] views.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = Entry> + '_ {
        (0..self.len()).map(move |i| self.entry(i))
    }

    /// Appends one entry (splitting across the columns).
    pub fn push(&mut self, e: Entry) {
        self.min_x.push(e.mbr.min.x);
        self.min_y.push(e.mbr.min.y);
        self.max_x.push(e.mbr.max.x);
        self.max_y.push(e.mbr.max.y);
        self.children.push(e.child);
    }

    /// Overwrites the MBR at `i`, keeping the child pointer.
    pub fn set_mbr_at(&mut self, i: usize, mbr: Rect) {
        self.min_x[i] = mbr.min.x;
        self.min_y[i] = mbr.min.y;
        self.max_x[i] = mbr.max.x;
        self.max_y[i] = mbr.max.y;
    }

    /// Keeps only the entries `keep` accepts (in-place column compaction,
    /// preserving order — the SoA analogue of `Vec::retain`).
    pub fn retain_entries(&mut self, mut keep: impl FnMut(&Entry) -> bool) {
        let mut w = 0;
        for i in 0..self.children.len() {
            if keep(&self.entry(i)) {
                if w != i {
                    self.min_x[w] = self.min_x[i];
                    self.min_y[w] = self.min_y[i];
                    self.max_x[w] = self.max_x[i];
                    self.max_y[w] = self.max_y[i];
                    self.children[w] = self.children[i];
                }
                w += 1;
            }
        }
        self.truncate(w);
    }

    fn truncate(&mut self, len: usize) {
        self.min_x.truncate(len);
        self.min_y.truncate(len);
        self.max_x.truncate(len);
        self.max_y.truncate(len);
        self.children.truncate(len);
    }

    /// Drains every entry out as a `Vec<Entry>` (split/condense staging:
    /// these paths shuffle whole entry sets, where AoS is the natural form).
    pub fn take_entries(&mut self) -> Vec<Entry> {
        let out: Vec<Entry> = self.entries().collect();
        self.clear_entries();
        out
    }

    /// Replaces the entry set wholesale.
    pub fn set_entries(&mut self, entries: impl IntoIterator<Item = Entry>) {
        self.clear_entries();
        for e in entries {
            self.push(e);
        }
    }

    pub fn clear_entries(&mut self) {
        self.truncate(0);
    }

    /// MBR covering all entries (`None` for an empty node, which only occurs
    /// transiently during splits). A single pass over the four columns.
    pub fn mbr(&self) -> Option<Rect> {
        if self.children.is_empty() {
            return None;
        }
        let (mut x0, mut y0, mut x1, mut y1) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for i in 0..self.children.len() {
            x0 = x0.min(self.min_x[i]);
            y0 = y0.min(self.min_y[i]);
            x1 = x1.max(self.max_x[i]);
            y1 = y1.max(self.max_y[i]);
        }
        Some(Rect::from_coords(x0, y0, x1, y1))
    }

    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }
}

/// Objects per store segment (power of two so indexing is a shift+mask).
const STORE_CHUNK_SHIFT: u32 = 10;
/// Segment capacity derived from the shift.
pub const STORE_CHUNK_LEN: usize = 1 << STORE_CHUNK_SHIFT;

/// The object store backing an [`RTree`]. Object ids must equal their
/// logical index; [`ObjectStore::new`] enforces this.
///
/// Storage is chunked into `Arc`-shared segments of [`STORE_CHUNK_LEN`]
/// objects: cloning a store clones only the segment pointer table, and a
/// mutation ([`push`](ObjectStore::push), [`set_mbr`](ObjectStore::set_mbr),
/// [`mark_dead`](ObjectStore::mark_dead)) copies just the one segment it
/// lands in. Snapshots in `pc_server` therefore share all untouched
/// segments across epochs instead of deep-cloning the dataset per update
/// batch.
///
/// Deleted objects keep their slot (ids stay dense — the §7 update
/// extension tombstones them) but are flagged dead; the naive oracles and
/// liveness-aware callers skip them via [`is_live`](ObjectStore::is_live).
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    chunks: Vec<std::sync::Arc<Vec<SpatialObject>>>,
    len: usize,
    /// Tombstone bitset, one bit per slot (dense ids; dead = 1).
    dead: Vec<u64>,
    dead_count: usize,
}

impl ObjectStore {
    /// Builds a store, checking the dense-id invariant.
    ///
    /// # Panics
    /// Panics if any object's id differs from its position.
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(
                o.id.0 as usize, i,
                "ObjectStore requires dense ids (object at position {i} has id {})",
                o.id
            );
        }
        let len = objects.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(STORE_CHUNK_LEN));
        let mut objects = objects;
        while !objects.is_empty() {
            let rest = objects.split_off(objects.len().min(STORE_CHUNK_LEN));
            chunks.push(std::sync::Arc::new(objects));
            objects = rest;
        }
        ObjectStore {
            chunks,
            len,
            dead: vec![0; len.div_ceil(64)],
            dead_count: 0,
        }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatialObject {
        let i = id.0 as usize;
        &self.chunks[i >> STORE_CHUNK_SHIFT][i & (STORE_CHUNK_LEN - 1)]
    }

    /// Checked lookup: `None` for ids the store never assigned. The guard
    /// malformed update batches go through instead of panicking the writer.
    #[inline]
    pub fn try_get(&self, id: ObjectId) -> Option<&SpatialObject> {
        ((id.0 as usize) < self.len).then(|| self.get(id))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = &SpatialObject> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Objects that are still live (not tombstoned), in id order.
    pub fn iter_live(&self) -> impl Iterator<Item = &SpatialObject> {
        self.iter().filter(|o| self.is_live(o.id))
    }

    /// Whether `id` is assigned and not tombstoned.
    #[inline]
    pub fn is_live(&self, id: ObjectId) -> bool {
        let i = id.0 as usize;
        i < self.len && self.dead[i >> 6] & (1 << (i & 63)) == 0
    }

    /// Tombstones an object (§7 delete): the slot stays (dense ids) but
    /// liveness-aware readers skip it. No-op for unassigned ids.
    pub fn mark_dead(&mut self, id: ObjectId) {
        let i = id.0 as usize;
        if self.is_live(id) {
            self.dead[i >> 6] |= 1 << (i & 63);
            self.dead_count += 1;
        }
    }

    /// Number of live (non-tombstoned) objects.
    pub fn live_count(&self) -> usize {
        self.len - self.dead_count
    }

    /// Total payload bytes across all objects (denominator of the paper's
    /// uniform-access byte hit rate formula in §4.1).
    pub fn total_bytes(&self) -> u64 {
        self.iter().map(|o| o.size_bytes as u64).sum()
    }

    /// Appends a new object (dense ids: the next id is assigned). Used by
    /// the server-update extension.
    pub fn push(&mut self, mbr: Rect, size_bytes: u32) -> ObjectId {
        let id = ObjectId(self.len as u32);
        if self.len.is_multiple_of(STORE_CHUNK_LEN) {
            self.chunks
                .push(std::sync::Arc::new(Vec::with_capacity(STORE_CHUNK_LEN)));
        }
        std::sync::Arc::make_mut(self.chunks.last_mut().expect("chunk just ensured")).push(
            SpatialObject {
                id,
                mbr,
                size_bytes,
            },
        );
        self.len += 1;
        if self.len > self.dead.len() * 64 {
            self.dead.push(0);
        }
        id
    }

    /// Relocates an object (server-update extension). The index must be
    /// updated separately (delete + insert).
    pub fn set_mbr(&mut self, id: ObjectId, mbr: Rect) {
        let i = id.0 as usize;
        std::sync::Arc::make_mut(&mut self.chunks[i >> STORE_CHUNK_SHIFT])
            [i & (STORE_CHUNK_LEN - 1)]
            .mbr = mbr;
    }

    /// How many segments `self` physically shares with `other` (same `Arc`
    /// at the same position) — the structural-sharing diagnostic mirroring
    /// [`RTree::shared_node_slots`].
    pub fn shared_chunks(&self, other: &ObjectStore) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| std::sync::Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of storage segments (denominator for
    /// [`shared_chunks`](ObjectStore::shared_chunks)).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use pc_geom::Point;

    #[test]
    fn object_store_dense_ids_ok() {
        let objs = (0..4)
            .map(|i| SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(Point::new(i as f64 * 0.1, 0.5)),
                size_bytes: 100 + i,
            })
            .collect();
        let store = ObjectStore::new(objs);
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(ObjectId(2)).size_bytes, 102);
        assert_eq!(store.total_bytes(), 100 + 101 + 102 + 103);
    }

    #[test]
    #[should_panic(expected = "dense ids")]
    fn object_store_rejects_sparse_ids() {
        let objs = vec![SpatialObject {
            id: ObjectId(5),
            mbr: Rect::from_point(Point::ORIGIN),
            size_bytes: 1,
        }];
        ObjectStore::new(objs);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let node = Node::with_entries(
            None,
            0,
            [
                Entry {
                    mbr: Rect::from_coords(0.0, 0.0, 0.2, 0.2),
                    child: ChildRef::Object(ObjectId(0)),
                },
                Entry {
                    mbr: Rect::from_coords(0.5, 0.5, 0.9, 0.6),
                    child: ChildRef::Object(ObjectId(1)),
                },
            ],
        );
        assert_eq!(node.mbr().unwrap(), Rect::from_coords(0.0, 0.0, 0.9, 0.6));
        assert!(node.is_leaf());
    }

    #[test]
    fn node_soa_columns_round_trip_entries() {
        let entries = [
            Entry {
                mbr: Rect::from_coords(0.1, 0.2, 0.3, 0.4),
                child: ChildRef::Node(NodeId(7)),
            },
            Entry {
                mbr: Rect::from_coords(0.5, 0.6, 0.7, 0.8),
                child: ChildRef::Object(ObjectId(9)),
            },
        ];
        let mut node = Node::with_entries(Some(NodeId(3)), 2, entries);
        assert_eq!(node.len(), 2);
        assert_eq!(node.entry(0), entries[0]);
        assert_eq!(node.entry(1), entries[1]);
        let collected: Vec<Entry> = node.entries().collect();
        assert_eq!(collected, entries);
        let (min_x, min_y, max_x, max_y) = node.mbr_cols();
        assert_eq!(
            (min_x[1], min_y[1], max_x[1], max_y[1]),
            (0.5, 0.6, 0.7, 0.8)
        );
        assert_eq!(node.children(), &[entries[0].child, entries[1].child]);

        node.set_mbr_at(0, Rect::from_coords(0.0, 0.0, 0.05, 0.05));
        assert_eq!(node.mbr_at(0), Rect::from_coords(0.0, 0.0, 0.05, 0.05));
        node.retain_entries(|e| matches!(e.child, ChildRef::Object(_)));
        assert_eq!(node.len(), 1);
        assert_eq!(node.entry(0), entries[1]);
        let taken = node.take_entries();
        assert_eq!(taken, vec![entries[1]]);
        assert!(node.is_empty());
        node.set_entries(taken);
        assert_eq!(node.len(), 1);
    }
}
