//! R*-tree index, binary partition trees (BPT), the generic spatial query
//! engine of the paper's §3.3, and the client↔server wire protocol.
//!
//! This crate is the substrate shared by the proactive-caching client, the
//! server, and both baselines:
//!
//! * [`RTree`] — a page-oriented R*-tree (Beckmann et al. \[2\]) with dynamic
//!   insertion (forced re-insert + R* split) and STR bulk loading.
//! * [`bpt`] — per-node **binary partition trees** (§4.2): an offline
//!   recursive R*-split of each node's entry set, giving every subset of
//!   entries a *super entry* addressed by `(NodeId, Code)`.
//! * [`engine`] — the **generic query processor** (paper Algorithm 1): one
//!   best-first loop that evaluates range, kNN and distance self-join
//!   queries over any [`engine::IndexView`], handling *missing entries* and
//!   producing remainder queries. The server runs the same engine over a
//!   complete view; the client runs it over its cache.
//! * [`proto`] — query specifications, serialized heap entries, remainder
//!   queries, server replies, and the byte-accounting rules used by every
//!   experiment metric.

pub mod bpt;
pub mod engine;
pub mod naive;
pub mod proto;
pub mod query;
mod split;
mod tree;
pub mod view;

#[cfg(test)]
mod proptests;

use pc_geom::Rect;

pub use tree::{RTree, RTreeConfig, TreeStats};

/// Identifier of a data object. Objects are numbered densely from zero so
/// stores can be plain vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of an R-tree node (slab index into [`RTree`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A spatial data object: an MBR plus a payload *size*.
///
/// Following DESIGN.md, payload bytes are accounted but never materialized —
/// every algorithm in the paper operates on ids and MBRs only, while the
/// channel model charges `size_bytes` per transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub mbr: Rect,
    pub size_bytes: u32,
}

/// What an R-tree entry points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildRef {
    Node(NodeId),
    Object(ObjectId),
}

/// One `(MBR, pointer)` slot of an R-tree node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    pub mbr: Rect,
    pub child: ChildRef,
}

/// An R-tree node. `level == 0` means leaf (entries point at objects).
#[derive(Clone, Debug)]
pub struct Node {
    pub parent: Option<NodeId>,
    pub level: u16,
    pub entries: Vec<Entry>,
}

impl Node {
    /// MBR covering all entries (`None` for an empty node, which only occurs
    /// transiently during splits).
    pub fn mbr(&self) -> Option<Rect> {
        Rect::union_all(self.entries.iter().map(|e| e.mbr))
    }

    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }
}

/// Objects per store segment (power of two so indexing is a shift+mask).
const STORE_CHUNK_SHIFT: u32 = 10;
/// Segment capacity derived from the shift.
pub const STORE_CHUNK_LEN: usize = 1 << STORE_CHUNK_SHIFT;

/// The object store backing an [`RTree`]. Object ids must equal their
/// logical index; [`ObjectStore::new`] enforces this.
///
/// Storage is chunked into `Arc`-shared segments of [`STORE_CHUNK_LEN`]
/// objects: cloning a store clones only the segment pointer table, and a
/// mutation ([`push`](ObjectStore::push), [`set_mbr`](ObjectStore::set_mbr),
/// [`mark_dead`](ObjectStore::mark_dead)) copies just the one segment it
/// lands in. Snapshots in `pc_server` therefore share all untouched
/// segments across epochs instead of deep-cloning the dataset per update
/// batch.
///
/// Deleted objects keep their slot (ids stay dense — the §7 update
/// extension tombstones them) but are flagged dead; the naive oracles and
/// liveness-aware callers skip them via [`is_live`](ObjectStore::is_live).
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    chunks: Vec<std::sync::Arc<Vec<SpatialObject>>>,
    len: usize,
    /// Tombstone bitset, one bit per slot (dense ids; dead = 1).
    dead: Vec<u64>,
    dead_count: usize,
}

impl ObjectStore {
    /// Builds a store, checking the dense-id invariant.
    ///
    /// # Panics
    /// Panics if any object's id differs from its position.
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        for (i, o) in objects.iter().enumerate() {
            assert_eq!(
                o.id.0 as usize, i,
                "ObjectStore requires dense ids (object at position {i} has id {})",
                o.id
            );
        }
        let len = objects.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(STORE_CHUNK_LEN));
        let mut objects = objects;
        while !objects.is_empty() {
            let rest = objects.split_off(objects.len().min(STORE_CHUNK_LEN));
            chunks.push(std::sync::Arc::new(objects));
            objects = rest;
        }
        ObjectStore {
            chunks,
            len,
            dead: vec![0; len.div_ceil(64)],
            dead_count: 0,
        }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &SpatialObject {
        let i = id.0 as usize;
        &self.chunks[i >> STORE_CHUNK_SHIFT][i & (STORE_CHUNK_LEN - 1)]
    }

    /// Checked lookup: `None` for ids the store never assigned. The guard
    /// malformed update batches go through instead of panicking the writer.
    #[inline]
    pub fn try_get(&self, id: ObjectId) -> Option<&SpatialObject> {
        ((id.0 as usize) < self.len).then(|| self.get(id))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = &SpatialObject> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Objects that are still live (not tombstoned), in id order.
    pub fn iter_live(&self) -> impl Iterator<Item = &SpatialObject> {
        self.iter().filter(|o| self.is_live(o.id))
    }

    /// Whether `id` is assigned and not tombstoned.
    #[inline]
    pub fn is_live(&self, id: ObjectId) -> bool {
        let i = id.0 as usize;
        i < self.len && self.dead[i >> 6] & (1 << (i & 63)) == 0
    }

    /// Tombstones an object (§7 delete): the slot stays (dense ids) but
    /// liveness-aware readers skip it. No-op for unassigned ids.
    pub fn mark_dead(&mut self, id: ObjectId) {
        let i = id.0 as usize;
        if self.is_live(id) {
            self.dead[i >> 6] |= 1 << (i & 63);
            self.dead_count += 1;
        }
    }

    /// Number of live (non-tombstoned) objects.
    pub fn live_count(&self) -> usize {
        self.len - self.dead_count
    }

    /// Total payload bytes across all objects (denominator of the paper's
    /// uniform-access byte hit rate formula in §4.1).
    pub fn total_bytes(&self) -> u64 {
        self.iter().map(|o| o.size_bytes as u64).sum()
    }

    /// Appends a new object (dense ids: the next id is assigned). Used by
    /// the server-update extension.
    pub fn push(&mut self, mbr: Rect, size_bytes: u32) -> ObjectId {
        let id = ObjectId(self.len as u32);
        if self.len.is_multiple_of(STORE_CHUNK_LEN) {
            self.chunks
                .push(std::sync::Arc::new(Vec::with_capacity(STORE_CHUNK_LEN)));
        }
        std::sync::Arc::make_mut(self.chunks.last_mut().expect("chunk just ensured")).push(
            SpatialObject {
                id,
                mbr,
                size_bytes,
            },
        );
        self.len += 1;
        if self.len > self.dead.len() * 64 {
            self.dead.push(0);
        }
        id
    }

    /// Relocates an object (server-update extension). The index must be
    /// updated separately (delete + insert).
    pub fn set_mbr(&mut self, id: ObjectId, mbr: Rect) {
        let i = id.0 as usize;
        std::sync::Arc::make_mut(&mut self.chunks[i >> STORE_CHUNK_SHIFT])
            [i & (STORE_CHUNK_LEN - 1)]
            .mbr = mbr;
    }

    /// How many segments `self` physically shares with `other` (same `Arc`
    /// at the same position) — the structural-sharing diagnostic mirroring
    /// [`RTree::shared_node_slots`].
    pub fn shared_chunks(&self, other: &ObjectStore) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| std::sync::Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of storage segments (denominator for
    /// [`shared_chunks`](ObjectStore::shared_chunks)).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use pc_geom::Point;

    #[test]
    fn object_store_dense_ids_ok() {
        let objs = (0..4)
            .map(|i| SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(Point::new(i as f64 * 0.1, 0.5)),
                size_bytes: 100 + i,
            })
            .collect();
        let store = ObjectStore::new(objs);
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(ObjectId(2)).size_bytes, 102);
        assert_eq!(store.total_bytes(), 100 + 101 + 102 + 103);
    }

    #[test]
    #[should_panic(expected = "dense ids")]
    fn object_store_rejects_sparse_ids() {
        let objs = vec![SpatialObject {
            id: ObjectId(5),
            mbr: Rect::from_point(Point::ORIGIN),
            size_bytes: 1,
        }];
        ObjectStore::new(objs);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let node = Node {
            parent: None,
            level: 0,
            entries: vec![
                Entry {
                    mbr: Rect::from_coords(0.0, 0.0, 0.2, 0.2),
                    child: ChildRef::Object(ObjectId(0)),
                },
                Entry {
                    mbr: Rect::from_coords(0.5, 0.5, 0.9, 0.6),
                    child: ChildRef::Object(ObjectId(1)),
                },
            ],
        };
        assert_eq!(node.mbr().unwrap(), Rect::from_coords(0.0, 0.0, 0.9, 0.6));
        assert!(node.is_leaf());
    }
}
