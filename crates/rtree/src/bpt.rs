//! Binary partition trees (§4.2): every R-tree node gets an offline binary
//! tree over its entries, built by recursively applying the R* split so the
//! two subsets overlap minimally. Interior BPT cells are the paper's
//! **super entries**, addressed `(n, code)` where `code` concatenates the
//! 0/1 branch digits from the BPT root.
//!
//! Compact forms, d⁺-level forms and the adaptive scheme all operate on
//! these cells; the query engine treats a super entry exactly like an
//! R-tree entry whose MBR is the union of the entries it covers.

use crate::split::rstar_split;
use crate::tree::RTree;
use crate::NodeId;
use pc_geom::Rect;
use std::sync::Arc;

/// A path through a binary partition tree: the paper's `(n, code)` id with
/// `code` a bit-string ("formed by concatenating the binary digit 0/1 along
/// the path from the root", §4.2). Bit `i` (LSB-first) is the branch taken
/// at depth `i`.
///
/// The BPT build keeps both split sides ≥ 35 % of the subset, bounding the
/// depth by `log(max_fan)/log(1/0.65)` ≈ 11 for 4 KB pages — far below the
/// 32-bit capacity, which [`Code::child`] asserts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code {
    bits: u32,
    len: u8,
}

impl Code {
    /// The empty code: the BPT root, i.e. the whole node.
    pub const ROOT: Code = Code { bits: 0, len: 0 };

    /// Appends one branch digit.
    #[inline]
    pub fn child(self, right: bool) -> Code {
        assert!(self.len < 32, "BPT code overflow");
        Code {
            bits: self.bits | ((right as u32) << self.len),
            len: self.len + 1,
        }
    }

    /// Drops the last branch digit (`None` at the root).
    #[inline]
    pub fn parent(self) -> Option<Code> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Code {
            bits: self.bits & !(1 << len),
            len,
        })
    }

    #[inline]
    pub fn depth(self) -> u8 {
        self.len
    }

    #[inline]
    pub fn is_root(self) -> bool {
        self.len == 0
    }

    /// Branch digit at depth `i` (must be `< depth()`).
    #[inline]
    pub fn bit(self, i: u8) -> bool {
        debug_assert!(i < self.len);
        (self.bits >> i) & 1 == 1
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_prefix_of(self, other: Code) -> bool {
        self.len <= other.len
            && (other.bits & ((1u64 << self.len) as u32).wrapping_sub(1)) == self.bits
    }

    /// The raw `(bits, len)` pair for serialization (`pc_wire`). Inverse of
    /// [`Code::from_raw`].
    #[inline]
    pub fn raw(self) -> (u32, u8) {
        (self.bits, self.len)
    }

    /// Rebuilds a code from its raw parts, validating the invariant that
    /// only the low `len` bits may be set. Returns `None` for out-of-range
    /// lengths or stray high bits — the decode side of a wire codec must
    /// never manufacture an invalid code.
    #[inline]
    pub fn from_raw(bits: u32, len: u8) -> Option<Code> {
        if len > 32 {
            return None;
        }
        if len < 32 && (bits >> len) != 0 {
            return None;
        }
        Some(Code { bits, len })
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.len {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Code({self})")
    }
}

/// One cell of a binary partition tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BptCell {
    /// MBR of the entry subset this cell covers.
    pub mbr: Rect,
    pub kind: BptCellKind,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BptCellKind {
    /// A super entry: indices of the two child cells in the BPT arena.
    Internal { left: u32, right: u32 },
    /// An actual entry of the R-tree node (index into its entry columns,
    /// resolved via [`crate::Node::entry`]).
    Leaf { entry_idx: u16 },
}

/// How a BPT partitions an entry subset in two — the design choice §4.2
/// makes ("the partitioning uses the R-tree node splitting algorithm to
/// assure minimal overlap") and the `ablation_bpt_split` experiment
/// questions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitPolicy {
    /// The paper's choice: the R* margin/overlap heuristic.
    #[default]
    RStar,
    /// Naïve control: sort by center along the longer axis, cut at the
    /// median. Cheaper to build, but super entries overlap more, so
    /// compact forms prune worse.
    Midpoint,
}

/// The binary partition tree of one R-tree node.
#[derive(Clone, Debug, Default)]
pub struct Bpt {
    /// Cell 0 is the root; an empty vector models an empty node.
    cells: Vec<BptCell>,
    height: u8,
}

impl Bpt {
    /// Builds the BPT over a node's entry MBRs ("the partitioning uses the
    /// R-tree node splitting algorithm to assure minimal overlap", §4.2).
    pub fn build(entry_mbrs: &[Rect]) -> Bpt {
        Bpt::build_with(entry_mbrs, SplitPolicy::RStar)
    }

    /// Builds with an explicit split policy (ablation support).
    pub fn build_with(entry_mbrs: &[Rect], policy: SplitPolicy) -> Bpt {
        let mut bpt = Bpt {
            cells: Vec::with_capacity(entry_mbrs.len().saturating_mul(2)),
            height: 0,
        };
        if entry_mbrs.is_empty() {
            return bpt;
        }
        let indices: Vec<u16> = (0..entry_mbrs.len() as u16).collect();
        bpt.cells.push(BptCell {
            // Placeholder, fixed by build_rec.
            mbr: entry_mbrs[0],
            kind: BptCellKind::Leaf { entry_idx: 0 },
        });
        bpt.build_rec(0, &indices, entry_mbrs, 0, policy);
        bpt
    }

    fn build_rec(
        &mut self,
        cell_idx: usize,
        indices: &[u16],
        mbrs: &[Rect],
        depth: u8,
        policy: SplitPolicy,
    ) {
        self.height = self.height.max(depth);
        if indices.len() == 1 {
            self.cells[cell_idx] = BptCell {
                mbr: mbrs[indices[0] as usize],
                kind: BptCellKind::Leaf {
                    entry_idx: indices[0],
                },
            };
            return;
        }
        let subset: Vec<Rect> = indices.iter().map(|&i| mbrs[i as usize]).collect();
        let (l, r) = match policy {
            SplitPolicy::RStar => {
                // Keep both sides ≥ 35 % so codes stay shallow (see `Code`).
                let m = ((subset.len() as f64 * 0.35).floor() as usize).max(1);
                rstar_split(&subset, m)
            }
            SplitPolicy::Midpoint => midpoint_split(&subset),
        };
        let left_ids: Vec<u16> = l.iter().map(|&i| indices[i]).collect();
        let right_ids: Vec<u16> = r.iter().map(|&i| indices[i]).collect();

        let left_idx = self.cells.len();
        self.cells.push(self.cells[cell_idx]); // placeholder
        let right_idx = self.cells.len();
        self.cells.push(self.cells[cell_idx]); // placeholder

        self.build_rec(left_idx, &left_ids, mbrs, depth + 1, policy);
        self.build_rec(right_idx, &right_ids, mbrs, depth + 1, policy);

        let mbr = self.cells[left_idx].mbr.union(&self.cells[right_idx].mbr);
        self.cells[cell_idx] = BptCell {
            mbr,
            kind: BptCellKind::Internal {
                left: left_idx as u32,
                right: right_idx as u32,
            },
        };
    }

    /// Number of cells (`2N - 1` for an `N`-entry node).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of super entries (`N - 1`).
    pub fn internal_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, BptCellKind::Internal { .. }))
            .count()
    }

    /// Height of the tree (the `h` of §4.3: the `h⁺`-level compact form is
    /// the full form).
    pub fn height(&self) -> u8 {
        self.height
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Resolves a code to its cell, walking branch digits from the root.
    pub fn find(&self, code: Code) -> Option<&BptCell> {
        self.find_idx(code).map(|i| &self.cells[i])
    }

    fn find_idx(&self, code: Code) -> Option<usize> {
        if self.cells.is_empty() {
            return None;
        }
        let mut idx = 0usize;
        for i in 0..code.depth() {
            match self.cells[idx].kind {
                BptCellKind::Internal { left, right } => {
                    idx = if code.bit(i) {
                        right as usize
                    } else {
                        left as usize
                    };
                }
                BptCellKind::Leaf { .. } => return None,
            }
        }
        Some(idx)
    }

    /// Children of an internal cell as `(code, cell)` pairs; `None` for
    /// leaves and unknown codes.
    pub fn children(&self, code: Code) -> Option<[(Code, &BptCell); 2]> {
        let idx = self.find_idx(code)?;
        match self.cells[idx].kind {
            BptCellKind::Internal { left, right } => Some([
                (code.child(false), &self.cells[left as usize]),
                (code.child(true), &self.cells[right as usize]),
            ]),
            BptCellKind::Leaf { .. } => None,
        }
    }

    /// The frontier `d` levels below `code`: "replacing each entry in the
    /// compact form with its d level descendant nodes or the entries,
    /// whichever come first" (§4.3). `d = 0` returns `code` itself.
    pub fn descend(&self, code: Code, d: u8) -> Vec<(Code, &BptCell)> {
        let mut out = Vec::new();
        let Some(idx) = self.find_idx(code) else {
            return out;
        };
        let mut stack = vec![(code, idx, 0u8)];
        while let Some((c, i, depth)) = stack.pop() {
            let cell = &self.cells[i];
            match cell.kind {
                BptCellKind::Internal { left, right } if depth < d => {
                    stack.push((c.child(false), left as usize, depth + 1));
                    stack.push((c.child(true), right as usize, depth + 1));
                }
                _ => out.push((c, cell)),
            }
        }
        out
    }

    /// All leaf (entry) cells with their codes, i.e. the full form as an
    /// antichain.
    pub fn leaf_cells(&self) -> Vec<(Code, &BptCell)> {
        self.descend(Code::ROOT, u8::MAX)
    }

    /// Auxiliary storage of this BPT per the paper's §4.2 accounting:
    /// `N - 1` super entries plus `2(N - 1)` pointers.
    pub fn aux_bytes(&self) -> u64 {
        let internal = self.internal_count() as u64;
        internal * crate::proto::ENTRY_BYTES + 2 * internal * 8
    }
}

/// Median cut along the longer axis of the subset's bounding box — the
/// ablation control for [`SplitPolicy::Midpoint`].
fn midpoint_split(rects: &[Rect]) -> (Vec<usize>, Vec<usize>) {
    let bbox = Rect::union_all(rects.iter().copied()).expect("non-empty subset");
    let horizontal = bbox.width() >= bbox.height();
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = if horizontal {
            rects[a].center().x
        } else {
            rects[a].center().y
        };
        let kb = if horizontal {
            rects[b].center().x
        } else {
            rects[b].center().y
        };
        ka.partial_cmp(&kb).unwrap()
    });
    let cut = rects.len() / 2;
    (order[..cut].to_vec(), order[cut..].to_vec())
}

/// BPT slots per store segment (power of two so indexing is a shift+mask).
const BPT_CHUNK_SHIFT: u32 = 10;
/// Segment capacity derived from the shift.
pub const BPT_CHUNK_LEN: usize = 1 << BPT_CHUNK_SHIFT;

/// Binary partition trees for every node of a tree, built offline ("a
/// one-time operation", §4.2).
///
/// A dense slab indexed by [`NodeId`] (one slot per tree slab slot —
/// detached node husks keep an empty BPT, which costs zero aux bytes),
/// segmented into [`BPT_CHUNK_LEN`]-slot `Arc` chunks like the tree's node
/// slab. Each BPT additionally sits behind its own `Arc`: cloning the store
/// clones only the segment pointer table, and [`BptStore::rebuild_node`]
/// swaps in a fresh BPT for exactly the nodes an update batch dirtied —
/// copying the dirtied slots' segments, not the whole table — leaving every
/// other node's BPT structurally shared with the previous snapshot.
#[derive(Clone, Debug, Default)]
pub struct BptStore {
    chunks: Vec<Arc<Vec<Arc<Bpt>>>>,
    len: usize,
}

impl BptStore {
    pub fn build(tree: &RTree) -> BptStore {
        BptStore::build_with(tree, SplitPolicy::RStar)
    }

    /// Builds with an explicit split policy (ablation support).
    pub fn build_with(tree: &RTree, policy: SplitPolicy) -> BptStore {
        let mut store = BptStore::default();
        for i in 0..tree.slab_len() {
            let node = tree.node(NodeId(i as u32));
            let mbrs: Vec<Rect> = (0..node.len()).map(|j| node.mbr_at(j)).collect();
            store.push(Arc::new(Bpt::build_with(&mbrs, policy)));
        }
        store
    }

    /// Appends one slot, growing a fresh segment at chunk boundaries.
    fn push(&mut self, bpt: Arc<Bpt>) {
        if self.len.is_multiple_of(BPT_CHUNK_LEN) {
            self.chunks
                .push(Arc::new(Vec::with_capacity(BPT_CHUNK_LEN)));
        }
        Arc::make_mut(self.chunks.last_mut().expect("segment just ensured")).push(bpt);
        self.len += 1;
    }

    pub fn get(&self, id: NodeId) -> &Bpt {
        let i = id.0 as usize;
        &self.chunks[i >> BPT_CHUNK_SHIFT][i & (BPT_CHUNK_LEN - 1)]
    }

    /// Rebuilds the BPT of one node (used when dynamic inserts change a
    /// node's entry set), growing the slab when the node is new. Copies
    /// only the segment the slot lives in.
    pub fn rebuild_node(&mut self, tree: &RTree, id: NodeId) {
        while self.len <= id.0 as usize {
            // Slots for nodes created by this batch; every new node is in
            // the dirty set, so each placeholder is rebuilt in turn.
            self.push(Arc::new(Bpt::default()));
        }
        let node = tree.node(id);
        let mbrs: Vec<Rect> = (0..node.len()).map(|j| node.mbr_at(j)).collect();
        let i = id.0 as usize;
        let chunk = Arc::make_mut(&mut self.chunks[i >> BPT_CHUNK_SHIFT]);
        chunk[i & (BPT_CHUNK_LEN - 1)] = Arc::new(Bpt::build(&mbrs));
    }

    /// Total auxiliary bytes across all nodes — the §6.4 "4.2 MB for NE"
    /// figure; bounded by twice the R-tree size.
    pub fn total_aux_bytes(&self) -> u64 {
        self.chunks
            .iter()
            .flat_map(|c| c.iter())
            .map(|b| b.aux_bytes())
            .sum()
    }

    /// Number of BPT slots (one per tree slab slot).
    pub fn node_count(&self) -> usize {
        self.len
    }

    /// How many per-node BPTs `self` physically shares with `other` (same
    /// `Arc` at the same slot) — the structural-sharing diagnostic
    /// mirroring [`RTree::shared_node_slots`].
    pub fn shared_bpts(&self, other: &BptStore) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| {
                if Arc::ptr_eq(a, b) {
                    a.len()
                } else {
                    a.iter()
                        .zip(b.iter())
                        .filter(|(x, y)| Arc::ptr_eq(x, y))
                        .count()
                }
            })
            .sum()
    }

    /// Number of store segments (denominator for
    /// [`shared_chunks`](BptStore::shared_chunks)).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// How many whole segments `self` physically shares with `other` — the
    /// pointer-table analogue of [`BptStore::shared_bpts`].
    pub fn shared_chunks(&self, other: &BptStore) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::Point;

    #[test]
    fn code_raw_round_trips_and_validates() {
        let code = Code::ROOT.child(true).child(false).child(true);
        let (bits, len) = code.raw();
        assert_eq!(Code::from_raw(bits, len), Some(code));
        assert_eq!(Code::from_raw(0, 0), Some(Code::ROOT));
        // Stray bits above `len` and over-long lengths are rejected.
        assert_eq!(Code::from_raw(0b100, 2), None);
        assert_eq!(Code::from_raw(0, 33), None);
        assert!(Code::from_raw(u32::MAX, 32).is_some());
    }

    fn mbrs(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = (i % 7) as f64 * 0.13;
                let y = (i / 7) as f64 * 0.11;
                Rect::from_coords(x, y, x + 0.05, y + 0.04)
            })
            .collect()
    }

    #[test]
    fn code_round_trips() {
        let c = Code::ROOT.child(false).child(true).child(true);
        assert_eq!(c.depth(), 3);
        assert!(!c.bit(0));
        assert!(c.bit(1));
        assert!(c.bit(2));
        assert_eq!(c.parent().unwrap().depth(), 2);
        assert_eq!(Code::ROOT.parent(), None);
        assert_eq!(format!("{c}"), "011");
        assert_eq!(format!("{}", Code::ROOT), "ε");
    }

    #[test]
    fn code_prefix_relation() {
        let a = Code::ROOT.child(true);
        let b = a.child(false).child(true);
        assert!(Code::ROOT.is_prefix_of(b));
        assert!(a.is_prefix_of(b));
        assert!(a.is_prefix_of(a));
        assert!(!b.is_prefix_of(a));
        assert!(!a.child(true).is_prefix_of(b));
    }

    #[test]
    fn build_counts_match_formula() {
        for n in [1usize, 2, 3, 5, 8, 50, 102] {
            let bpt = Bpt::build(&mbrs(n));
            assert_eq!(bpt.cell_count(), 2 * n - 1, "n={n}");
            assert_eq!(bpt.internal_count(), n - 1, "n={n}");
        }
    }

    #[test]
    fn empty_node_has_empty_bpt() {
        let bpt = Bpt::build(&[]);
        assert!(bpt.is_empty());
        assert_eq!(bpt.find(Code::ROOT), None);
        assert!(bpt.descend(Code::ROOT, 3).is_empty());
    }

    #[test]
    fn single_entry_bpt_is_one_leaf() {
        let bpt = Bpt::build(&mbrs(1));
        assert_eq!(bpt.cell_count(), 1);
        assert_eq!(bpt.height(), 0);
        match bpt.find(Code::ROOT).unwrap().kind {
            BptCellKind::Leaf { entry_idx } => assert_eq!(entry_idx, 0),
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    fn root_mbr_covers_all_entries() {
        let ms = mbrs(23);
        let bpt = Bpt::build(&ms);
        let root = bpt.find(Code::ROOT).unwrap();
        let total = Rect::union_all(ms.iter().copied()).unwrap();
        assert_eq!(root.mbr, total);
    }

    #[test]
    fn internal_mbr_is_union_of_children() {
        let ms = mbrs(17);
        let bpt = Bpt::build(&ms);
        // Walk every internal cell.
        let mut stack = vec![Code::ROOT];
        while let Some(code) = stack.pop() {
            if let Some([(c0, l), (c1, r)]) = bpt.children(code) {
                let cell = bpt.find(code).unwrap();
                assert_eq!(cell.mbr, l.mbr.union(&r.mbr), "cell {code}");
                stack.push(c0);
                stack.push(c1);
            }
        }
    }

    #[test]
    fn leaf_cells_cover_every_entry_exactly_once() {
        let ms = mbrs(29);
        let bpt = Bpt::build(&ms);
        let leaves = bpt.leaf_cells();
        assert_eq!(leaves.len(), 29);
        let mut seen: Vec<u16> = leaves
            .iter()
            .map(|(_, c)| match c.kind {
                BptCellKind::Leaf { entry_idx } => entry_idx,
                _ => panic!("descend(∞) must return leaves"),
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..29).collect::<Vec<_>>());
    }

    #[test]
    fn descend_levels_form_antichains() {
        let ms = mbrs(40);
        let bpt = Bpt::build(&ms);
        for d in 0..=bpt.height() {
            let frontier = bpt.descend(Code::ROOT, d);
            // Pairwise non-prefix (an antichain in the code order).
            for i in 0..frontier.len() {
                for j in 0..frontier.len() {
                    if i != j {
                        assert!(
                            !frontier[i].0.is_prefix_of(frontier[j].0),
                            "{} is prefix of {}",
                            frontier[i].0,
                            frontier[j].0
                        );
                    }
                }
            }
            // And the union of MBRs covers the root.
            let union = Rect::union_all(frontier.iter().map(|(_, c)| c.mbr)).unwrap();
            assert_eq!(union, bpt.find(Code::ROOT).unwrap().mbr);
        }
    }

    #[test]
    fn depth_is_bounded_for_identical_rects() {
        // Worst case for split heuristics: all entries identical. The 35 %
        // minimum side keeps the tree balanced.
        let ms: Vec<Rect> = (0..102)
            .map(|_| Rect::from_point(Point::new(0.5, 0.5)))
            .collect();
        let bpt = Bpt::build(&ms);
        assert!(bpt.height() <= 16, "height {}", bpt.height());
    }

    #[test]
    fn midpoint_policy_builds_valid_trees() {
        for n in [1usize, 2, 7, 40] {
            let bpt = Bpt::build_with(&mbrs(n), SplitPolicy::Midpoint);
            assert_eq!(bpt.cell_count(), 2 * n - 1, "n={n}");
            let leaves = bpt.leaf_cells();
            assert_eq!(leaves.len(), n);
            let mut seen: Vec<u16> = leaves
                .iter()
                .map(|(_, c)| match c.kind {
                    BptCellKind::Leaf { entry_idx } => entry_idx,
                    _ => unreachable!(),
                })
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u16).collect::<Vec<_>>());
            // Internal MBRs still union children.
            let mut stack = vec![Code::ROOT];
            while let Some(code) = stack.pop() {
                if let Some([(c0, l), (c1, r)]) = bpt.children(code) {
                    assert_eq!(bpt.find(code).unwrap().mbr, l.mbr.union(&r.mbr));
                    stack.push(c0);
                    stack.push(c1);
                }
            }
        }
    }

    #[test]
    fn rstar_policy_overlaps_less_than_midpoint() {
        // Sum of sibling-overlap areas over all internal cells: the R*
        // policy must not be worse than the naïve cut on clustered data.
        let ms: Vec<Rect> = (0..60)
            .map(|i| {
                let (cx, cy) = if i % 2 == 0 { (0.2, 0.2) } else { (0.8, 0.7) };
                let dx = (i / 2) as f64 * 0.004;
                Rect::from_coords(cx + dx, cy, cx + dx + 0.05, cy + 0.05)
            })
            .collect();
        let overlap = |policy| {
            let bpt = Bpt::build_with(&ms, policy);
            let mut total = 0.0;
            let mut stack = vec![Code::ROOT];
            while let Some(code) = stack.pop() {
                if let Some([(c0, l), (c1, r)]) = bpt.children(code) {
                    total += l.mbr.overlap_area(&r.mbr);
                    stack.push(c0);
                    stack.push(c1);
                }
            }
            total
        };
        assert!(overlap(SplitPolicy::RStar) <= overlap(SplitPolicy::Midpoint) + 1e-12);
    }

    #[test]
    fn aux_bytes_matches_paper_formula() {
        let bpt = Bpt::build(&mbrs(10));
        // 9 super entries * 40 bytes + 18 pointers * 8 bytes.
        assert_eq!(bpt.aux_bytes(), 9 * 40 + 18 * 8);
    }
}
