//! Plain R-tree query algorithms (§3.1): range search, best-first kNN
//! (Hjaltason & Samet \[11\]) and the RJ distance join (Brinkhoff et al.
//! \[3\]).
//!
//! The production kernels are **iterative** (explicit stacks, no recursion
//! — pathological tree depth cannot blow the call stack) and scan the
//! struct-of-arrays MBR columns of [`crate::Node`] directly: window
//! qualification, `MINDIST` and rect-pair pruning each run over four
//! contiguous `f64` lanes with non-short-circuiting combines, the shape the
//! compiler autovectorizes. All transient state (stacks, the kNN heap)
//! lives in a caller-owned [`QueryScratch`] so steady-state query loops
//! allocate nothing per query.
//!
//! The original recursive entry-at-a-time implementations survive in
//! [`baseline`] — they are the comparison arm of the `bench_query_kernel`
//! criterion bench and an extra cross-check oracle. These are *independent
//! implementations* from the generic engine in [`crate::engine`]: the test
//! suites cross-check the two against each other and against the
//! brute-force oracle in [`crate::naive`], so a bug would have to be
//! introduced three times to go unnoticed.

use crate::tree::RTree;
use crate::{ChildRef, NodeId, ObjectId};
use pc_geom::{Point, Rect};
use std::collections::BinaryHeap;

#[derive(Clone, Debug, PartialEq)]
enum HiItem {
    Node(NodeId),
    Obj(ObjectId),
}

/// kNN heap entry: `(distance, tie-break seq, payload)`, min-ordered on
/// distance then seq so `BinaryHeap` pops nearest-first deterministically.
#[derive(Clone, Debug)]
struct Hi(f64, u64, HiItem);

impl PartialEq for Hi {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for Hi {}
impl PartialOrd for Hi {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Hi {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

/// Reusable traversal state for the iterative kernels: the DFS stack
/// (range), the pair stack (join) and the best-first heap (kNN). One per
/// query session — [`range_query_with`], [`knn_query_with`] and
/// [`distance_self_join_with`] clear and refill it, so a loop issuing
/// thousands of queries performs zero per-query heap allocations once the
/// buffers have grown to steady state.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    stack: Vec<NodeId>,
    pairs: Vec<(NodeId, NodeId)>,
    heap: BinaryHeap<Hi>,
}

/// All objects whose MBR intersects `window`, in unspecified order.
pub fn range_query(tree: &RTree, window: &Rect) -> Vec<ObjectId> {
    let mut out = Vec::new();
    range_query_with(tree, window, &mut QueryScratch::default(), &mut out);
    out
}

/// [`range_query`] into caller-owned buffers: `out` is cleared and filled.
pub fn range_query_with(
    tree: &RTree,
    window: &Rect,
    scratch: &mut QueryScratch,
    out: &mut Vec<ObjectId>,
) {
    out.clear();
    scratch.stack.clear();
    scratch.stack.push(tree.root());
    while let Some(id) = scratch.stack.pop() {
        let node = tree.node(id);
        let (min_x, min_y, max_x, max_y) = node.mbr_cols();
        let children = node.children();
        for i in 0..children.len() {
            // Non-short-circuiting `&`: all four lane compares issue
            // unconditionally, which keeps the qualification branch-light.
            let hit = (min_x[i] <= window.max.x)
                & (window.min.x <= max_x[i])
                & (min_y[i] <= window.max.y)
                & (window.min.y <= max_y[i]);
            if hit {
                match children[i] {
                    ChildRef::Node(c) => scratch.stack.push(c),
                    ChildRef::Object(o) => out.push(o),
                }
            }
        }
    }
}

/// The `k` nearest objects to `center` with their distances, closest first.
/// Object distance is `MINDIST` to the object's MBR (exact for the point
/// data of the NE-like dataset; the conventional measure for extended
/// objects). Ties are broken by object id for determinism.
pub fn knn_query(tree: &RTree, center: &Point, k: usize) -> Vec<(ObjectId, f64)> {
    let mut out = Vec::new();
    knn_query_with(tree, center, k, &mut QueryScratch::default(), &mut out);
    out
}

/// [`knn_query`] into caller-owned buffers: `out` is cleared and filled.
pub fn knn_query_with(
    tree: &RTree,
    center: &Point,
    k: usize,
    scratch: &mut QueryScratch,
    out: &mut Vec<(ObjectId, f64)>,
) {
    out.clear();
    if k == 0 || tree.object_count() == 0 {
        return;
    }
    let heap = &mut scratch.heap;
    heap.clear();
    let mut seq = 0u64;
    heap.push(Hi(0.0, seq, HiItem::Node(tree.root())));
    while let Some(Hi(d, _, item)) = heap.pop() {
        match item {
            HiItem::Node(n) => {
                let node = tree.node(n);
                let (min_x, min_y, max_x, max_y) = node.mbr_cols();
                let children = node.children();
                for i in 0..children.len() {
                    seq += 1;
                    // MINDIST over the columns — bit-identical to
                    // `Rect::min_dist` so results match the baseline exactly.
                    let dx = (min_x[i] - center.x).max(0.0).max(center.x - max_x[i]);
                    let dy = (min_y[i] - center.y).max(0.0).max(center.y - max_y[i]);
                    let dist = (dx * dx + dy * dy).sqrt();
                    match children[i] {
                        ChildRef::Node(c) => heap.push(Hi(dist, seq, HiItem::Node(c))),
                        // Tie-break object pops by id so equal-distance
                        // results are deterministic.
                        ChildRef::Object(o) => heap.push(Hi(dist, o.0 as u64, HiItem::Obj(o))),
                    }
                }
            }
            HiItem::Obj(o) => {
                out.push((o, d));
                if out.len() == k {
                    break;
                }
            }
        }
    }
    heap.clear();
}

/// Distance self-join: all canonical pairs `(a, b)` with `a < b` whose MBR
/// distance is at most `dist`, sorted for deterministic comparison.
pub fn distance_self_join(tree: &RTree, dist: f64) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    distance_self_join_with(tree, dist, &mut QueryScratch::default(), &mut out);
    out
}

/// [`distance_self_join`] into caller-owned buffers: `out` is cleared,
/// filled and sorted.
pub fn distance_self_join_with(
    tree: &RTree,
    dist: f64,
    scratch: &mut QueryScratch,
    out: &mut Vec<(ObjectId, ObjectId)>,
) {
    out.clear();
    if tree.object_count() == 0 {
        out.sort_unstable();
        return;
    }
    scratch.pairs.clear();
    scratch.pairs.push((tree.root(), tree.root()));
    while let Some((a, b)) = scratch.pairs.pop() {
        let na = tree.node(a);
        let nb = tree.node(b);
        let same = a == b;
        let (a_min_x, a_min_y, a_max_x, a_max_y) = na.mbr_cols();
        let (b_min_x, b_min_y, b_max_x, b_max_y) = nb.mbr_cols();
        for i in 0..na.len() {
            // Same-node pairs scan the upper triangle only (j >= i), which
            // yields each candidate pair exactly once with no dedup pass.
            let j0 = if same { i } else { 0 };
            for j in j0..nb.len() {
                // Rect-pair MINDIST over the columns — bit-identical to
                // `Rect::min_dist_rect`.
                let dx = (a_min_x[i] - b_max_x[j])
                    .max(0.0)
                    .max(b_min_x[j] - a_max_x[i]);
                let dy = (a_min_y[i] - b_max_y[j])
                    .max(0.0)
                    .max(b_min_y[j] - a_max_y[i]);
                if (dx * dx + dy * dy).sqrt() > dist {
                    continue;
                }
                match (na.child_at(i), nb.child_at(j)) {
                    (ChildRef::Node(ca), ChildRef::Node(cb)) => scratch.pairs.push((ca, cb)),
                    (ChildRef::Object(oa), ChildRef::Object(ob)) => {
                        if oa != ob {
                            out.push(if oa < ob { (oa, ob) } else { (ob, oa) });
                        }
                    }
                    // Balanced tree + lockstep descent: levels always match.
                    _ => unreachable!("mixed node/object pair in balanced self-join"),
                }
            }
        }
    }
    out.sort_unstable();
}

/// The pre-SoA recursive kernels, retained verbatim (modulo the [`Entry`]
/// accessor API) as the comparison arm of the `bench_query_kernel`
/// criterion bench and an additional oracle for the proptests.
///
/// **Do not use on adversarially deep trees** — the recursion depth equals
/// the tree height, which is exactly the hazard the iterative kernels above
/// remove.
///
/// [`Entry`]: crate::Entry
pub mod baseline {
    use super::*;

    /// Recursive counterpart of [`range_query`](super::range_query).
    pub fn range_query(tree: &RTree, window: &Rect) -> Vec<ObjectId> {
        let mut out = Vec::new();
        range_rec(tree, tree.root(), window, &mut out);
        out
    }

    fn range_rec(tree: &RTree, node: NodeId, window: &Rect, out: &mut Vec<ObjectId>) {
        for e in tree.node(node).entries() {
            if !window.intersects(&e.mbr) {
                continue;
            }
            match e.child {
                ChildRef::Node(c) => range_rec(tree, c, window, out),
                ChildRef::Object(o) => out.push(o),
            }
        }
    }

    /// Entry-at-a-time counterpart of [`knn_query`](super::knn_query)
    /// (the loop itself was already iterative over a heap).
    pub fn knn_query(tree: &RTree, center: &Point, k: usize) -> Vec<(ObjectId, f64)> {
        let mut out = Vec::new();
        if k == 0 || tree.object_count() == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Hi(0.0, seq, HiItem::Node(tree.root())));
        while let Some(Hi(d, _, item)) = heap.pop() {
            match item {
                HiItem::Node(n) => {
                    for e in tree.node(n).entries() {
                        seq += 1;
                        let dist = e.mbr.min_dist(center);
                        match e.child {
                            ChildRef::Node(c) => heap.push(Hi(dist, seq, HiItem::Node(c))),
                            ChildRef::Object(o) => heap.push(Hi(dist, o.0 as u64, HiItem::Obj(o))),
                        }
                    }
                }
                HiItem::Obj(o) => {
                    out.push((o, d));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Recursive counterpart of
    /// [`distance_self_join`](super::distance_self_join).
    pub fn distance_self_join(tree: &RTree, dist: f64) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        if tree.object_count() > 0 {
            join_rec(tree, tree.root(), tree.root(), dist, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn join_rec(
        tree: &RTree,
        a: NodeId,
        b: NodeId,
        dist: f64,
        out: &mut Vec<(ObjectId, ObjectId)>,
    ) {
        let na = tree.node(a);
        let nb = tree.node(b);
        let same = a == b;
        for (i, ea) in na.entries().enumerate() {
            let j0 = if same { i } else { 0 };
            for eb in nb.entries().skip(j0) {
                if ea.mbr.min_dist_rect(&eb.mbr) > dist {
                    continue;
                }
                match (ea.child, eb.child) {
                    (ChildRef::Node(ca), ChildRef::Node(cb)) => join_rec(tree, ca, cb, dist, out),
                    (ChildRef::Object(oa), ChildRef::Object(ob)) => {
                        if oa != ob {
                            out.push(if oa < ob { (oa, ob) } else { (ob, oa) });
                        }
                    }
                    // Balanced tree + lockstep descent: levels always match.
                    _ => unreachable!("mixed node/object pair in balanced self-join"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::tree::RTreeConfig;
    use crate::{ObjectStore, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> (ObjectStore, RTree) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.02);
                let h: f64 = rng.random_range(0.0..0.02);
                SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                    size_bytes: 100,
                }
            })
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        (ObjectStore::new(objects), tree)
    }

    #[test]
    fn range_matches_naive() {
        let (store, tree) = dataset(400, 1);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut scratch = QueryScratch::default();
        let mut buf = Vec::new();
        for _ in 0..50 {
            let cx: f64 = rng.random_range(0.0..1.0);
            let cy: f64 = rng.random_range(0.0..1.0);
            let s: f64 = rng.random_range(0.01..0.3);
            let w = Rect::centered_square(Point::new(cx, cy), s);
            let mut got = range_query(&tree, &w);
            got.sort_unstable();
            assert_eq!(got, naive::range_naive(&store, &w));
            // The scratch-reusing variant and the recursive baseline agree.
            range_query_with(&tree, &w, &mut scratch, &mut buf);
            buf.sort_unstable();
            assert_eq!(buf, got);
            let mut base = baseline::range_query(&tree, &w);
            base.sort_unstable();
            assert_eq!(base, got);
        }
    }

    #[test]
    fn knn_matches_naive() {
        let (store, tree) = dataset(300, 2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut scratch = QueryScratch::default();
        let mut buf = Vec::new();
        for _ in 0..50 {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            let k = rng.random_range(1..12usize);
            let got = knn_query(&tree, &p, k);
            let want = naive::knn_naive(&store, &p, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                // Distances must agree exactly; ids may differ only on ties.
                assert!((g.1 - w.1).abs() < 1e-12, "dist mismatch {g:?} vs {w:?}");
            }
            // The SoA MINDIST is bit-identical to the baseline's, so the
            // full result (ids included) matches exactly.
            knn_query_with(&tree, &p, k, &mut scratch, &mut buf);
            assert_eq!(buf, got);
            assert_eq!(baseline::knn_query(&tree, &p, k), got);
        }
    }

    #[test]
    fn knn_distances_are_nondecreasing() {
        let (_, tree) = dataset(200, 3);
        let got = knn_query(&tree, &Point::new(0.5, 0.5), 25);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn knn_k_zero_and_k_beyond_n() {
        let (_, tree) = dataset(10, 4);
        assert!(knn_query(&tree, &Point::ORIGIN, 0).is_empty());
        assert_eq!(knn_query(&tree, &Point::ORIGIN, 50).len(), 10);
    }

    #[test]
    fn join_matches_naive() {
        let mut scratch = QueryScratch::default();
        let mut buf = Vec::new();
        for seed in [5u64, 6, 7] {
            let (store, tree) = dataset(150, seed);
            for dist in [0.0, 0.01, 0.05, 0.15] {
                let got = distance_self_join(&tree, dist);
                let want = naive::join_naive(&store, dist);
                assert_eq!(got, want, "seed {seed} dist {dist}");
                distance_self_join_with(&tree, dist, &mut scratch, &mut buf);
                assert_eq!(buf, got);
                assert_eq!(baseline::distance_self_join(&tree, dist), got);
            }
        }
    }

    #[test]
    fn join_has_no_self_or_mirror_pairs() {
        let (_, tree) = dataset(120, 8);
        let got = distance_self_join(&tree, 0.1);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), got.len(), "duplicate pairs");
        for (a, b) in &got {
            assert!(a < b, "non-canonical pair ({a}, {b})");
        }
    }

    #[test]
    fn queries_on_empty_tree() {
        let tree = RTree::new(RTreeConfig::small());
        assert!(range_query(&tree, &Rect::UNIT).is_empty());
        assert!(knn_query(&tree, &Point::ORIGIN, 5).is_empty());
        assert!(distance_self_join(&tree, 0.5).is_empty());
    }

    #[test]
    fn scratch_reuse_leaves_no_stale_results() {
        // A wide query followed by a narrow one through the same scratch
        // and output buffers: the second result must not retain the first's.
        let (store, tree) = dataset(250, 9);
        let mut scratch = QueryScratch::default();
        let mut ids = Vec::new();
        let mut nn = Vec::new();
        range_query_with(&tree, &Rect::UNIT, &mut scratch, &mut ids);
        assert_eq!(ids.len(), 250);
        let narrow = Rect::centered_square(Point::new(0.5, 0.5), 0.05);
        range_query_with(&tree, &narrow, &mut scratch, &mut ids);
        ids.sort_unstable();
        assert_eq!(ids, naive::range_naive(&store, &narrow));
        knn_query_with(&tree, &Point::new(0.1, 0.9), 7, &mut scratch, &mut nn);
        assert_eq!(nn.len(), 7);
        knn_query_with(&tree, &Point::new(0.9, 0.1), 3, &mut scratch, &mut nn);
        assert_eq!(nn.len(), 3);
        let naive_nn = naive::knn_naive(&store, &Point::new(0.9, 0.1), 3);
        for (g, w) in nn.iter().zip(&naive_nn) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn iterative_kernels_survive_pathological_depth() {
        // Regression for the recursion hazard: a 50 000-level single-entry
        // chain ran the old recursive kernels out of stack (50k frames need
        // megabytes). The iterative kernels traverse it inside a 64 KiB
        // thread stack — heap-allocated traversal state, O(1) stack frames.
        let tree = RTree::degenerate_chain(RTreeConfig::small(), 50_000);
        let handle = std::thread::Builder::new()
            .name("tiny-stack-query".into())
            .stack_size(64 * 1024)
            .spawn(move || {
                let mut scratch = QueryScratch::default();
                let mut ids = Vec::new();
                range_query_with(&tree, &Rect::UNIT, &mut scratch, &mut ids);
                assert_eq!(ids, vec![ObjectId(0)]);
                let mut nn = Vec::new();
                knn_query_with(&tree, &Point::ORIGIN, 1, &mut scratch, &mut nn);
                assert_eq!(nn.len(), 1);
                assert_eq!(nn[0].0, ObjectId(0));
                let mut pairs = Vec::new();
                distance_self_join_with(&tree, 1.0, &mut scratch, &mut pairs);
                assert!(pairs.is_empty(), "a single object joins with nothing");
            })
            .expect("spawn tiny-stack thread");
        handle
            .join()
            .expect("deep-tree traversal must not overflow");
    }
}
