//! Plain R-tree query algorithms (§3.1): recursive range search, best-first
//! kNN (Hjaltason & Samet \[11\]) and the recursive RJ distance join
//! (Brinkhoff et al. \[3\]).
//!
//! These are *independent implementations* from the generic engine in
//! [`crate::engine`]: the test suites cross-check the two against each
//! other and against the brute-force oracle in [`crate::naive`], so a bug
//! would have to be introduced three times to go unnoticed.

use crate::tree::RTree;
use crate::{ChildRef, NodeId, ObjectId};
use pc_geom::{Point, Rect};
use std::collections::BinaryHeap;

/// All objects whose MBR intersects `window`, in unspecified order.
pub fn range_query(tree: &RTree, window: &Rect) -> Vec<ObjectId> {
    let mut out = Vec::new();
    range_rec(tree, tree.root(), window, &mut out);
    out
}

fn range_rec(tree: &RTree, node: NodeId, window: &Rect, out: &mut Vec<ObjectId>) {
    for e in &tree.node(node).entries {
        if !window.intersects(&e.mbr) {
            continue;
        }
        match e.child {
            ChildRef::Node(c) => range_rec(tree, c, window, out),
            ChildRef::Object(o) => out.push(o),
        }
    }
}

/// The `k` nearest objects to `center` with their distances, closest first.
/// Object distance is `MINDIST` to the object's MBR (exact for the point
/// data of the NE-like dataset; the conventional measure for extended
/// objects). Ties are broken by object id for determinism.
pub fn knn_query(tree: &RTree, center: &Point, k: usize) -> Vec<(ObjectId, f64)> {
    #[derive(PartialEq)]
    enum Item {
        Node(NodeId),
        Obj(ObjectId),
    }
    struct Hi(f64, u64, Item);
    impl PartialEq for Hi {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0 && self.1 == other.1
        }
    }
    impl Eq for Hi {}
    impl PartialOrd for Hi {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Hi {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
        }
    }

    let mut out = Vec::new();
    if k == 0 || tree.object_count() == 0 {
        return out;
    }
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(Hi(0.0, seq, Item::Node(tree.root())));
    while let Some(Hi(d, _, item)) = heap.pop() {
        match item {
            Item::Node(n) => {
                for e in &tree.node(n).entries {
                    seq += 1;
                    let dist = e.mbr.min_dist(center);
                    match e.child {
                        ChildRef::Node(c) => heap.push(Hi(dist, seq, Item::Node(c))),
                        // Tie-break object pops by id so equal-distance
                        // results are deterministic.
                        ChildRef::Object(o) => heap.push(Hi(dist, o.0 as u64, Item::Obj(o))),
                    }
                }
            }
            Item::Obj(o) => {
                out.push((o, d));
                if out.len() == k {
                    break;
                }
            }
        }
    }
    out
}

/// Distance self-join: all canonical pairs `(a, b)` with `a < b` whose MBR
/// distance is at most `dist`, sorted for deterministic comparison.
pub fn distance_self_join(tree: &RTree, dist: f64) -> Vec<(ObjectId, ObjectId)> {
    let mut out = Vec::new();
    if tree.object_count() > 0 {
        join_rec(tree, tree.root(), tree.root(), dist, &mut out);
    }
    out.sort_unstable();
    out
}

fn join_rec(tree: &RTree, a: NodeId, b: NodeId, dist: f64, out: &mut Vec<(ObjectId, ObjectId)>) {
    let na = tree.node(a);
    let nb = tree.node(b);
    let same = a == b;
    for (i, ea) in na.entries.iter().enumerate() {
        let j0 = if same { i } else { 0 };
        for eb in nb.entries.iter().skip(j0) {
            if ea.mbr.min_dist_rect(&eb.mbr) > dist {
                continue;
            }
            match (ea.child, eb.child) {
                (ChildRef::Node(ca), ChildRef::Node(cb)) => join_rec(tree, ca, cb, dist, out),
                (ChildRef::Object(oa), ChildRef::Object(ob)) => {
                    if oa != ob {
                        out.push(if oa < ob { (oa, ob) } else { (ob, oa) });
                    }
                }
                // Balanced tree + lockstep descent: levels always match.
                _ => unreachable!("mixed node/object pair in balanced self-join"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::tree::RTreeConfig;
    use crate::{ObjectStore, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, seed: u64) -> (ObjectStore, RTree) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.02);
                let h: f64 = rng.random_range(0.0..0.02);
                SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_coords(x, y, (x + w).min(1.0), (y + h).min(1.0)),
                    size_bytes: 100,
                }
            })
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::small(), &objects);
        (ObjectStore::new(objects), tree)
    }

    #[test]
    fn range_matches_naive() {
        let (store, tree) = dataset(400, 1);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let cx: f64 = rng.random_range(0.0..1.0);
            let cy: f64 = rng.random_range(0.0..1.0);
            let s: f64 = rng.random_range(0.01..0.3);
            let w = Rect::centered_square(Point::new(cx, cy), s);
            let mut got = range_query(&tree, &w);
            got.sort_unstable();
            assert_eq!(got, naive::range_naive(&store, &w));
        }
    }

    #[test]
    fn knn_matches_naive() {
        let (store, tree) = dataset(300, 2);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            let k = rng.random_range(1..12usize);
            let got = knn_query(&tree, &p, k);
            let want = naive::knn_naive(&store, &p, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                // Distances must agree exactly; ids may differ only on ties.
                assert!((g.1 - w.1).abs() < 1e-12, "dist mismatch {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn knn_distances_are_nondecreasing() {
        let (_, tree) = dataset(200, 3);
        let got = knn_query(&tree, &Point::new(0.5, 0.5), 25);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn knn_k_zero_and_k_beyond_n() {
        let (_, tree) = dataset(10, 4);
        assert!(knn_query(&tree, &Point::ORIGIN, 0).is_empty());
        assert_eq!(knn_query(&tree, &Point::ORIGIN, 50).len(), 10);
    }

    #[test]
    fn join_matches_naive() {
        for seed in [5u64, 6, 7] {
            let (store, tree) = dataset(150, seed);
            for dist in [0.0, 0.01, 0.05, 0.15] {
                let got = distance_self_join(&tree, dist);
                let want = naive::join_naive(&store, dist);
                assert_eq!(got, want, "seed {seed} dist {dist}");
            }
        }
    }

    #[test]
    fn join_has_no_self_or_mirror_pairs() {
        let (_, tree) = dataset(120, 8);
        let got = distance_self_join(&tree, 0.1);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), got.len(), "duplicate pairs");
        for (a, b) in &got {
            assert!(a < b, "non-canonical pair ({a}, {b})");
        }
    }

    #[test]
    fn queries_on_empty_tree() {
        let tree = RTree::new(RTreeConfig::small());
        assert!(range_query(&tree, &Rect::UNIT).is_empty());
        assert!(knn_query(&tree, &Point::ORIGIN, 5).is_empty());
        assert!(distance_self_join(&tree, 0.5).is_empty());
    }
}
