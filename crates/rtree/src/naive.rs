//! Brute-force query oracles: linear scans over the object store, used by
//! every test suite as ground truth for the R-tree algorithms, the generic
//! engine and the caching pipelines.
//!
//! All oracles skip tombstoned objects ([`ObjectStore::is_live`]): a
//! deleted object is out of the index, so the ground truth excludes it too.

use crate::{ObjectId, ObjectStore};
use pc_geom::{Point, Rect};

/// Linear-scan range query, sorted by id.
pub fn range_naive(store: &ObjectStore, window: &Rect) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = store
        .iter_live()
        .filter(|o| window.intersects(&o.mbr))
        .map(|o| o.id)
        .collect();
    out.sort_unstable();
    out
}

/// Linear-scan kNN, closest first, ties broken by id.
pub fn knn_naive(store: &ObjectStore, center: &Point, k: usize) -> Vec<(ObjectId, f64)> {
    let mut all: Vec<(ObjectId, f64)> = store
        .iter_live()
        .map(|o| (o.id, o.mbr.min_dist(center)))
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Quadratic distance self-join, canonical sorted pairs.
pub fn join_naive(store: &ObjectStore, dist: f64) -> Vec<(ObjectId, ObjectId)> {
    let objs: Vec<_> = store.iter_live().collect();
    let mut out = Vec::new();
    for i in 0..objs.len() {
        for j in i + 1..objs.len() {
            if objs[i].mbr.min_dist_rect(&objs[j].mbr) <= dist {
                out.push((objs[i].id, objs[j].id));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialObject;

    fn store() -> ObjectStore {
        let pts = [(0.1, 0.1), (0.2, 0.1), (0.9, 0.9), (0.5, 0.5)];
        ObjectStore::new(
            pts.iter()
                .enumerate()
                .map(|(i, &(x, y))| SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_point(Point::new(x, y)),
                    size_bytes: 10,
                })
                .collect(),
        )
    }

    #[test]
    fn range_picks_contained_points() {
        let s = store();
        let got = range_naive(&s, &Rect::from_coords(0.0, 0.0, 0.3, 0.3));
        assert_eq!(got, vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn knn_orders_by_distance() {
        let s = store();
        let got = knn_naive(&s, &Point::new(0.0, 0.0), 2);
        assert_eq!(got[0].0, ObjectId(0));
        assert_eq!(got[1].0, ObjectId(1));
        assert!(got[0].1 < got[1].1);
    }

    #[test]
    fn join_finds_close_pair_only() {
        let s = store();
        let got = join_naive(&s, 0.15);
        assert_eq!(got, vec![(ObjectId(0), ObjectId(1))]);
    }
}
