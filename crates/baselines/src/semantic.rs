//! SEM: semantic caching (§2, §6.1). Range queries are trimmed against
//! cached range regions (Ren & Dunham \[15\]) and the remainder pieces are
//! fetched and cached as new regions under FAR replacement; kNN queries are
//! reused through the validity-circle scheme of Zheng & Lee \[20\]; join
//! queries pass straight through.
//!
//! By construction the cache helps "subsequent queries of the same type
//! only" — a cached range region never answers a kNN and vice versa —
//! which is precisely the weakness proactive caching removes (Example 1.2).

use crate::BaselineAnswer;
use pc_geom::{Point, Rect};
use pc_net::Ledger;
use pc_rtree::proto::{QuerySpec, Request, OBJECT_HEADER_BYTES, PAIR_BYTES, QUERY_DESC_BYTES};
use pc_rtree::ObjectId;
use pc_server::{ClientId, ServerHandle};
use std::collections::{HashMap, HashSet};

/// Above this many remainder fragments the client coalesces: it submits
/// the whole window and replaces the overlapping regions (the paper notes
/// semantic caching "entails complicated cache management … whether to
/// coalesce these two queries or to trim either of them"; this is the
/// standard bounded-fragmentation compromise).
pub const MAX_FRAGMENTS: usize = 16;

/// Wire/storage cost of one semantic description.
const REGION_DESC_BYTES: u64 = 64;

#[derive(Clone, Copy, Debug, PartialEq)]
struct CachedObj {
    id: ObjectId,
    mbr: Rect,
    size: u32,
}

#[derive(Clone, Debug)]
enum Region {
    /// A rectangle the client has complete knowledge of.
    Range { rect: Rect, objects: Vec<CachedObj> },
    /// A kNN result: complete knowledge of the disc around `center` with
    /// `radius` = distance of the k-th neighbor.
    Knn {
        center: Point,
        radius: f64,
        objects: Vec<CachedObj>, // sorted by distance from `center`
    },
}

impl Region {
    fn bytes(&self) -> u64 {
        let objs = match self {
            Region::Range { objects, .. } | Region::Knn { objects, .. } => objects,
        };
        REGION_DESC_BYTES
            + objs
                .iter()
                .map(|o| OBJECT_HEADER_BYTES + o.size as u64)
                .sum::<u64>()
    }

    fn center(&self) -> Point {
        match self {
            Region::Range { rect, .. } => rect.center(),
            Region::Knn { center, .. } => *center,
        }
    }
}

/// The semantic cache: a set of regions with FAR replacement.
#[derive(Clone, Debug)]
pub struct SemanticCache {
    capacity: u64,
    used: u64,
    regions: Vec<Region>,
    /// Reference counts so `contains_object` is O(1) (an object can sit in
    /// several regions when it straddles their borders).
    resident: HashMap<ObjectId, u32>,
}

impl SemanticCache {
    pub fn new(capacity: u64) -> Self {
        SemanticCache {
            capacity,
            used: 0,
            regions: Vec::new(),
            resident: HashMap::new(),
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    pub fn contains_object(&self, id: ObjectId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Runs one query through the SEM protocol; `pos` is the client's
    /// current position (FAR victims are picked against it).
    pub fn query(
        &mut self,
        server: &dyn ServerHandle,
        client: ClientId,
        spec: &QuerySpec,
        pos: Point,
        server_time_s: f64,
    ) -> BaselineAnswer {
        match *spec {
            QuerySpec::Range { window } => {
                self.query_range(server, client, window, pos, server_time_s)
            }
            QuerySpec::Knn { center, k } => {
                self.query_knn(server, client, center, k, pos, server_time_s)
            }
            QuerySpec::Join { dist } => self.query_join(server, client, dist, server_time_s),
        }
    }

    // ------------------------------------------------------------------
    // Range: trim against cached regions, fetch the remainder pieces
    // ------------------------------------------------------------------

    fn query_range(
        &mut self,
        server: &dyn ServerHandle,
        client: ClientId,
        window: Rect,
        pos: Point,
        server_time_s: f64,
    ) -> BaselineAnswer {
        // Local hits from overlapping *range* regions.
        let mut answer_ids: HashSet<ObjectId> = HashSet::new();
        let mut answer: Vec<ObjectId> = Vec::new();
        let mut saved_bytes = 0u64;
        for r in &self.regions {
            if let Region::Range { rect, objects } = r {
                if !rect.intersects(&window) {
                    continue;
                }
                for o in objects {
                    if o.mbr.intersects(&window) && answer_ids.insert(o.id) {
                        answer.push(o.id);
                        saved_bytes += o.size as u64;
                    }
                }
            }
        }

        // Remainder = window minus the union of cached range rectangles.
        let mut pieces = vec![window];
        for r in &self.regions {
            if let Region::Range { rect, .. } = r {
                let mut next = Vec::with_capacity(pieces.len() + 3);
                for p in &pieces {
                    p.subtract(rect, &mut next);
                }
                pieces = next;
                if pieces.is_empty() {
                    break;
                }
            }
        }

        let locally_served = answer.clone();
        let mut cached_results = answer.clone();

        let mut ledger = Ledger {
            saved_bytes,
            server_time_s,
            ..Default::default()
        };

        if pieces.is_empty() {
            // Fully covered: answered without contacting the server.
            return BaselineAnswer {
                ledger,
                objects: answer.clone(),
                pairs: Vec::new(),
                cached_results,
                locally_served: answer,
            };
        }

        let coalesce = pieces.len() > MAX_FRAGMENTS;
        if coalesce {
            pieces = vec![window];
        }

        ledger.contacted_server = true;
        ledger.contacts = pieces.len() as u32;
        ledger.uplink_bytes = QUERY_DESC_BYTES + pieces.len() as u64 * REGION_DESC_BYTES;

        // Fetch each piece; collect the new regions to insert.
        let snap = server.core().pin();
        let store = snap.store();
        let mut new_regions: Vec<Region> = Vec::with_capacity(pieces.len());
        for piece in &pieces {
            let outcome = server
                .call(client, Request::Direct(QuerySpec::Range { window: *piece }))
                .into_direct();
            let mut objs = Vec::with_capacity(outcome.results.len());
            for &id in &outcome.results {
                let so = store.get(id);
                objs.push(CachedObj {
                    id,
                    mbr: so.mbr,
                    size: so.size_bytes,
                });
                if answer_ids.insert(id) {
                    answer.push(id);
                    ledger.transmitted.push(so.size_bytes);
                    ledger.transmitted_header_bytes += OBJECT_HEADER_BYTES;
                    // A result SEM retransmits despite holding the payload
                    // (e.g. cached under a kNN region): a false miss.
                    if self.resident.contains_key(&id) {
                        cached_results.push(id);
                    }
                } else {
                    // Already served locally (or by an earlier piece): the
                    // server cannot know and sends it anyway — wasted
                    // bandwidth, not result bytes.
                    ledger.extra_downlink_bytes += OBJECT_HEADER_BYTES + so.size_bytes as u64;
                }
            }
            new_regions.push(Region::Range {
                rect: *piece,
                objects: objs,
            });
        }

        if coalesce {
            // Replace every range region overlapping the window.
            self.retain_regions(|r| match r {
                Region::Range { rect, .. } => !rect.intersects(&window),
                Region::Knn { .. } => true,
            });
        }
        for r in new_regions {
            self.insert_region(r, pos);
        }

        BaselineAnswer {
            ledger,
            objects: answer,
            pairs: Vec::new(),
            cached_results,
            locally_served,
        }
    }

    // ------------------------------------------------------------------
    // kNN: validity-circle reuse (Zheng & Lee)
    // ------------------------------------------------------------------

    fn query_knn(
        &mut self,
        server: &dyn ServerHandle,
        client: ClientId,
        center: Point,
        k: u32,
        pos: Point,
        server_time_s: f64,
    ) -> BaselineAnswer {
        let k = k as usize;
        // Try every cached kNN region: the k nearest cached objects to the
        // new point are globally correct iff their k-th distance fits
        // inside the region's validity circle shifted by the displacement.
        for r in &self.regions {
            let Region::Knn {
                center: c,
                radius,
                objects,
            } = r
            else {
                continue;
            };
            if objects.len() < k {
                continue;
            }
            let shift = c.dist(&center);
            let mut by_dist: Vec<(f64, &CachedObj)> = objects
                .iter()
                .map(|o| (o.mbr.min_dist(&center), o))
                .collect();
            by_dist.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
            let dk = by_dist[k - 1].0;
            if dk + shift <= *radius {
                // Valid: answer fully from the cache.
                let answer: Vec<ObjectId> = by_dist[..k].iter().map(|(_, o)| o.id).collect();
                let saved_bytes = by_dist[..k].iter().map(|(_, o)| o.size as u64).sum();
                return BaselineAnswer {
                    ledger: Ledger {
                        saved_bytes,
                        ..Default::default()
                    },
                    objects: answer.clone(),
                    pairs: Vec::new(),
                    cached_results: answer.clone(),
                    locally_served: answer,
                };
            }
        }

        // Miss: the complete query goes to the server and every result is
        // retransmitted, cached or not (Example 1.2's penalty).
        let outcome = server
            .call(
                client,
                Request::Direct(QuerySpec::Knn {
                    center,
                    k: k as u32,
                }),
            )
            .into_direct();
        let mut ledger = Ledger {
            uplink_bytes: QUERY_DESC_BYTES,
            contacted_server: true,
            contacts: 1,
            server_time_s,
            ..Default::default()
        };
        let mut objs = Vec::with_capacity(outcome.results.len());
        let mut answer = Vec::with_capacity(outcome.results.len());
        let mut cached_results = Vec::new();
        let mut radius = 0.0f64;
        let snap = server.core().pin();
        let store = snap.store();
        for &id in &outcome.results {
            let so = store.get(id);
            ledger.transmitted.push(so.size_bytes);
            ledger.transmitted_header_bytes += OBJECT_HEADER_BYTES;
            answer.push(id);
            // Example 1.2's penalty: cached results are retransmitted in
            // full because kNN cannot be trimmed from other query types.
            if self.resident.contains_key(&id) {
                cached_results.push(id);
            }
            radius = radius.max(so.mbr.min_dist(&center));
            objs.push(CachedObj {
                id,
                mbr: so.mbr,
                size: so.size_bytes,
            });
        }
        if !objs.is_empty() {
            self.insert_region(
                Region::Knn {
                    center,
                    radius,
                    objects: objs,
                },
                pos,
            );
        }
        BaselineAnswer {
            ledger,
            objects: answer,
            pairs: Vec::new(),
            cached_results,
            locally_served: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Join: pass-through (§6.1)
    // ------------------------------------------------------------------

    fn query_join(
        &mut self,
        server: &dyn ServerHandle,
        client: ClientId,
        dist: f64,
        server_time_s: f64,
    ) -> BaselineAnswer {
        let outcome = server
            .call(client, Request::Direct(QuerySpec::Join { dist }))
            .into_direct();
        let mut ledger = Ledger {
            uplink_bytes: QUERY_DESC_BYTES,
            contacted_server: true,
            contacts: 1,
            server_time_s,
            ..Default::default()
        };
        let mut answer = Vec::with_capacity(outcome.results.len());
        let mut cached_results = Vec::new();
        let snap = server.core().pin();
        let store = snap.store();
        for &id in &outcome.results {
            let so = store.get(id);
            ledger.transmitted.push(so.size_bytes);
            ledger.transmitted_header_bytes += OBJECT_HEADER_BYTES;
            answer.push(id);
            if self.resident.contains_key(&id) {
                cached_results.push(id);
            }
        }
        ledger.extra_downlink_bytes += outcome.pairs.len() as u64 * PAIR_BYTES;
        BaselineAnswer {
            ledger,
            objects: answer,
            pairs: outcome.pairs,
            cached_results,
            locally_served: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Region bookkeeping + FAR replacement
    // ------------------------------------------------------------------

    fn insert_region(&mut self, region: Region, pos: Point) {
        let bytes = region.bytes();
        if bytes > self.capacity {
            return; // a region that can never fit is not cached
        }
        self.add_region(region);
        // FAR: evict the region farthest from the current position.
        while self.used > self.capacity {
            let victim = self
                .regions
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.center()
                        .dist(&pos)
                        .total_cmp(&b.center().dist(&pos))
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .expect("over capacity implies non-empty");
            self.drop_region(victim);
        }
    }

    fn add_region(&mut self, region: Region) {
        self.used += region.bytes();
        let objs = match &region {
            Region::Range { objects, .. } | Region::Knn { objects, .. } => objects.clone(),
        };
        for o in objs {
            *self.resident.entry(o.id).or_insert(0) += 1;
        }
        self.regions.push(region);
    }

    fn drop_region(&mut self, idx: usize) {
        let region = self.regions.swap_remove(idx);
        self.used -= region.bytes();
        let objs = match &region {
            Region::Range { objects, .. } | Region::Knn { objects, .. } => objects,
        };
        for o in objs {
            match self.resident.get_mut(&o.id) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.resident.remove(&o.id);
                }
            }
        }
    }

    fn retain_regions(&mut self, mut keep: impl FnMut(&Region) -> bool) {
        let mut i = 0;
        while i < self.regions.len() {
            if keep(&self.regions[i]) {
                i += 1;
            } else {
                self.drop_region(i);
            }
        }
    }

    /// Validation for tests: byte accounting and refcounts must agree with
    /// the region list.
    pub fn validate(&self) -> Result<(), String> {
        let sum: u64 = self.regions.iter().map(|r| r.bytes()).sum();
        if sum != self.used {
            return Err(format!("used {} != region sum {sum}", self.used));
        }
        if self.used > self.capacity {
            return Err("over capacity".into());
        }
        let mut counts: HashMap<ObjectId, u32> = HashMap::new();
        for r in &self.regions {
            let objs = match r {
                Region::Range { objects, .. } | Region::Knn { objects, .. } => objects,
            };
            for o in objs {
                *counts.entry(o.id).or_insert(0) += 1;
            }
        }
        if counts != self.resident {
            return Err("refcount drift".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests;
