//! SEM correctness: trimmed answers must equal direct answers, local
//! coverage must grow, kNN validity reuse must be sound, and the model must
//! exhibit exactly the cross-type weakness the paper attacks.

use super::*;
use pc_rtree::{naive, ObjectStore, RTreeConfig, SpatialObject};
use pc_server::{Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn server(n: usize, seed: u64) -> Server {
    let mut rng = SmallRng::seed_from_u64(seed);
    let objects: Vec<SpatialObject> = (0..n)
        .map(|i| SpatialObject {
            id: ObjectId(i as u32),
            mbr: Rect::from_point(Point::new(
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            )),
            size_bytes: rng.random_range(500..2000),
        })
        .collect();
    Server::new(
        ObjectStore::new(objects),
        RTreeConfig::small(),
        ServerConfig::default(),
    )
}

#[test]
fn range_answers_match_naive_under_trimming() {
    let server = server(300, 1);
    let mut sem = SemanticCache::new(1 << 22);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut pos = Point::new(0.5, 0.5);
    for round in 0..60 {
        pos = Point::new(
            (pos.x + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
            (pos.y + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
        );
        let w = Rect::centered_square(pos, rng.random_range(0.05..0.25));
        let a = sem.query(&server, 0, &QuerySpec::Range { window: w }, pos, 0.0);
        sem.validate().unwrap();
        let mut got = a.objects.clone();
        got.sort_unstable();
        assert_eq!(
            got,
            naive::range_naive(server.snapshot().store(), &w),
            "round {round}"
        );
    }
}

#[test]
fn fully_covered_repeat_is_local() {
    let server = server(200, 2);
    let mut sem = SemanticCache::new(1 << 22);
    let pos = Point::new(0.4, 0.6);
    let w = Rect::centered_square(pos, 0.2);
    let spec = QuerySpec::Range { window: w };
    let first = sem.query(&server, 0, &spec, pos, 0.0);
    assert!(first.ledger.contacted_server);
    let second = sem.query(&server, 0, &spec, pos, 0.0);
    assert!(!second.ledger.contacted_server, "repeat must be local");
    assert_eq!(second.ledger.transmitted_bytes(), 0);
    assert_eq!(first.objects.len(), second.objects.len());
    assert!(second.ledger.saved_bytes > 0 || second.objects.is_empty());
}

#[test]
fn overlapping_window_transmits_only_the_remainder() {
    let server = server(400, 3);
    let mut sem = SemanticCache::new(1 << 22);
    let pos = Point::new(0.5, 0.5);
    let w1 = Rect::from_coords(0.3, 0.3, 0.6, 0.6);
    let a1 = sem.query(&server, 0, &QuerySpec::Range { window: w1 }, pos, 0.0);
    // Slide the window right: the overlap is cached, only the strip is new.
    let w2 = Rect::from_coords(0.4, 0.3, 0.7, 0.6);
    let a2 = sem.query(&server, 0, &QuerySpec::Range { window: w2 }, pos, 0.0);
    assert!(a2.ledger.saved_bytes > 0, "overlap must be served locally");
    assert!(
        a2.ledger.transmitted_bytes() < a1.ledger.transmitted_bytes(),
        "the remainder strip is smaller than the full window"
    );
    let mut got = a2.objects.clone();
    got.sort_unstable();
    assert_eq!(got, naive::range_naive(server.snapshot().store(), &w2));
}

#[test]
fn knn_matches_naive_and_valid_repeats_are_local() {
    let server = server(300, 4);
    let mut sem = SemanticCache::new(1 << 22);
    let pos = Point::new(0.5, 0.5);
    let spec = QuerySpec::Knn { center: pos, k: 5 };
    let first = sem.query(&server, 0, &spec, pos, 0.0);
    assert!(first.ledger.contacted_server);
    let want = naive::knn_naive(server.snapshot().store(), &pos, 5);
    assert_eq!(first.objects.len(), 5);
    for (got, (_, wd)) in first.objects.iter().zip(&want) {
        let d = server.snapshot().store().get(*got).mbr.min_dist(&pos);
        assert!((d - wd).abs() < 1e-12);
    }
    // Same point, same k: trivially valid (shift = 0).
    let again = sem.query(&server, 0, &spec, pos, 0.0);
    assert!(!again.ledger.contacted_server, "validity circle must hold");
    // A k' < k at a nearby point may also be answerable.
    let near = Point::new(pos.x + 1e-4, pos.y);
    let a3 = sem.query(
        &server,
        0,
        &QuerySpec::Knn { center: near, k: 3 },
        near,
        0.0,
    );
    let want3 = naive::knn_naive(server.snapshot().store(), &near, 3);
    for (got, (_, wd)) in a3.objects.iter().zip(&want3) {
        let d = server.snapshot().store().get(*got).mbr.min_dist(&near);
        assert!((d - wd).abs() < 1e-12, "validity reuse returned wrong kNN");
    }
}

#[test]
fn knn_reuse_is_sound_under_random_displacements() {
    // Whenever SEM answers a kNN locally, the answer must equal the naive
    // ground truth — the validity check may be conservative, never wrong.
    let server = server(400, 5);
    let mut sem = SemanticCache::new(1 << 24);
    let mut rng = SmallRng::seed_from_u64(6);
    let mut local_hits = 0;
    for _ in 0..200 {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let k = rng.random_range(1..6u32);
        let a = sem.query(&server, 0, &QuerySpec::Knn { center: p, k }, p, 0.0);
        let want = naive::knn_naive(server.snapshot().store(), &p, k as usize);
        assert_eq!(a.objects.len(), want.len());
        for (got, (_, wd)) in a.objects.iter().zip(&want) {
            let d = server.snapshot().store().get(*got).mbr.min_dist(&p);
            assert!((d - wd).abs() < 1e-12);
        }
        if !a.ledger.contacted_server {
            local_hits += 1;
        }
    }
    assert!(local_hits > 0, "validity reuse never fired");
}

#[test]
fn range_cache_cannot_answer_knn() {
    // The cross-type weakness (Example 1.2): after a big range query, a kNN
    // at the same spot still pays the full round trip and retransmission.
    let server = server(300, 7);
    let mut sem = SemanticCache::new(1 << 24);
    let pos = Point::new(0.5, 0.5);
    sem.query(
        &server,
        0,
        &QuerySpec::Range {
            window: Rect::centered_square(pos, 0.4),
        },
        pos,
        0.0,
    );
    let a = sem.query(&server, 0, &QuerySpec::Knn { center: pos, k: 3 }, pos, 0.0);
    assert!(a.ledger.contacted_server);
    assert_eq!(a.ledger.saved_bytes, 0, "SEM must not share across types");
    assert_eq!(a.ledger.transmitted.len(), 3, "all k retransmitted");
}

#[test]
fn join_passes_through_and_is_never_cached() {
    let server = server(200, 8);
    let mut sem = SemanticCache::new(1 << 24);
    let spec = QuerySpec::Join { dist: 0.03 };
    let a1 = sem.query(&server, 0, &spec, Point::ORIGIN, 0.0);
    let a2 = sem.query(&server, 0, &spec, Point::ORIGIN, 0.0);
    assert_eq!(a1.pairs, a2.pairs);
    assert_eq!(
        a1.ledger.transmitted_bytes(),
        a2.ledger.transmitted_bytes(),
        "joins are retransmitted in full every time"
    );
    let mut want = naive::join_naive(server.snapshot().store(), 0.03);
    want.sort_unstable();
    let mut got = a1.pairs.clone();
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn far_replacement_keeps_nearby_regions() {
    let server = server(400, 9);
    // Tight cache: a handful of regions at most.
    let mut sem = SemanticCache::new(40_000);
    let here = Point::new(0.1, 0.1);
    // Query far away first, then repeatedly near `here`.
    let far = Point::new(0.9, 0.9);
    sem.query(
        &server,
        0,
        &QuerySpec::Range {
            window: Rect::centered_square(far, 0.15),
        },
        far,
        0.0,
    );
    for i in 0..6 {
        let c = Point::new(0.1 + i as f64 * 0.02, 0.1);
        sem.query(
            &server,
            0,
            &QuerySpec::Range {
                window: Rect::centered_square(c, 0.12),
            },
            here,
            0.0,
        );
        sem.validate().unwrap();
    }
    // The far region should have been the FAR victim: a repeat near `here`
    // is cheaper than a repeat near `far`.
    let near_repeat = sem.query(
        &server,
        0,
        &QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.1, 0.1), 0.1),
        },
        here,
        0.0,
    );
    let far_repeat = sem.query(
        &server,
        0,
        &QuerySpec::Range {
            window: Rect::centered_square(far, 0.1),
        },
        here,
        0.0,
    );
    assert!(
        near_repeat.ledger.transmitted_bytes() <= far_repeat.ledger.transmitted_bytes(),
        "FAR should have kept the nearby knowledge"
    );
}

#[test]
fn fragmentation_fallback_coalesces() {
    // Many scattered cached rectangles force > MAX_FRAGMENTS pieces; the
    // fallback submits the whole window and coalesces. Correctness must
    // survive either path.
    let server = server(500, 10);
    let mut sem = SemanticCache::new(1 << 24);
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..40 {
        let p = Point::new(rng.random_range(0.2..0.8), rng.random_range(0.2..0.8));
        sem.query(
            &server,
            0,
            &QuerySpec::Range {
                window: Rect::centered_square(p, 0.06),
            },
            p,
            0.0,
        );
    }
    let w = Rect::from_coords(0.15, 0.15, 0.85, 0.85);
    let a = sem.query(
        &server,
        0,
        &QuerySpec::Range { window: w },
        Point::new(0.5, 0.5),
        0.0,
    );
    sem.validate().unwrap();
    let mut got = a.objects.clone();
    got.sort_unstable();
    assert_eq!(got, naive::range_naive(server.snapshot().store(), &w));
}
