//! PAG: the page/object caching model (§2, §6.2). "Since no query
//! information is stored, page caching can only support equi-select queries
//! on the objects' keys" — so every spatial query goes to the server with
//! the full cached-id manifest, and the reward is the smallest downlink.

use crate::BaselineAnswer;
use pc_net::Ledger;
use pc_rtree::proto::{
    QuerySpec, Request, CONFIRM_BYTES, OBJECT_HEADER_BYTES, OBJECT_ID_BYTES, PAIR_BYTES,
};
use pc_rtree::ObjectId;
use pc_server::{ClientId, ServerHandle};
use std::collections::HashMap;

/// An LRU object cache addressed by id.
#[derive(Clone, Debug)]
pub struct PageCache {
    capacity: u64,
    used: u64,
    /// id → (payload bytes, last access tick)
    items: HashMap<ObjectId, (u32, u64)>,
    clock: u64,
}

impl PageCache {
    pub fn new(capacity: u64) -> Self {
        PageCache {
            capacity,
            used: 0,
            items: HashMap::new(),
            clock: 0,
        }
    }

    pub fn contains_object(&self, id: ObjectId) -> bool {
        self.items.contains_key(&id)
    }

    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Runs one query through the PAG protocol, shipped as a
    /// [`Request::Direct`] envelope over the handle's transport.
    ///
    /// Uplink: query descriptor + the ids of *all* cached objects.
    /// Downlink: confirmations for cached results, payloads for the rest.
    pub fn query(
        &mut self,
        server: &dyn ServerHandle,
        client: ClientId,
        spec: &QuerySpec,
        server_time_s: f64,
    ) -> BaselineAnswer {
        self.clock += 1;
        let req = Request::Direct(*spec);
        let uplink_bytes = req.wire_bytes() + self.items.len() as u64 * OBJECT_ID_BYTES;

        let outcome = server.call(client, req).into_direct();
        let objects = outcome.results;

        let mut ledger = Ledger {
            uplink_bytes,
            contacted_server: true,
            contacts: 1,
            server_time_s,
            ..Default::default()
        };
        let mut cached_results = Vec::new();
        let snap = server.core().pin();
        let store = snap.store();
        for &id in &objects {
            let size = store.get(id).size_bytes;
            if let Some(entry) = self.items.get_mut(&id) {
                entry.1 = self.clock;
                ledger.confirmed_bytes += size as u64;
                ledger.confirm_wire_bytes += CONFIRM_BYTES;
                cached_results.push(id);
            } else {
                ledger.transmitted.push(size);
                ledger.transmitted_header_bytes += OBJECT_HEADER_BYTES;
                self.insert(id, size);
            }
        }
        ledger.extra_downlink_bytes += outcome.pairs.len() as u64 * PAIR_BYTES;

        BaselineAnswer {
            ledger,
            objects,
            pairs: outcome.pairs,
            cached_results,
            // PAG stores no query semantics: nothing is ever served before
            // the server confirms (hit_c = 0, fmr = 1).
            locally_served: Vec::new(),
        }
    }

    fn insert(&mut self, id: ObjectId, size: u32) {
        if size as u64 > self.capacity {
            return; // would never fit
        }
        self.items.insert(id, (size, self.clock));
        self.used += size as u64;
        while self.used > self.capacity {
            let victim = self
                .items
                .iter()
                .min_by_key(|(k, (_, t))| (*t, k.0))
                .map(|(k, _)| *k)
                .expect("over capacity implies non-empty");
            let (sz, _) = self.items.remove(&victim).unwrap();
            self.used -= sz as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::{naive, ObjectStore, RTreeConfig, SpatialObject};
    use pc_server::{Server, ServerConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn server(n: usize, seed: u64) -> Server {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: rng.random_range(500..2000),
            })
            .collect();
        Server::new(
            ObjectStore::new(objects),
            RTreeConfig::small(),
            ServerConfig::default(),
        )
    }

    #[test]
    fn results_match_direct_and_cache_fills() {
        let server = server(200, 1);
        let mut pag = PageCache::new(1 << 20);
        let w = Rect::centered_square(Point::new(0.5, 0.5), 0.4);
        let spec = QuerySpec::Range { window: w };
        let a = pag.query(&server, 0, &spec, 0.0);
        let mut got = a.objects.clone();
        got.sort_unstable();
        assert_eq!(got, naive::range_naive(server.snapshot().store(), &w));
        assert_eq!(a.ledger.saved_bytes, 0, "PAG never answers locally");
        assert!(a.ledger.transmitted_bytes() > 0);
        assert!(!pag.is_empty());
    }

    #[test]
    fn repeat_query_confirms_instead_of_retransmitting() {
        let server = server(200, 2);
        let mut pag = PageCache::new(1 << 22);
        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.4, 0.4), 0.3),
        };
        let first = pag.query(&server, 0, &spec, 0.0);
        let second = pag.query(&server, 0, &spec, 0.0);
        assert_eq!(second.ledger.transmitted_bytes(), 0, "all cached now");
        assert_eq!(
            second.ledger.confirmed_bytes,
            first.ledger.transmitted_bytes()
        );
        // But the response still needs the round trip: hit_c stays zero.
        assert!(second.ledger.contacted_server);
    }

    #[test]
    fn uplink_grows_with_cache_population() {
        let server = server(300, 3);
        let mut pag = PageCache::new(1 << 22);
        let q1 = pag.query(
            &server,
            0,
            &QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.3, 0.3), 0.3),
            },
            0.0,
        );
        let q2 = pag.query(
            &server,
            0,
            &QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.7, 0.7), 0.3),
            },
            0.0,
        );
        assert!(
            q2.ledger.uplink_bytes > q1.ledger.uplink_bytes,
            "manifest grows with |C| (the Fig. 8 effect)"
        );
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let server = server(300, 4);
        let mut pag = PageCache::new(20_000);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..30 {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            pag.query(&server, 0, &QuerySpec::Knn { center: p, k: 4 }, 0.0);
            assert!(pag.used_bytes() <= pag.capacity());
        }
    }

    #[test]
    fn join_objects_are_cached_too() {
        let server = server(150, 5);
        let mut pag = PageCache::new(1 << 22);
        let spec = QuerySpec::Join { dist: 0.05 };
        let first = pag.query(&server, 0, &spec, 0.0);
        if first.objects.is_empty() {
            return; // no pairs at this threshold for this seed
        }
        let second = pag.query(&server, 0, &spec, 0.0);
        assert_eq!(second.ledger.transmitted_bytes(), 0);
        assert_eq!(first.pairs, second.pairs);
    }
}
