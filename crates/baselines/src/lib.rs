//! The two baseline caching models of the paper's evaluation (§6):
//!
//! * **PAG** ([`PageCache`]) — classic page/object caching: the client
//!   caches result objects by id under LRU, ships its whole id manifest on
//!   every query ("PAG always has the highest uplink bytes since it needs
//!   to submit the identifiers of all cached objects"), and the server
//!   skips payloads for cached results. No query semantics ⇒ nothing can be
//!   answered before the server responds (`hit_c = 0`, fmr = 1).
//!
//! * **SEM** ([`SemanticCache`]) — semantic caching per Dar et al. \[7\] /
//!   Ren & Dunham \[15\] for range queries (query trimming against cached
//!   regions, FAR replacement) and Zheng & Lee \[20\] for kNN queries
//!   (validity-circle reuse). Join queries pass through untouched ("no
//!   semantic caching techniques are available for join queries").
//!
//! Both models answer through the same [`pc_net::Ledger`] byte accounting
//! as the proactive client, so every §6 metric is comparable.

mod page;
mod semantic;

pub use page::PageCache;
pub use semantic::{SemanticCache, MAX_FRAGMENTS};

use pc_net::Ledger;
use pc_rtree::ObjectId;

/// A baseline's answer to one query: the byte ledger plus the user-visible
/// results.
#[derive(Clone, Debug, Default)]
pub struct BaselineAnswer {
    pub ledger: Ledger,
    pub objects: Vec<ObjectId>,
    pub pairs: Vec<(ObjectId, ObjectId)>,
    /// Result objects whose payload was cached when the query was issued —
    /// the `R ∩ C` of §4.1, from which the simulator derives the byte hit
    /// rate and the false-miss rate.
    pub cached_results: Vec<ObjectId>,
    /// Result objects answered locally before any server contact (`Rs`).
    pub locally_served: Vec<ObjectId>,
}
