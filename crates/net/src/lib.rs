//! The wireless channel model (§6.1: "the client has a 384 Kbps wireless
//! channel, which is the standard for a 3G network") and the byte ledger
//! from which every timing metric is derived.
//!
//! The paper defines query response time as *the average response time of
//! each byte of the results* (§4.1) — "a fairer metric … since in practice
//! the user often wants to access the results as early as possible". The
//! [`Ledger`] generalizes Equation (1) to all three caching models:
//!
//! * *saved* bytes answer locally at `t ≈ 0`;
//! * *confirmed* bytes (cached payloads the server validates) answer after
//!   the uplink, the server time and the tiny confirmation records;
//! * *transmitted* bytes stream over the downlink in reply order, each
//!   object answering when it completes;
//! * everything else on the downlink (index shipments, pair lists) costs
//!   bandwidth but answers no result bytes.

/// The wireless link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Channel {
    /// Link rate in bits per second.
    pub bandwidth_bps: u64,
    /// Fixed per-contact overhead in seconds (connection setup; the paper
    /// ignores it — "the fixed transmission overhead is ignored as it does
    /// not affect the analysis" — so the default is zero).
    pub setup_s: f64,
}

impl Channel {
    /// Table 6.1 default: 384 Kbps, no setup cost.
    pub fn paper() -> Self {
        Channel {
            bandwidth_bps: 384_000,
            setup_s: 0.0,
        }
    }

    /// Seconds to move `bytes` over the link.
    #[inline]
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bps as f64
    }
}

impl Default for Channel {
    fn default() -> Self {
        Channel::paper()
    }
}

/// Everything one query moved (or avoided moving) over the channel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    /// Bytes submitted to the server (query descriptor, remainder heap,
    /// id manifests, …). Zero when the query completed locally.
    pub uplink_bytes: u64,
    /// Result payload bytes answered from the cache before any contact.
    pub saved_bytes: u64,
    /// Result payload bytes the client holds and the server confirms
    /// without retransmission.
    pub confirmed_bytes: u64,
    /// Wire cost of those confirmations (ids on the downlink).
    pub confirm_wire_bytes: u64,
    /// Transmitted result objects' payload sizes, in stream order.
    pub transmitted: Vec<u32>,
    /// Per-object header bytes accompanying the transmitted payloads.
    pub transmitted_header_bytes: u64,
    /// Remaining downlink bytes (supporting index, pair lists, …).
    pub extra_downlink_bytes: u64,
    /// Simulated server processing time.
    pub server_time_s: f64,
    /// Whether the server was contacted at all.
    pub contacted_server: bool,
    /// Number of separate server contacts this query made (retry rounds of
    /// the §7 versioned protocol, per-fragment fetches of the SEM
    /// baseline). Each contact pays [`Channel::setup_s`] once. Sites that
    /// set [`Ledger::contacted_server`] without counting are charged one
    /// contact.
    pub contacts: u32,
}

/// Timing summary of one query under a given channel.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResponseStats {
    /// The paper's `resp(Q)`: byte-weighted mean response time of the
    /// result bytes; zero when everything was saved.
    pub avg_response_s: f64,
    /// When the last result byte arrived.
    pub completion_s: f64,
    /// Total result payload bytes (`|R|`).
    pub result_bytes: u64,
}

impl Ledger {
    /// Total downlink bytes.
    pub fn downlink_bytes(&self) -> u64 {
        self.confirm_wire_bytes
            + self.transmitted.iter().map(|&b| b as u64).sum::<u64>()
            + self.transmitted_header_bytes
            + self.extra_downlink_bytes
    }

    /// Transmitted payload bytes (`|Rr|` in Equation (1)).
    pub fn transmitted_bytes(&self) -> u64 {
        self.transmitted.iter().map(|&b| b as u64).sum()
    }

    /// Total result payload bytes (`|R|`).
    pub fn result_bytes(&self) -> u64 {
        self.saved_bytes + self.confirmed_bytes + self.transmitted_bytes()
    }

    /// Replays the query's timeline over `channel`.
    pub fn response(&self, channel: &Channel) -> ResponseStats {
        let total = self.result_bytes();
        if total == 0 {
            return ResponseStats::default();
        }
        // Σ bytes · response time.
        let mut weighted = 0.0;
        // Saved bytes answer immediately (wireless dominates CPU, §4.1).
        let mut t = 0.0;
        if self.contacted_server {
            // Connection setup is paid once per contact, not per query: a
            // stale-retry loop or a fragmented fetch redials the link.
            t += channel.setup_s * self.contacts.max(1) as f64;
            t += channel.transfer_s(self.uplink_bytes);
            t += self.server_time_s;
            // Confirmations arrive first — they are a handful of ids.
            t += channel.transfer_s(self.confirm_wire_bytes);
            weighted += self.confirmed_bytes as f64 * t;
            // Objects stream next; each answers when it completes. Headers
            // are charged proportionally as part of each object's slot.
            let n = self.transmitted.len() as u64;
            let per_obj_header = self.transmitted_header_bytes.checked_div(n).unwrap_or(0);
            for &sz in &self.transmitted {
                t += channel.transfer_s(sz as u64 + per_obj_header);
                weighted += sz as f64 * t;
            }
            // Index shipments and pair lists ride behind the results: they
            // cost bandwidth for *subsequent* queries, not this one.
        }
        ResponseStats {
            avg_response_s: weighted / total as f64,
            completion_s: t,
            result_bytes: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_rate() {
        let ch = Channel::paper();
        assert_eq!(ch.transfer_s(48_000), 1.0, "384 kbit = 48 kB per second");
    }

    #[test]
    fn all_local_query_has_zero_response() {
        let ledger = Ledger {
            saved_bytes: 5000,
            ..Default::default()
        };
        let r = ledger.response(&Channel::paper());
        assert_eq!(r.avg_response_s, 0.0);
        assert_eq!(r.completion_s, 0.0);
        assert_eq!(r.result_bytes, 5000);
    }

    #[test]
    fn empty_result_is_all_zero() {
        let ledger = Ledger::default();
        assert_eq!(ledger.response(&Channel::paper()), ResponseStats::default());
    }

    #[test]
    fn setup_cost_is_charged_per_contact() {
        let ch = Channel {
            bandwidth_bps: 8_000, // 1000 bytes/s
            setup_s: 0.5,
        };
        let one = Ledger {
            uplink_bytes: 1000,
            transmitted: vec![1000],
            contacted_server: true,
            contacts: 1,
            ..Default::default()
        };
        let two = Ledger {
            contacts: 2,
            ..one.clone()
        };
        let a = one.response(&ch).completion_s;
        let b = two.response(&ch).completion_s;
        assert!((a - 2.5).abs() < 1e-9, "one setup: {a}");
        assert!((b - (a + 0.5)).abs() < 1e-9, "second contact redials: {b}");
        // Legacy sites that only set the flag still pay one setup.
        let unset = Ledger {
            contacts: 0,
            ..one.clone()
        };
        assert_eq!(unset.response(&ch).completion_s, a);
        // A zero-setup channel is unchanged by contact counting.
        let free = Channel {
            bandwidth_bps: 8_000,
            setup_s: 0.0,
        };
        assert_eq!(
            one.response(&free).completion_s,
            two.response(&free).completion_s
        );
    }

    #[test]
    fn streaming_orders_response_times() {
        // Two objects: the first must answer earlier than the second.
        let ch = Channel {
            bandwidth_bps: 8_000, // 1000 bytes/s for easy math
            setup_s: 0.0,
        };
        let ledger = Ledger {
            uplink_bytes: 100,
            transmitted: vec![1000, 1000],
            contacted_server: true,
            ..Default::default()
        };
        let r = ledger.response(&ch);
        // Uplink: 0.1 s. Object 1 completes at 1.1 s, object 2 at 2.1 s.
        // Byte-weighted average = (1000·1.1 + 1000·2.1) / 2000 = 1.6 s.
        assert!(
            (r.avg_response_s - 1.6).abs() < 1e-9,
            "{}",
            r.avg_response_s
        );
        assert!((r.completion_s - 2.1).abs() < 1e-9);
    }

    #[test]
    fn confirmed_bytes_answer_after_uplink_only() {
        let ch = Channel {
            bandwidth_bps: 8_000,
            setup_s: 0.0,
        };
        let ledger = Ledger {
            uplink_bytes: 500,
            confirmed_bytes: 4000,
            confirm_wire_bytes: 8,
            contacted_server: true,
            ..Default::default()
        };
        let r = ledger.response(&ch);
        let expect = 0.5 + 0.008;
        assert!((r.avg_response_s - expect).abs() < 1e-9);
    }

    #[test]
    fn saved_bytes_drag_the_average_down() {
        let ch = Channel::paper();
        let without_saved = Ledger {
            uplink_bytes: 100,
            transmitted: vec![10_000],
            contacted_server: true,
            ..Default::default()
        };
        let with_saved = Ledger {
            saved_bytes: 10_000,
            ..without_saved.clone()
        };
        let a = without_saved.response(&ch).avg_response_s;
        let b = with_saved.response(&ch).avg_response_s;
        assert!(b < a, "saved bytes must reduce the average ({b} !< {a})");
        assert!((b - a / 2.0).abs() < 1e-9, "half the bytes are free");
    }

    #[test]
    fn index_bytes_do_not_delay_results() {
        let ch = Channel::paper();
        let lean = Ledger {
            uplink_bytes: 100,
            transmitted: vec![5000],
            contacted_server: true,
            ..Default::default()
        };
        let heavy = Ledger {
            extra_downlink_bytes: 100_000,
            ..lean.clone()
        };
        assert_eq!(
            lean.response(&ch).avg_response_s,
            heavy.response(&ch).avg_response_s
        );
        assert!(heavy.downlink_bytes() > lean.downlink_bytes());
    }

    #[test]
    fn downlink_accounting_sums_components() {
        let ledger = Ledger {
            confirm_wire_bytes: 16,
            transmitted: vec![100, 200],
            transmitted_header_bytes: 80,
            extra_downlink_bytes: 500,
            ..Default::default()
        };
        assert_eq!(ledger.downlink_bytes(), 16 + 300 + 80 + 500);
        assert_eq!(ledger.transmitted_bytes(), 300);
    }
}
