//! End-to-end client⇄server pipeline tests: the proactive pipeline must
//! produce exactly the direct answer under warm caches, evictions and all
//! three query types — and must demonstrate the paper's headline claims
//! (local completion on repeats, cross-query-type reuse).

use super::*;
use pc_cache::Catalog;
use pc_geom::{Point, Rect};
use pc_rtree::naive;
use pc_rtree::proto::QuerySpec;
use pc_rtree::{ObjectId, ObjectStore, RTreeConfig, SpatialObject};
use pc_server::{FormPolicy, Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn make_server(n: usize, seed: u64, form: FormPolicy) -> Server {
    let mut rng = SmallRng::seed_from_u64(seed);
    let objects: Vec<SpatialObject> = (0..n)
        .map(|i| SpatialObject {
            id: ObjectId(i as u32),
            mbr: Rect::from_point(Point::new(
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            )),
            size_bytes: rng.random_range(200..3000),
        })
        .collect();
    Server::new(
        ObjectStore::new(objects),
        RTreeConfig::small(),
        ServerConfig {
            form,
            ..Default::default()
        },
    )
}

fn make_client(server: &Server, capacity: u64) -> Client {
    Client::new(
        capacity,
        ReplacementPolicy::Grd3,
        Catalog::from_tree(server.snapshot().tree()),
    )
}

/// Runs one query through the full pipeline, checks it against the direct
/// answer, and returns (saved objects, total results).
fn pipeline_query(
    client: &mut Client,
    server: &Server,
    spec: &QuerySpec,
    pos: Point,
) -> (usize, usize) {
    client.begin_query();
    let local = client.run_local(spec);
    let reply = local
        .remainder
        .as_ref()
        .map(|rq| server.process_remainder(0, rq));
    if let Some(r) = &reply {
        client.absorb(r, pos);
    }
    let answer = client.assemble(&local, reply.as_ref());
    client.cache().validate().expect("cache invariant broken");

    // Ground truth comparison.
    let direct = server.direct(spec);
    match spec {
        QuerySpec::Join { .. } => {
            let mut got = answer.pairs.clone();
            got.sort_unstable();
            let mut want = direct.result_pairs.clone();
            want.sort_unstable();
            assert_eq!(got, want, "join pipeline diverged");
        }
        QuerySpec::Knn { center, k } => {
            assert_eq!(answer.objects.len(), direct.results.len().min(*k as usize));
            // Compare distance multisets (ties may swap ids).
            let d = |id: ObjectId| server.snapshot().store().get(id).mbr.min_dist(center);
            let mut got: Vec<f64> = answer.objects.iter().map(|&o| d(o)).collect();
            got.sort_by(f64::total_cmp);
            let mut want: Vec<f64> = direct.results.iter().map(|&(o, _)| d(o)).collect();
            want.sort_by(f64::total_cmp);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "knn pipeline diverged");
            }
        }
        QuerySpec::Range { .. } => {
            let mut got = answer.objects.clone();
            got.sort_unstable();
            let mut want: Vec<ObjectId> = direct.results.iter().map(|(o, _)| *o).collect();
            want.sort_unstable();
            assert_eq!(got, want, "range pipeline diverged");
        }
    }
    (local.saved.len(), answer.objects.len())
}

#[test]
fn random_walk_all_query_types_match_direct() {
    for form in [FormPolicy::Full, FormPolicy::Compact, FormPolicy::Adaptive] {
        let server = make_server(400, 77, form);
        // Small cache: forces constant eviction churn.
        let mut client = make_client(&server, 60_000);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut pos = Point::new(0.5, 0.5);
        for round in 0..120 {
            // Random walk with locality.
            pos = Point::new(
                (pos.x + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
                (pos.y + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
            );
            let spec = match round % 3 {
                0 => QuerySpec::Range {
                    window: Rect::centered_square(pos, rng.random_range(0.02..0.15)),
                },
                1 => QuerySpec::Knn {
                    center: pos,
                    k: rng.random_range(1..6),
                },
                _ => QuerySpec::Join {
                    dist: rng.random_range(0.0..0.02),
                },
            };
            pipeline_query(&mut client, &server, &spec, pos);
        }
    }
}

#[test]
fn repeated_query_completes_locally() {
    let server = make_server(300, 5, FormPolicy::Adaptive);
    let mut client = make_client(&server, 1 << 22);
    let spec = QuerySpec::Range {
        window: Rect::centered_square(Point::new(0.4, 0.4), 0.2),
    };
    let pos = Point::new(0.4, 0.4);
    client.begin_query();
    let first = client.run_local(&spec);
    assert!(!first.complete(), "cold cache must miss");
    let reply = server.process_remainder(0, first.remainder.as_ref().unwrap());
    client.absorb(&reply, pos);

    client.begin_query();
    let second = client.run_local(&spec);
    assert!(
        second.complete(),
        "identical repeat with a big cache must answer locally (Example 1.1)"
    );
    let mut got = second.saved.clone();
    got.sort_unstable();
    assert_eq!(
        got,
        naive::range_naive(
            server.snapshot().store(),
            &match spec {
                QuerySpec::Range { window } => window,
                _ => unreachable!(),
            }
        )
    );
}

#[test]
fn range_then_knn_reuses_cached_objects_across_types() {
    // The paper's Example 1.2/1.3: semantic caching cannot serve a kNN from
    // a cached range result; proactive caching can, because the cached
    // index supports the objects for *any* query type.
    let server = make_server(400, 6, FormPolicy::Full);
    let mut client = make_client(&server, 1 << 22);
    let center = Point::new(0.5, 0.5);
    let pos = center;

    // A generous range query warms the cache around the client.
    let range = QuerySpec::Range {
        window: Rect::centered_square(center, 0.4),
    };
    pipeline_query(&mut client, &server, &range, pos);

    // Now a kNN at the same spot: some neighbors must be saved objects.
    client.begin_query();
    let knn = QuerySpec::Knn { center, k: 3 };
    let local = client.run_local(&knn);
    assert!(
        !local.saved.is_empty(),
        "proactive caching must reuse range results for kNN"
    );
}

#[test]
fn join_after_warmup_reuses_index() {
    let server = make_server(200, 7, FormPolicy::Full);
    let mut client = make_client(&server, 1 << 24);
    let pos = Point::new(0.5, 0.5);
    let join = QuerySpec::Join { dist: 0.02 };
    // First join: cold; everything from the server.
    let (saved0, total0) = pipeline_query(&mut client, &server, &join, pos);
    assert_eq!(saved0, 0);
    // Second identical join: the whole index + objects are cached.
    let (saved1, total1) = pipeline_query(&mut client, &server, &join, pos);
    assert_eq!(total0, total1);
    assert_eq!(saved1, total1, "warm join must be fully local");
}

#[test]
fn uplink_stays_small_relative_to_downlink() {
    // §6.1 footnote: |Qr| is generally 1–2 orders of magnitude smaller
    // than |Rr|.
    let server = make_server(500, 8, FormPolicy::Adaptive);
    let mut client = make_client(&server, 1 << 22);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut up_total = 0u64;
    let mut down_total = 0u64;
    for _ in 0..30 {
        let pos = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let spec = QuerySpec::Range {
            window: Rect::centered_square(pos, 0.15),
        };
        client.begin_query();
        let local = client.run_local(&spec);
        if let Some(rq) = &local.remainder {
            up_total += rq.uplink_bytes();
            let reply = server.process_remainder(0, rq);
            down_total += reply.downlink_bytes();
            client.absorb(&reply, pos);
        }
    }
    assert!(up_total > 0 && down_total > 0);
    assert!(
        up_total * 5 < down_total,
        "uplink {up_total} should be far below downlink {down_total}"
    );
}

#[test]
fn eviction_churn_never_corrupts_answers() {
    // Tiny cache: almost every reply evicts most of the previous state.
    let server = make_server(300, 9, FormPolicy::Adaptive);
    let mut client = make_client(&server, 15_000);
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..60 {
        let pos = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let spec = if rng.random_bool(0.5) {
            QuerySpec::Range {
                window: Rect::centered_square(pos, 0.1),
            }
        } else {
            QuerySpec::Knn {
                center: pos,
                k: rng.random_range(1..5),
            }
        };
        pipeline_query(&mut client, &server, &spec, pos);
        assert!(client.cache().used_bytes() <= client.cache().capacity());
    }
}
