//! The mobile client of Fig. 3: runs stage ① (local processing over the
//! proactive cache via the generic engine), constructs remainder queries,
//! and absorbs server replies into the cache (stage ③), maintaining the
//! §5.2 hit statistics along the way.

use pc_cache::{CacheView, Catalog, InsertOutcome, ItemKey, ProactiveCache, ReplacementPolicy};
use pc_geom::Point;
use pc_rtree::engine::{execute_with, AccessLog, EngineScratch};
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::ObjectId;

/// Result of stage ① on the client.
#[derive(Clone, Debug)]
pub struct LocalOutcome {
    /// The saved objects `Rs` — results confirmed purely from the cache.
    pub saved: Vec<ObjectId>,
    /// Join pairs confirmed locally.
    pub saved_pairs: Vec<(ObjectId, ObjectId)>,
    /// The remainder query, if the cache could not finish.
    pub remainder: Option<RemainderQuery>,
    /// Client-side cell expansions (CPU accounting, Fig. 9).
    pub expansions: u64,
}

impl LocalOutcome {
    /// Whether the query completed without contacting the server.
    pub fn complete(&self) -> bool {
        self.remainder.is_none()
    }
}

/// The assembled answer `R = Rs ∪ Rr` the user receives.
#[derive(Clone, Debug, Default)]
pub struct QueryAnswer {
    /// All result objects: saved first (zero response time), then
    /// confirmed / transmitted ones in server-reply order.
    pub objects: Vec<ObjectId>,
    /// All join result pairs.
    pub pairs: Vec<(ObjectId, ObjectId)>,
}

/// The client-side query processor plus its proactive cache.
#[derive(Clone, Debug)]
pub struct Client {
    cache: ProactiveCache,
    catalog: Catalog,
    /// Query sequence id — the paper's `T` (§5.2).
    seq: u64,
    /// Reused engine buffers: one allocation set per client, not per query.
    scratch: EngineScratch,
    log: AccessLog,
}

impl Client {
    pub fn new(capacity: u64, policy: ReplacementPolicy, catalog: Catalog) -> Self {
        Client {
            cache: ProactiveCache::new(capacity, policy),
            catalog,
            seq: 0,
            scratch: EngineScratch::default(),
            log: AccessLog::default(),
        }
    }

    pub fn cache(&self) -> &ProactiveCache {
        &self.cache
    }

    pub fn cache_mut(&mut self) -> &mut ProactiveCache {
        &mut self.cache
    }

    pub fn catalog(&self) -> Catalog {
        self.catalog
    }

    /// Current query sequence id.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Starts a new query: bumps the sequence id used for hit statistics.
    pub fn begin_query(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Full refresh (§7 extension): drops the entire cache and adopts a
    /// freshly synced catalog — the client's response to a
    /// `VersionedReply::FullRefresh` refusal, after which stage ① restarts
    /// cold. The query sequence id survives (hit statistics keep their
    /// clock). Returns `(items, bytes)` dropped.
    pub fn full_refresh(&mut self, catalog: Catalog) -> (usize, u64) {
        self.catalog = catalog;
        self.cache.clear()
    }

    /// Stage ①: evaluates `spec` over the cache. All items the traversal
    /// used are marked as hit by this query.
    pub fn run_local(&mut self, spec: &QuerySpec) -> LocalOutcome {
        self.log.clear();
        let outcome = {
            let view = CacheView::new(&self.cache, self.catalog);
            execute_with(&view, spec, &mut self.log, &mut self.scratch)
        };
        // Hit accounting: every node whose cells the traversal consulted,
        // plus every object confirmed as a saved result.
        let now = self.seq;
        for node in self.log.nodes.keys() {
            self.cache.touch(ItemKey::Node(*node), now);
        }
        for id in &self.log.confirmed {
            self.cache.touch(ItemKey::Object(*id), now);
        }
        LocalOutcome {
            saved: outcome.results.iter().map(|(id, _)| *id).collect(),
            saved_pairs: outcome.result_pairs,
            remainder: outcome.remainder,
            expansions: outcome.expansions,
        }
    }

    /// Stage ③: inserts `Rr` and `Ir` into the cache, evicting per policy.
    /// `pos` is the client's current position (used by FAR).
    pub fn absorb(&mut self, reply: &ServerReply, pos: Point) -> InsertOutcome {
        self.cache.absorb(reply, self.seq, pos)
    }

    /// Assembles the user-visible answer from the local outcome and the
    /// (optional) server reply.
    pub fn assemble(&self, local: &LocalOutcome, reply: Option<&ServerReply>) -> QueryAnswer {
        let mut objects = local.saved.clone();
        let mut pairs = local.saved_pairs.clone();
        if let Some(r) = reply {
            objects.extend(r.confirmed.iter().copied());
            objects.extend(r.objects.iter().map(|o| o.id));
            pairs.extend(r.pairs.iter().copied());
        }
        // Join pairs can mention an object on both sides across stages;
        // the object list stays deduplicated in first-seen order.
        let mut seen = std::collections::HashSet::with_capacity(objects.len());
        objects.retain(|o| seen.insert(*o));
        pairs.sort_unstable();
        pairs.dedup();
        QueryAnswer { objects, pairs }
    }
}

#[cfg(test)]
mod tests;
