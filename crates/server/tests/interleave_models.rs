//! Interleaving model checks of the server's two core concurrency
//! protocols, run under the vendored `interleave` explorer (a miniature
//! loom): every schedule within the preemption bound is executed, with
//! vector-clock race detection on the protected state.
//!
//! Two protocols are modeled, faithfully mirroring the production control
//! flow (not the production types — the models substitute `RaceCell`
//! payloads so the detector can see unsynchronized access):
//!
//! 1. **`SnapshotCell` publish/pin/drop** (`src/epoch.rs`): an
//!    `RwLock<Arc<Snap>>` where writers build the next snapshot off to
//!    the side and swap under the write lock, and readers pin (clone the
//!    `Arc` under the read lock) and then use the pin lock-free.
//! 2. **`BatchedService` enqueue-vs-flush** (`src/service.rs`): the
//!    flat-combining shard — fast path, `flushing` flag, slot handoff,
//!    and the condvar wake protocol.
//!
//! Each sound model is paired with a seeded mutant the checker must
//! *catch* — a model checker that cannot flag a planted bug proves
//! nothing when it passes.

use interleave::cell::RaceCell;
use interleave::sync::{Condvar, Mutex, RwLock};
use interleave::{thread, Builder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn explorer() -> Builder {
    Builder {
        // Almost all schedule-dependent bugs need at most two forced
        // preemptions (the CHESS observation); the bound keeps 4–5-thread
        // models exhaustible in seconds.
        preemption_bound: Some(2),
        max_schedules: 500_000,
        max_threads: 8,
        max_steps: 200_000,
    }
}

// ---------------------------------------------------------------------
// Model 1: SnapshotCell publish/pin/drop
// ---------------------------------------------------------------------

/// Model snapshot: a two-field world that must never be observed torn,
/// plus a drop counter so the test can prove retired snapshots free
/// exactly once (and never while a pin still holds them — a double free
/// or use-after-free would corrupt the count or crash the run).
struct Snap {
    a: RaceCell<u64>,
    b: RaceCell<u64>,
    drops: Arc<AtomicUsize>,
}

impl Snap {
    fn new(drops: &Arc<AtomicUsize>) -> Self {
        Snap {
            a: RaceCell::new(0),
            b: RaceCell::new(0),
            drops: drops.clone(),
        }
    }
}

impl Drop for Snap {
    fn drop(&mut self) {
        // ordering: SeqCst — model-test drop counter read only after every
        // thread joins; strongest-for-free beats justifying anything weaker.
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// The epoch.rs protocol in model form: pin is a clone under the read
/// lock; publish builds off to the side, swaps under the write lock and
/// drops the old snapshot outside it.
struct ModelCell {
    current: RwLock<Arc<Snap>>,
}

impl ModelCell {
    fn pin(&self) -> Arc<Snap> {
        self.current.read().clone()
    }

    fn publish(&self, next: Arc<Snap>) {
        let old = {
            let mut g = self.current.write();
            std::mem::replace(&mut *g, next)
        };
        drop(old);
    }
}

#[test]
fn snapshot_cell_publish_pin_drop_is_sound() {
    let report = explorer()
        .check(|| {
            let drops = Arc::new(AtomicUsize::new(0));
            let cell = Arc::new(ModelCell {
                current: RwLock::new(Arc::new(Snap::new(&drops))),
            });

            // Two writers, each publishing one snapshot built off to the
            // side (writers that *derive* from the current snapshot must
            // serialize themselves — see ServerCore's writer mutex — so
            // independent publishes are the cell-level contract).
            let writers: Vec<_> = (1..=2u64)
                .map(|v| {
                    let cell = cell.clone();
                    let drops = drops.clone();
                    thread::spawn(move || {
                        let next = Arc::new(Snap::new(&drops));
                        next.a.set(v);
                        next.b.set(v);
                        cell.publish(next);
                    })
                })
                .collect();

            // Two readers, each pinning once and using the pin lock-free.
            // The halves must always agree, and the race detector must
            // find a happens-before edge from whoever built the snapshot.
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let cell = cell.clone();
                    thread::spawn(move || {
                        let pin = cell.pin();
                        let (x, y) = (pin.a.get(), pin.b.get());
                        assert_eq!(x, y, "pinned snapshot observed torn");
                    })
                })
                .collect();

            for h in writers.into_iter().chain(readers) {
                h.join().unwrap();
            }

            // Drop-exactly-once: 3 snapshots existed (initial + 2
            // published); with all pins gone and the cell itself dropped,
            // every one of them must have freed exactly once.
            drop(cell);
            // ordering: SeqCst pairs with the fetch_add in Snap::drop; all
            // droppers were joined above, so any ordering would do.
            assert_eq!(
                drops.load(Ordering::SeqCst),
                3,
                "retired snapshots must drop exactly once"
            );
        })
        .expect("SnapshotCell protocol must survive every schedule");
    assert!(
        report.complete,
        "exploration truncated at {} schedules — raise the cap",
        report.schedules
    );
    assert!(
        report.schedules > 100,
        "4-thread model explores a real space"
    );
}

#[test]
fn snapshot_mutant_in_place_publish_is_caught() {
    // Seeded mutant: a "writer" that mutates the *current* snapshot in
    // place through a pin instead of building a new one and swapping.
    // Readers use their pins lock-free, so this is a data race on the
    // payload — the detector must flag it.
    let err = explorer()
        .check(|| {
            let drops = Arc::new(AtomicUsize::new(0));
            let cell = Arc::new(ModelCell {
                current: RwLock::new(Arc::new(Snap::new(&drops))),
            });
            let w = {
                let cell = cell.clone();
                thread::spawn(move || {
                    let pin = cell.pin();
                    pin.a.set(7); // mutating shared state outside any lock
                    pin.b.set(7);
                })
            };
            let pin = cell.pin();
            let _ = pin.a.get();
            let _ = w.join();
        })
        .expect_err("in-place publish is a race and must be caught");
    assert!(err.message.contains("data race"), "{}", err.message);
}

// ---------------------------------------------------------------------
// Model 2: BatchedService enqueue vs flush
// ---------------------------------------------------------------------

struct ModelPending {
    id: u64,
    slot: Arc<Mutex<Option<u64>>>,
}

struct ModelShard {
    queue: Mutex<ModelQueue>,
    wake: Condvar,
    /// Stands in for the server the flusher drives: every `execute`
    /// touches it unsynchronized, so two concurrent flushers — which the
    /// `flushing` flag must rule out — would be reported as a race.
    server: RaceCell<u64>,
}

#[derive(Default)]
struct ModelQueue {
    pending: Vec<ModelPending>,
    flushing: bool,
}

impl ModelShard {
    fn execute(&self, id: u64) -> u64 {
        let served = self.server.get();
        self.server.set(served + 1);
        id * 100 + served
    }

    /// `BatchedService::batched_remainder`'s control flow: fast path when
    /// idle, otherwise enqueue and either wait for a flusher or become
    /// one. `notify` is the seeded-mutant switch: the sound model passes
    /// `true`; `false` drops the post-flush wakeup and must deadlock.
    fn submit(&self, id: u64, notify: bool) -> u64 {
        let mut q = self.queue.lock();
        if q.pending.is_empty() && !q.flushing {
            q.flushing = true;
            drop(q);
            let reply = self.execute(id); // batch of one
            let mut q = self.queue.lock();
            q.flushing = false;
            drop(q);
            if notify {
                self.wake.notify_all();
            }
            return reply;
        }
        let slot = Arc::new(Mutex::new(None));
        q.pending.push(ModelPending {
            id,
            slot: slot.clone(),
        });
        loop {
            {
                let mut s = slot.lock();
                if let Some(reply) = s.take() {
                    return reply;
                }
            }
            if q.flushing {
                q = self.wake.wait(q);
                continue;
            }
            q.flushing = true;
            let batch: Vec<ModelPending> = q.pending.drain(..).collect();
            drop(q);
            self.wake.notify_all(); // freed queue space

            for p in batch {
                let reply = self.execute(p.id);
                *p.slot.lock() = Some(reply);
            }

            // FlushReset: clear the flag, wake parked waiters.
            let mut q2 = self.queue.lock();
            q2.flushing = false;
            drop(q2);
            if notify {
                self.wake.notify_all();
            }
            q = self.queue.lock();
        }
    }
}

#[test]
fn batched_service_enqueue_vs_flush_is_sound() {
    let report = explorer()
        .check(|| {
            let shard = Arc::new(ModelShard {
                queue: Mutex::new(ModelQueue::default()),
                wake: Condvar::new(),
                server: RaceCell::new(0),
            });
            let hs: Vec<_> = (0..2u64)
                .map(|id| {
                    let shard = shard.clone();
                    thread::spawn(move || shard.submit(id, true))
                })
                .collect();
            let replies: Vec<u64> = hs.into_iter().map(|h| h.join().unwrap()).collect();
            // Exactly-once service: each client gets its own reply, and
            // the "server" executed exactly one request per client.
            for (id, reply) in replies.iter().enumerate() {
                assert_eq!(
                    reply / 100,
                    id as u64,
                    "client got someone else's reply: {reply}"
                );
            }
            assert_eq!(
                shard.server.get(),
                2,
                "every request must execute exactly once"
            );
        })
        .expect("batched-service protocol must survive every schedule");
    assert!(
        report.complete,
        "exploration truncated at {} schedules — raise the cap",
        report.schedules
    );
    assert!(report.schedules > 10, "enqueue/flush explores a real space");
}

#[test]
fn batched_service_mutant_missing_wakeup_is_caught() {
    // Seeded mutant: the flusher clears `flushing` without notifying —
    // the PR 8 hung-fleet failure family. Some schedule parks a waiter
    // after the only wakeup, and the deadlock detector must see it.
    let err = explorer()
        .check(|| {
            let shard = Arc::new(ModelShard {
                queue: Mutex::new(ModelQueue::default()),
                wake: Condvar::new(),
                server: RaceCell::new(0),
            });
            let hs: Vec<_> = (0..2u64)
                .map(|id| {
                    let shard = shard.clone();
                    thread::spawn(move || shard.submit(id, false))
                })
                .collect();
            for h in hs {
                let _ = h.join();
            }
        })
        .expect_err("a flush without a wakeup must strand some schedule");
    assert!(err.message.contains("deadlock"), "{}", err.message);
}
