//! The spatially-sharded cluster: the unit square is cut into a fixed
//! [`TileGrid`] of tiles, tiles map to shards round-robin, and each shard
//! is a full [`Server`] (its own [`ServerCore`] snapshot cell, adaptive
//! controller and update log) indexing exactly the objects whose MBRs
//! touch its tiles. Objects straddling tile boundaries are **replicated**
//! into every owning shard's tree — which is what makes per-shard
//! staleness sound (any change to an object touches all shards a query
//! over it could route to) — and the router deduplicates them on merge so
//! each object is wire-charged to the client exactly once.
//!
//! [`Cluster`] implements [`ServerHandle`]: clients navigate a synthetic
//! **super-root** node (a BPT over the shard root MBRs, shipped like any
//! other node) whose leaves hand off into per-shard subtrees; remainder
//! heaps are decomposed by ownership into per-shard sub-queries
//! ([`ShardSubRequest`]), resumed against each shard's pinned snapshot,
//! and gathered ([`ShardSubReply`], carrying the per-shard
//! [`EpochVector`]) into one client-facing reply. Shard node ids are
//! translated into disjoint global ranges (`global = local·N + shard`) so
//! one client cache can hold index slices of every shard at once.
//!
//! Updates route by location: one cluster batch is applied to the global
//! store once, split into per-shard tree operations by before/after tile
//! ownership ([`PartitionOp`]) and published **in parallel, only to the
//! shards it touches** — untouched shards keep their epoch, so a reply's
//! staleness is decided per shard, not globally. Clients keep speaking
//! the scalar-epoch protocol: the cluster epoch indexes a history of
//! per-shard epoch vectors, and the router re-expands a client's scalar
//! stamp into the vector it was synced at.

use crate::core::{PartitionOp, ServerCore, Snapshot};
use crate::forms::build_shipments;
use crate::server::{ClientId, Server, ServerConfig};
use crate::sync_util::lock_recover;
use crate::transport::{ServerHandle, Transport};
use crate::updates::Update;
use pc_geom::{Rect, TileGrid};
use pc_rtree::bpt::{Bpt, BptCellKind, Code};
use pc_rtree::engine::{
    execute, resume, AccessLog, CellChild, Expansion, IndexView, NoopTracer, Outcome, Target,
};
use pc_rtree::proto::{
    CellKind, CellRecord, CellRef, DirectReply, EpochVector, HeapEntry, NodeShipment, QuerySpec,
    RemainderQuery, Request, Response, ServerReply, ShardSubReply, ShardSubRequest, Side,
    VersionedReply,
};
use pc_rtree::view::FullView;
use pc_rtree::{NodeId, ObjectId, ObjectStore, RTreeConfig, SpatialObject};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The synthetic node id of the cluster's super-root (the BPT over shard
/// root MBRs a client's catalog points at). Deliberately the topmost id so
/// it can never collide with a translated shard node id.
pub const SUPER_ROOT: NodeId = NodeId(u32::MAX);

// ---------------------------------------------------------------------
// Configuration + shard map
// ---------------------------------------------------------------------

/// Cluster-level configuration: shard count, tile resolution and the
/// per-shard server policy.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of shards (1..=64; ownership sets travel as a `u64` bitmask).
    pub shards: u32,
    /// Tiles per grid axis; 0 picks `ceil(sqrt(4·shards))` so every shard
    /// owns a handful of tiles and boundary straddlers stay rare.
    pub grid: u32,
    /// Configuration applied to every shard's [`Server`].
    pub server: ServerConfig,
}

impl ClusterConfig {
    /// A cluster of `shards` shards with the default grid and server
    /// policy.
    pub fn new(shards: u32) -> Self {
        ClusterConfig {
            shards,
            grid: 0,
            server: ServerConfig::default(),
        }
    }

    /// Tiles per axis after defaulting.
    pub fn grid_per_axis(&self) -> u32 {
        if self.grid > 0 {
            self.grid
        } else {
            (4.0 * self.shards as f64).sqrt().ceil() as u32
        }
    }

    /// Rejects configurations that would silently misbehave (zero-shard
    /// clusters foremost). Called by [`Cluster::new`], which panics with
    /// the returned message.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err(
                "ClusterConfig::shards must be ≥ 1: a zero-shard cluster owns no tiles and \
                 could answer no query"
                    .to_string(),
            );
        }
        if self.shards > 64 {
            return Err(format!(
                "ClusterConfig::shards must be ≤ 64 (got {}): tile-ownership sets travel \
                 as a u64 bitmask",
                self.shards
            ));
        }
        if self.grid > 0 && (self.grid as u64 * self.grid as u64) < self.shards as u64 {
            return Err(format!(
                "ClusterConfig::grid {}×{} has fewer tiles than the {} shards — some shards \
                 would own nothing",
                self.grid, self.grid, self.shards
            ));
        }
        self.server.validate()
    }
}

/// Tile → shard ownership: tiles are dealt round-robin over the grid's
/// row-major order, an object belongs to every shard owning a tile its
/// MBR covers, and node ids translate between shard-local and
/// cluster-global spaces.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    grid: TileGrid,
    shards: u32,
}

impl ShardMap {
    pub fn new(grid: TileGrid, shards: u32) -> Self {
        assert!((1..=64).contains(&shards), "1..=64 shards");
        ShardMap { grid, shards }
    }

    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning tile `(tx, ty)`.
    pub fn shard_of_tile(&self, tx: u32, ty: u32) -> u32 {
        self.grid.index(tx, ty) % self.shards
    }

    /// Bitmask of the shards owning any tile `r` covers (never empty: the
    /// grid clamps, so every rectangle covers at least one tile).
    pub fn owners(&self, r: &Rect) -> u64 {
        let mut mask = 0u64;
        for (tx, ty) in self.grid.cover(r) {
            mask |= 1 << self.shard_of_tile(tx, ty);
        }
        mask
    }

    /// Whether shard `s` owns any tile `r` covers.
    pub fn owns(&self, s: u32, r: &Rect) -> bool {
        self.owners(r) & (1 << s) != 0
    }

    /// The lowest-numbered owning shard — the canonical home used to
    /// route single-object work so it is answered exactly once.
    pub fn first_owner(&self, r: &Rect) -> u32 {
        self.owners(r).trailing_zeros()
    }

    /// Translates a shard-local node id into the cluster-global space.
    pub fn to_global(&self, local: NodeId, shard: u32) -> NodeId {
        let g = local.0 as u64 * self.shards as u64 + shard as u64;
        debug_assert!(g < SUPER_ROOT.0 as u64, "node id space exhausted");
        NodeId(g as u32)
    }

    /// Inverse of [`to_global`](Self::to_global): `(shard, local id)`.
    pub fn to_local(&self, global: NodeId) -> (u32, NodeId) {
        debug_assert!(global != SUPER_ROOT);
        (global.0 % self.shards, NodeId(global.0 / self.shards))
    }
}

// ---------------------------------------------------------------------
// Cluster state
// ---------------------------------------------------------------------

/// One published cluster epoch: the per-shard epoch vector and the shard
/// root ids at publish time (for super-root change detection).
#[derive(Clone, Debug)]
struct EpochEntry {
    epoch: u64,
    shard_epochs: Vec<u64>,
    roots: Vec<Option<NodeId>>,
}

#[derive(Debug, Default)]
struct ClusterState {
    /// Contiguous published epochs, oldest first (`history[e - front]`).
    history: VecDeque<EpochEntry>,
    /// Oldest cluster epoch the history can still expand into a vector.
    low_water: u64,
    /// Last cluster epoch each versioned client synced to — the floor
    /// history pruning respects (bounded like the adaptive table).
    clients: HashMap<ClientId, u64>,
}

#[derive(Debug, Default)]
struct Counters {
    scatter_bytes: AtomicU64,
    gather_bytes: AtomicU64,
    sub_queries: AtomicU64,
    duplicates_merged: AtomicU64,
}

/// Backplane accounting of the scatter-gather router (router ↔ shard
/// traffic, *not* client-channel bytes — the client ledger only ever sees
/// the merged reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Router → shard sub-query bytes ([`ShardSubRequest`]).
    pub scatter_bytes: u64,
    /// Shard → router partial-reply bytes ([`ShardSubReply`]).
    pub gather_bytes: u64,
    /// Sub-queries scattered (shards touched by remainder resumes).
    pub sub_queries: u64,
    /// Straddler duplicates dropped by the merge — objects returned by
    /// more than one shard but charged to the client once.
    pub duplicates_merged: u64,
}

/// A consistent cross-shard read: every pin's epoch matches the cluster
/// epoch's recorded vector.
struct PinSet {
    pins: Vec<Arc<Snapshot>>,
    epoch: u64,
    vector: Vec<u64>,
}

/// The scatter-gather router over `N` spatial shards. Implements
/// [`ServerHandle`], so fleets, sessions and benches drive it exactly like
/// a single server.
#[derive(Debug)]
pub struct Cluster {
    map: ShardMap,
    shards: Vec<Server>,
    cfg: ClusterConfig,
    /// Serializes cluster update batches (per-shard publishes inside one
    /// batch still run in parallel).
    write: Mutex<()>,
    state: Mutex<ClusterState>,
    /// Current cluster epoch; stored *after* every shard of a batch has
    /// published, so a pin taken at this epoch can reach the vector.
    epoch: AtomicU64,
    stats: Counters,
}

impl Cluster {
    /// Partitions `store` across `cfg.shards` shards and bulk loads one
    /// tree per shard over the objects it owns. Panics on an invalid
    /// configuration ([`ClusterConfig::validate`]).
    pub fn new(store: ObjectStore, tree_cfg: RTreeConfig, cfg: ClusterConfig) -> Self {
        // pc-check: allow(no-unwrap, "constructor precondition, documented 'Panics on an invalid configuration' above — a misconfigured cluster must never start serving")
        cfg.validate().expect("invalid ClusterConfig");
        let map = ShardMap::new(TileGrid::new(cfg.grid_per_axis()), cfg.shards);
        let shards: Vec<Server> = (0..cfg.shards)
            .map(|s| {
                let owned: Vec<SpatialObject> = store
                    .iter_live()
                    .filter(|o| map.owns(s, &o.mbr))
                    .copied()
                    .collect();
                Server::from_core(
                    ServerCore::build_with_objects(store.clone(), tree_cfg, &owned),
                    cfg.server,
                )
            })
            .collect();
        let roots = shards
            .iter()
            .map(|sv| {
                let snap = sv.core().pin();
                snap.tree().root_mbr().map(|_| snap.tree().root())
            })
            .collect();
        let mut history = VecDeque::new();
        history.push_back(EpochEntry {
            epoch: 0,
            shard_epochs: vec![0; cfg.shards as usize],
            roots,
        });
        Cluster {
            map,
            shards,
            cfg,
            write: Mutex::new(()),
            state: Mutex::new(ClusterState {
                history,
                low_water: 0,
                clients: HashMap::new(),
            }),
            epoch: AtomicU64::new(0),
            stats: Counters::default(),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    pub fn shard_count(&self) -> u32 {
        self.cfg.shards
    }

    /// One shard's server (tests and diagnostics).
    pub fn shard(&self, s: u32) -> &Server {
        &self.shards[s as usize]
    }

    /// The current cluster epoch (bumped once per applied update batch).
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release store at the end of
        // `apply_updates`: observing epoch E implies E's history entry and
        // every shard publish of batch E are visible too.
        self.epoch.load(Ordering::Acquire)
    }

    /// Router backplane counters since construction.
    pub fn stats(&self) -> ClusterStats {
        // ordering: Relaxed — monotone stats counters; a snapshot is a
        // report (exact-total tests read it after the fleet joins).
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ClusterStats {
            scatter_bytes: ld(&self.stats.scatter_bytes),
            gather_bytes: ld(&self.stats.gather_bytes),
            sub_queries: ld(&self.stats.sub_queries),
            duplicates_merged: ld(&self.stats.duplicates_merged),
        }
    }

    /// Clients with adaptive state (fmr reports broadcast to every shard,
    /// so any shard's table reports the same census).
    pub fn tracked_clients(&self) -> usize {
        self.shards[0].tracked_clients()
    }

    // -----------------------------------------------------------------
    // Consistent pinning
    // -----------------------------------------------------------------

    /// Pins every shard at the epochs the current cluster epoch recorded.
    /// Optimistic: re-pins on a concurrent publish; falls back to briefly
    /// excluding writers if churn outruns it.
    fn pin_all(&self) -> PinSet {
        for _ in 0..64 {
            // ordering: Acquire pairs with `apply_updates`' Release store —
            // seeing epoch E guarantees E's history entry is in `state`.
            let epoch = self.epoch.load(Ordering::Acquire);
            let vector = {
                let state = lock_recover(&self.state);
                self.entry_at(&state, epoch).map(|e| e.shard_epochs.clone())
            };
            let Some(vector) = vector else { continue };
            let pins: Vec<Arc<Snapshot>> = self.shards.iter().map(|sv| sv.core().pin()).collect();
            // ordering: Acquire (same pairing as above) — the re-load
            // validates no publish raced the per-shard pins.
            let consistent = pins.iter().zip(&vector).all(|(p, &want)| p.epoch() == want)
                && self.epoch.load(Ordering::Acquire) == epoch;
            if consistent {
                return PinSet {
                    pins,
                    epoch,
                    vector,
                };
            }
        }
        // Writers are publishing faster than we can pin: take the writer
        // lock for one consistent read.
        let _writer = lock_recover(&self.write);
        // ordering: Acquire — same pairing as the loop above; the writer
        // lock additionally excludes concurrent publishes entirely.
        let epoch = self.epoch.load(Ordering::Acquire);
        let vector = {
            let state = lock_recover(&self.state);
            self.entry_at(&state, epoch)
                // pc-check: allow(no-unwrap, "invariant: pruning never pops the entry of the current epoch (the horizon is capped below it), and the writer lock held here excludes a concurrent bump")
                .expect("current epoch is always in history")
                .shard_epochs
                .clone()
        };
        let pins = self.shards.iter().map(|sv| sv.core().pin()).collect();
        PinSet {
            pins,
            epoch,
            vector,
        }
    }

    /// The history entry of cluster epoch `e`, if it is still retained.
    fn entry_at<'a>(&self, state: &'a ClusterState, e: u64) -> Option<&'a EpochEntry> {
        let front = state.history.front()?.epoch;
        if e < front {
            return None;
        }
        state.history.get((e - front) as usize)
    }

    fn current_roots(pins: &[Arc<Snapshot>]) -> Vec<Option<NodeId>> {
        pins.iter()
            .map(|p| p.tree().root_mbr().map(|_| p.tree().root()))
            .collect()
    }

    // -----------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------

    /// Applies one update batch across the cluster: the global store is
    /// updated once (same id assignment and liveness gating as a single
    /// server), per-shard tree operations are derived from before/after
    /// tile ownership — a `Move` across a tile boundary becomes
    /// delete-here/insert-there in the same logical batch — and the
    /// touched shards publish their next epochs **in parallel**.
    /// Untouched shards only swap in the new store (no epoch bump), so
    /// their clients stay fresh. Returns the new cluster epoch.
    pub fn apply_updates(&self, updates: &[Update]) -> u64 {
        let _writer = lock_recover(&self.write);
        let n = self.cfg.shards as usize;
        let base = self.shards[0].core().pin();
        let mut next_store = base.store().clone();

        // Apply the batch to the store, remembering each object's state at
        // batch start (first touch) — deletes against shard trees must use
        // the MBR the tree actually indexed, not an intermediate one.
        let mut touch_order: Vec<ObjectId> = Vec::new();
        let mut touched: HashMap<ObjectId, ()> = HashMap::new();
        let mut touch = |id: ObjectId, order: &mut Vec<ObjectId>| {
            if touched.insert(id, ()).is_none() {
                order.push(id);
            }
        };
        for u in updates {
            match *u {
                Update::Insert { mbr, size_bytes } => {
                    let id = next_store.push(mbr, size_bytes);
                    touch(id, &mut touch_order);
                }
                Update::Delete(id) => {
                    if next_store.try_get(id).is_some() && next_store.is_live(id) {
                        next_store.mark_dead(id);
                        touch(id, &mut touch_order);
                    }
                }
                Update::Move { id, to } => {
                    if next_store.try_get(id).is_some() && next_store.is_live(id) {
                        next_store.set_mbr(id, to);
                        touch(id, &mut touch_order);
                    }
                }
            }
        }

        // Net per-shard ops from (batch-start, batch-end) ownership.
        let mut ops: Vec<Vec<PartitionOp>> = vec![Vec::new(); n];
        let mut tombs: Vec<Vec<ObjectId>> = vec![Vec::new(); n];
        for &id in &touch_order {
            let initial = base
                .store()
                .try_get(id)
                .filter(|_| base.store().is_live(id))
                .map(|o| o.mbr);
            let live_after = next_store.is_live(id);
            let final_mbr = next_store.get(id).mbr;
            for s in 0..self.cfg.shards {
                // `Some(mbr)` iff shard `s` indexed the object at batch
                // start — carrying the MBR instead of a bool keeps the
                // delete/relocate arms total (no unwrap on a side channel).
                let before = initial.filter(|m| self.map.owns(s, m));
                let after = live_after && self.map.owns(s, &final_mbr);
                match (before, after) {
                    (Some(from), false) => {
                        ops[s as usize].push(PartitionOp::Delete(id, from));
                    }
                    (None, true) => ops[s as usize].push(PartitionOp::Insert(id)),
                    (Some(from), true) => {
                        if from != final_mbr {
                            ops[s as usize].push(PartitionOp::Relocate(id, from));
                        }
                    }
                    (None, false) => {}
                }
                if before.is_some() && !live_after {
                    tombs[s as usize].push(id);
                }
            }
        }

        // Publish: touched shards in parallel (each bumps its own epoch),
        // untouched shards just sync the store so globally-assigned ids
        // stay resolvable from any shard's pin.
        std::thread::scope(|scope| {
            for s in 0..n {
                let shard = &self.shards[s];
                let store = next_store.clone();
                let ops = &ops[s];
                let tombs = &tombs[s];
                let max_history = self.cfg.server.max_update_history;
                if ops.is_empty() && tombs.is_empty() {
                    shard.core().refresh_store(store);
                } else {
                    scope.spawn(move || {
                        shard.core().publish_partition(
                            store,
                            ops,
                            tombs,
                            shard.epoch_low_water(),
                            max_history,
                        );
                    });
                }
            }
        });

        let shard_epochs: Vec<u64> = self.shards.iter().map(|sv| sv.core().epoch()).collect();
        let roots = self
            .shards
            .iter()
            .map(|sv| {
                let snap = sv.core().pin();
                snap.tree().root_mbr().map(|_| snap.tree().root())
            })
            .collect();

        let mut state = lock_recover(&self.state);
        // ordering: Acquire — pairs with the Release below; the writer
        // lock already serializes bumps, this read just picks up the last.
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        state.history.push_back(EpochEntry {
            epoch,
            shard_epochs,
            roots,
        });
        let floor = state.clients.values().copied().min();
        let horizon = floor
            .unwrap_or(0)
            .max(epoch.saturating_sub(self.cfg.server.max_update_history));
        while state
            .history
            .front()
            .is_some_and(|front| front.epoch < horizon)
        {
            state.history.pop_front();
        }
        state.low_water = state.low_water.max(horizon);
        drop(state);
        // ordering: Release — published only after every shard publish and
        // the history push above; pairs with the Acquire loads in
        // `epoch()` / `pin_all`, so an observer of epoch E can always
        // resolve E's vector from history.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Records `client`'s sync point (cluster epoch) for history pruning,
    /// evicting the most-behind entry past the tracked-client cap.
    fn note_client(&self, client: ClientId, epoch: u64) {
        let mut state = lock_recover(&self.state);
        if !state.clients.contains_key(&client)
            && state.clients.len() >= self.cfg.server.max_tracked_clients
        {
            if let Some((&evict, _)) = state.clients.iter().min_by_key(|(_, &e)| e) {
                state.clients.remove(&evict);
            }
        }
        state.clients.insert(client, epoch);
    }

    // -----------------------------------------------------------------
    // Queries: scatter / gather / merge
    // -----------------------------------------------------------------

    /// Answers a plain (unversioned) remainder query by scatter-gather.
    pub fn process_remainder(&self, client: ClientId, rq: &RemainderQuery) -> ServerReply {
        let set = self.pin_all();
        let layout = SuperLayout::build(&set.pins);
        self.scatter_remainder(client, rq, &set, &layout)
    }

    /// The versioned contact: the client's scalar cluster epoch is
    /// re-expanded into the per-shard epoch vector it was synced at
    /// (via the epoch history), and staleness is decided **per shard** —
    /// only changes in shards the query could touch force a `Stale`
    /// round-trip, while changes elsewhere ride along as invalidations on
    /// a `Fresh` reply.
    pub fn process_remainder_versioned(
        &self,
        client: ClientId,
        rq: &RemainderQuery,
        client_epoch: u64,
    ) -> VersionedReply {
        let set = self.pin_all();
        let n = self.cfg.shards as usize;
        for (shard, &e) in self.shards.iter().zip(&set.vector) {
            shard.note_client_epoch(client, e);
        }
        self.note_client(client, set.epoch);

        let entry = {
            let state = lock_recover(&self.state);
            if client_epoch < state.low_water {
                None
            } else {
                self.entry_at(&state, client_epoch).cloned()
            }
        };
        let Some(entry) = entry else {
            return VersionedReply::FullRefresh { epoch: set.epoch };
        };

        // Per-shard deltas since the client's synced vector.
        let mut changed: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for (pin, &since) in set.pins.iter().zip(&entry.shard_epochs) {
            if !pin.update_log().can_answer(since) {
                return VersionedReply::FullRefresh { epoch: set.epoch };
            }
            changed.push(pin.update_log().changed_since(since));
        }

        // Did the super-root layout change? Either a shard root id moved,
        // or a current root node is itself in its shard's changed set (its
        // MBR may have moved, re-shaping the layout BPT).
        let current_roots = Self::current_roots(&set.pins);
        let super_changed = entry.roots != current_roots
            || current_roots
                .iter()
                .zip(&changed)
                .any(|(root, ch)| root.is_some_and(|r| ch.contains(&r)));

        let mut invalidate: Vec<NodeId> = Vec::new();
        let mut changed_mask = 0u64;
        for (s, ch) in changed.iter().enumerate() {
            if !ch.is_empty() {
                changed_mask |= 1 << s;
            }
            invalidate.extend(ch.iter().map(|&nid| self.map.to_global(nid, s as u32)));
        }
        if super_changed {
            invalidate.push(SUPER_ROOT);
        }
        invalidate.sort();

        // Shards this query could touch. A range query is covered by the
        // owners of its window tiles plus whatever its heap references
        // (straddler replication makes the window owners sufficient for
        // the result set); kNN and join have unbounded reach.
        let mut covered = match rq.spec {
            QuerySpec::Range { window } => self.map.owners(&window),
            _ => u64::MAX >> (64 - n),
        };
        let mut mentions_super = false;
        let mut note_side = |side: &Side| match *side {
            Side::Cell { cell, .. } => {
                if cell.node == SUPER_ROOT {
                    mentions_super = true;
                } else {
                    covered |= 1 << self.map.to_local(cell.node).0;
                }
            }
            // Every owner, not just the canonical one: a straddler's cell
            // may sit in the client's cache under *any* replica owner's
            // view, and that view must not be invalidated out from under
            // the heap by a Fresh reply.
            Side::Obj { ref mbr, .. } => covered |= self.map.owners(mbr),
        };
        for (_, entry) in &rq.heap {
            match entry {
                HeapEntry::Single(side) => note_side(side),
                HeapEntry::Pair(a, b) => {
                    note_side(a);
                    note_side(b);
                }
            }
        }

        if changed_mask & covered != 0 || (super_changed && mentions_super) {
            return VersionedReply::Stale {
                invalidate,
                epoch: set.epoch,
            };
        }
        let layout = SuperLayout::build(&set.pins);
        VersionedReply::Fresh {
            reply: self.scatter_remainder(client, rq, &set, &layout),
            invalidate,
            epoch: set.epoch,
        }
    }

    /// Ground-truth query against the merged current snapshot set.
    pub fn direct(&self, spec: &QuerySpec) -> DirectReply {
        let set = self.pin_all();
        match *spec {
            QuerySpec::Range { window } => {
                let owners = self.map.owners(&window);
                let mut ids: Vec<ObjectId> = Vec::new();
                let mut expansions = 0;
                for (s, pin) in set.pins.iter().enumerate() {
                    if owners & (1 << s) == 0 {
                        continue;
                    }
                    let out = pin.direct(spec);
                    expansions += out.expansions;
                    ids.extend(out.results.iter().map(|&(id, _)| id));
                }
                ids.sort();
                ids.dedup();
                DirectReply {
                    results: ids,
                    pairs: Vec::new(),
                    expansions,
                }
            }
            QuerySpec::Knn { k, .. } => {
                let mut cands: Vec<(f64, ObjectId)> = Vec::new();
                let mut expansions = 0;
                for pin in &set.pins {
                    let out = pin.direct(spec);
                    expansions += out.expansions;
                    for &(id, _) in &out.results {
                        cands.push((spec.key_for(&pin.store().get(id).mbr), id));
                    }
                }
                // total_cmp: distance keys are never NaN, and a total
                // order costs nothing over the panicking partial_cmp.
                cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                // Same id ⇒ same MBR ⇒ same key: duplicates are adjacent.
                cands.dedup_by_key(|c| c.1);
                cands.truncate(k as usize);
                DirectReply {
                    results: cands.into_iter().map(|(_, id)| id).collect(),
                    pairs: Vec::new(),
                    expansions,
                }
            }
            QuerySpec::Join { .. } => {
                let layout = SuperLayout::build(&set.pins);
                let view = ClusterView {
                    map: &self.map,
                    pins: &set.pins,
                    layout: &layout,
                };
                let out = execute(&view, spec, &mut NoopTracer);
                let mut pairs = out.result_pairs;
                for p in &mut pairs {
                    if p.0 > p.1 {
                        *p = (p.1, p.0);
                    }
                }
                pairs.sort();
                pairs.dedup();
                let mut ids: Vec<ObjectId> = out.results.iter().map(|&(id, _)| id).collect();
                ids.sort();
                ids.dedup();
                DirectReply {
                    results: ids,
                    pairs,
                    expansions: out.expansions,
                }
            }
        }
    }

    /// Decomposes one client-held super-root cell into the shard roots
    /// under it, pushing each qualifying shard root into that shard's
    /// sub-heap. Returns the router-side cell expansions performed.
    fn decompose_super(
        &self,
        layout: &SuperLayout,
        set: &PinSet,
        code: Code,
        spec: &QuerySpec,
        sub: &mut [Vec<(f64, HeapEntry)>],
    ) -> u64 {
        let mut expansions = 0;
        let mut stack = vec![code];
        while let Some(c) = stack.pop() {
            if let Some(children) = layout.bpt.children(c) {
                expansions += 1;
                for (cc, cell) in children {
                    if spec.qualifies(&cell.mbr) {
                        stack.push(cc);
                    }
                }
            } else if let Some(cell) = layout.bpt.find(c) {
                if let BptCellKind::Leaf { entry_idx } = cell.kind {
                    let s = layout.members[entry_idx as usize];
                    let tree = set.pins[s as usize].tree();
                    sub[s as usize].push((
                        spec.key_for(&cell.mbr),
                        HeapEntry::Single(Side::Cell {
                            cell: CellRef::node_root(tree.root()),
                            mbr: cell.mbr,
                        }),
                    ));
                }
            } else {
                debug_assert!(false, "invalid super-root cell in a remainder heap");
            }
        }
        expansions
    }

    /// Routes a join frontier pair to a single shard when both sides live
    /// there (objects are wildcards: an authoritative resume confirms them
    /// without a tree lookup). Cross-shard or super-rooted pairs return
    /// `None` and resume router-side over the merged view.
    fn route_pair(&self, a: Side, b: Side) -> Option<(u32, Side, Side)> {
        let is_super =
            |side: &Side| matches!(side, Side::Cell { cell, .. } if cell.node == SUPER_ROOT);
        if is_super(&a) || is_super(&b) {
            return None;
        }
        let shard_of = |side: &Side| match side {
            Side::Cell { cell, .. } => Some(self.map.to_local(cell.node).0),
            Side::Obj { .. } => None,
        };
        let localize = |side: Side| match side {
            Side::Cell { cell, mbr } => Side::Cell {
                cell: CellRef {
                    node: self.map.to_local(cell.node).1,
                    code: cell.code,
                },
                mbr,
            },
            obj => obj,
        };
        match (shard_of(&a), shard_of(&b)) {
            (Some(x), Some(y)) if x == y => Some((x, localize(a), localize(b))),
            (Some(x), None) => Some((x, localize(a), b)),
            (None, Some(y)) => Some((y, a, localize(b))),
            (None, None) => Some((self.map.first_owner(&a.mbr()), a, b)),
            (Some(_), Some(_)) => None,
        }
    }

    /// Rewrites one shard's shipment into the cluster-global node-id
    /// space so a single client cache can hold slices of every shard.
    fn translate_shipment(&self, sh: NodeShipment, s: u32) -> NodeShipment {
        NodeShipment {
            node: self.map.to_global(sh.node, s),
            level: sh.level,
            parent: sh.parent.map(|p| self.map.to_global(p, s)),
            cells: sh
                .cells
                .into_iter()
                .map(|c| CellRecord {
                    code: c.code,
                    mbr: c.mbr,
                    kind: match c.kind {
                        CellKind::Node(nid) => CellKind::Node(self.map.to_global(nid, s)),
                        other => other,
                    },
                })
                .collect(),
        }
    }

    /// The scatter-gather core: decompose the heap by ownership, resume
    /// each sub-query against its shard's pinned snapshot, resume genuinely
    /// cross-shard work over the merged view, then merge the partial
    /// replies — deduplicating boundary straddlers so each object is
    /// wire-charged exactly once.
    fn scatter_remainder(
        &self,
        client: ClientId,
        rq: &RemainderQuery,
        set: &PinSet,
        layout: &SuperLayout,
    ) -> ServerReply {
        let n = self.cfg.shards as usize;
        let mut sub: Vec<Vec<(f64, HeapEntry)>> = vec![Vec::new(); n];
        let mut leftover: Vec<(f64, HeapEntry)> = Vec::new();
        let mut super_ship = false;
        let mut expansions = 0u64;

        for &(key, entry) in &rq.heap {
            match entry {
                HeapEntry::Single(Side::Obj { mbr, .. }) => {
                    sub[self.map.first_owner(&mbr) as usize].push((key, entry));
                }
                HeapEntry::Single(Side::Cell { cell, mbr }) => {
                    if cell.node == SUPER_ROOT {
                        super_ship = true;
                        expansions +=
                            self.decompose_super(layout, set, cell.code, &rq.spec, &mut sub);
                    } else {
                        let (s, local) = self.map.to_local(cell.node);
                        sub[s as usize].push((
                            key,
                            HeapEntry::Single(Side::Cell {
                                cell: CellRef {
                                    node: local,
                                    code: cell.code,
                                },
                                mbr,
                            }),
                        ));
                    }
                }
                HeapEntry::Pair(a, b) => match self.route_pair(a, b) {
                    Some((s, la, lb)) => sub[s as usize].push((key, HeapEntry::Pair(la, lb))),
                    None => leftover.push((key, entry)),
                },
            }
        }

        // Scatter: per-shard authoritative resumes.
        let mut outcomes: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
        let mut logs: Vec<AccessLog> = (0..n).map(|_| AccessLog::default()).collect();
        for (s, heap) in sub.into_iter().enumerate() {
            if heap.is_empty() {
                continue;
            }
            let req = ShardSubRequest {
                shard: s as u32,
                query: RemainderQuery {
                    spec: rq.spec,
                    already_found: rq.already_found,
                    heap,
                },
            };
            // ordering: Relaxed — monotone stats counters (see `stats`).
            self.stats
                .scatter_bytes
                .fetch_add(req.wire_bytes(), Ordering::Relaxed);
            self.stats.sub_queries.fetch_add(1, Ordering::Relaxed);
            let snap = &set.pins[s];
            let view = FullView::new(snap.tree(), snap.bpts());
            let out = resume(&view, &req.query, &mut logs[s]);
            debug_assert!(
                out.remainder.is_none(),
                "authoritative resume never leaves a remainder"
            );
            outcomes[s] = Some(out);
        }

        // Cross-shard leftovers (join pairs spanning shards) resume over
        // the merged view; their node accesses fold back into the owning
        // shards' logs so shipments are built once per shard.
        let mut leftover_outcome: Option<Outcome> = None;
        if !leftover.is_empty() {
            let view = ClusterView {
                map: &self.map,
                pins: &set.pins,
                layout,
            };
            let mut log = AccessLog::default();
            let out = resume(
                &view,
                &RemainderQuery {
                    spec: rq.spec,
                    already_found: rq.already_found,
                    heap: leftover,
                },
                &mut log,
            );
            for (gnode, acc) in log.nodes {
                if gnode == SUPER_ROOT {
                    super_ship |= acc.any_expansion;
                    continue;
                }
                let (s, local) = self.map.to_local(gnode);
                let slot = logs[s as usize].nodes.entry(local).or_default();
                slot.touched.extend(acc.touched);
                slot.expanded_internal.extend(acc.expanded_internal);
                slot.any_expansion |= acc.any_expansion;
            }
            leftover_outcome = Some(out);
        }

        // Gather: per-shard partial replies, charged on the backplane.
        let mut index: Vec<NodeShipment> = Vec::new();
        if super_ship {
            index.push(layout.shipment(&self.map, &set.pins));
        }
        let mut all: Vec<(Option<u32>, Outcome)> = Vec::new();
        for (s, (out, log)) in outcomes.into_iter().zip(logs).enumerate() {
            let Some(out) = out.or_else(|| (!log.nodes.is_empty()).then(Outcome::default)) else {
                continue;
            };
            let snap = &set.pins[s];
            let shipments: Vec<NodeShipment> = build_shipments(
                &log,
                snap.tree(),
                snap.bpts(),
                self.shards[s].remainder_mode(client),
            )
            .into_iter()
            .map(|sh| self.translate_shipment(sh, s as u32))
            .collect();
            let sub_reply = ShardSubReply {
                shard: s as u32,
                epochs: EpochVector {
                    epochs: set.vector.clone(),
                },
                reply: ServerReply {
                    confirmed: out
                        .results
                        .iter()
                        .filter(|&&(_, c)| c)
                        .map(|&(id, _)| id)
                        .collect(),
                    objects: out
                        .results
                        .iter()
                        .filter(|&&(_, c)| !c)
                        .map(|&(id, _)| *snap.store().get(id))
                        .collect(),
                    pairs: out.result_pairs.clone(),
                    index: shipments,
                    expansions: out.expansions,
                },
            };
            // ordering: Relaxed — monotone stats counter (see `stats`).
            self.stats
                .gather_bytes
                .fetch_add(sub_reply.wire_bytes(), Ordering::Relaxed);
            index.extend(sub_reply.reply.index);
            expansions += out.expansions;
            all.push((Some(s as u32), out));
        }
        if let Some(out) = leftover_outcome {
            expansions += out.expansions;
            all.push((None, out));
        }

        // Merge: each object appears (and is charged) exactly once, even
        // when several shards returned a boundary straddler.
        let mut seen: HashMap<ObjectId, usize> = HashMap::new();
        let mut cands: Vec<(SpatialObject, bool)> = Vec::new();
        let mut dups = 0u64;
        for (src, out) in &all {
            for &(id, cached) in &out.results {
                // An owning shard's pinned store is exact for its objects;
                // router leftovers read shard 0's store (same batch, the
                // MBR vintage can lag one refresh — ids and sizes cannot).
                let store = match src {
                    Some(s) => set.pins[*s as usize].store(),
                    None => set.pins[0].store(),
                };
                match seen.entry(id) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(cands.len());
                        cands.push((*store.get(id), cached));
                    }
                    std::collections::hash_map::Entry::Occupied(o) => {
                        dups += 1;
                        cands[*o.get()].1 |= cached;
                    }
                }
            }
        }
        if dups > 0 {
            // ordering: Relaxed — monotone stats counter (see `stats`).
            self.stats
                .duplicates_merged
                .fetch_add(dups, Ordering::Relaxed);
        }

        let mut pairs: Vec<(ObjectId, ObjectId)> = all
            .iter()
            .flat_map(|(_, o)| o.result_pairs.iter().copied())
            .collect();
        match rq.spec {
            QuerySpec::Knn { k, .. } => {
                let budget = k.saturating_sub(rq.already_found) as usize;
                cands.sort_by(|a, b| {
                    let ka = rq.spec.key_for(&a.0.mbr);
                    let kb = rq.spec.key_for(&b.0.mbr);
                    // total_cmp: distance keys are never NaN (see above).
                    ka.total_cmp(&kb).then(a.0.id.cmp(&b.0.id))
                });
                cands.truncate(budget);
            }
            QuerySpec::Join { .. } => {
                for p in &mut pairs {
                    if p.0 > p.1 {
                        *p = (p.1, p.0);
                    }
                }
                pairs.sort();
                pairs.dedup();
                cands.sort_by_key(|c| c.0.id);
            }
            QuerySpec::Range { .. } => {}
        }

        ServerReply {
            confirmed: cands.iter().filter(|c| c.1).map(|c| c.0.id).collect(),
            objects: cands.iter().filter(|c| !c.1).map(|c| c.0).collect(),
            pairs,
            index,
            expansions,
        }
    }
}

// ---------------------------------------------------------------------
// Super-root layout + merged view
// ---------------------------------------------------------------------

/// The synthetic top of the merged index for one consistent pin set: a
/// BPT over the non-empty shard roots' MBRs, shipped to clients as the
/// [`SUPER_ROOT`] node in full form.
struct SuperLayout {
    /// Non-empty shard indices, in shard order (= layout entry order).
    members: Vec<u32>,
    bpt: Bpt,
    /// One above the tallest shard root.
    level: u16,
}

impl SuperLayout {
    fn build(pins: &[Arc<Snapshot>]) -> SuperLayout {
        let mut members = Vec::new();
        let mut mbrs = Vec::new();
        let mut level = 0u16;
        for (s, pin) in pins.iter().enumerate() {
            if let Some(mbr) = pin.tree().root_mbr() {
                members.push(s as u32);
                mbrs.push(mbr);
                let root = pin.tree().root();
                level = level.max(pin.tree().node(root).level + 1);
            }
        }
        SuperLayout {
            members,
            bpt: Bpt::build(&mbrs),
            level,
        }
    }

    /// The full-form shipment of the super-root node.
    fn shipment(&self, map: &ShardMap, pins: &[Arc<Snapshot>]) -> NodeShipment {
        let cells = self
            .bpt
            .leaf_cells()
            .into_iter()
            .map(|(code, cell)| {
                let BptCellKind::Leaf { entry_idx } = cell.kind else {
                    // pc-check: allow(no-unwrap, "invariant by construction: Bpt::leaf_cells yields only leaf cells; an internal here means the BPT itself is corrupt")
                    unreachable!("leaf_cells returns leaves");
                };
                let s = self.members[entry_idx as usize];
                let root = pins[s as usize].tree().root();
                CellRecord {
                    code,
                    mbr: cell.mbr,
                    kind: CellKind::Node(map.to_global(root, s)),
                }
            })
            .collect();
        NodeShipment {
            node: SUPER_ROOT,
            level: self.level,
            parent: None,
            cells,
        }
    }
}

/// The authoritative [`IndexView`] over the whole cluster: the super-root
/// expands through the layout BPT into translated shard roots, and every
/// other node delegates to its shard's pinned tree with ids translated on
/// the way out. Used for cross-shard join resumes and direct ground truth.
struct ClusterView<'a> {
    map: &'a ShardMap,
    pins: &'a [Arc<Snapshot>],
    layout: &'a SuperLayout,
}

impl IndexView for ClusterView<'_> {
    fn root(&self) -> Option<(Rect, CellRef)> {
        let mut mbr: Option<Rect> = None;
        for &m in &self.layout.members {
            // pc-check: allow(no-unwrap, "invariant: `members` was built from these same pins and lists exactly the shards whose pinned root existed")
            let r = self.pins[m as usize].tree().root_mbr().unwrap();
            mbr = Some(match mbr {
                Some(u) => u.union(&r),
                None => r,
            });
        }
        mbr.map(|m| {
            (
                m,
                CellRef {
                    node: SUPER_ROOT,
                    code: Code::ROOT,
                },
            )
        })
    }

    fn expand(&self, cell: CellRef) -> Expansion {
        if cell.node == SUPER_ROOT {
            if let Some(children) = self.layout.bpt.children(cell.code) {
                return Expansion::Children(
                    children
                        .iter()
                        .map(|(code, c)| CellChild {
                            mbr: c.mbr,
                            target: Target::Cell(CellRef {
                                node: SUPER_ROOT,
                                code: *code,
                            }),
                        })
                        .collect(),
                );
            }
            if let Some(c) = self.layout.bpt.find(cell.code) {
                if let BptCellKind::Leaf { entry_idx } = c.kind {
                    let s = self.layout.members[entry_idx as usize];
                    let tree = self.pins[s as usize].tree();
                    return Expansion::Children(vec![CellChild {
                        mbr: c.mbr,
                        target: Target::Cell(CellRef::node_root(
                            self.map.to_global(tree.root(), s),
                        )),
                    }]);
                }
            }
            debug_assert!(false, "invalid super cell {cell} on the merged view");
            return Expansion::Missing;
        }

        let (s, local) = self.map.to_local(cell.node);
        let snap = &self.pins[s as usize];
        let bpt = snap.bpts().get(local);
        if bpt.is_empty() {
            return Expansion::Children(Vec::new());
        }
        if let Some(children) = bpt.children(cell.code) {
            return Expansion::Children(
                children
                    .iter()
                    .map(|(code, c)| CellChild {
                        mbr: c.mbr,
                        target: Target::Cell(CellRef {
                            node: cell.node,
                            code: *code,
                        }),
                    })
                    .collect(),
            );
        }
        match bpt.find(cell.code) {
            Some(c) => match c.kind {
                BptCellKind::Leaf { entry_idx } => {
                    let entry = snap.tree().node(local).entry(entry_idx as usize);
                    let child = match entry.child {
                        pc_rtree::ChildRef::Node(n) => CellChild {
                            mbr: entry.mbr,
                            target: Target::Cell(CellRef::node_root(self.map.to_global(n, s))),
                        },
                        pc_rtree::ChildRef::Object(o) => CellChild {
                            mbr: entry.mbr,
                            target: Target::Object {
                                id: o,
                                cached: false,
                            },
                        },
                    };
                    Expansion::Children(vec![child])
                }
                // pc-check: allow(no-unwrap, "invariant by construction: the expansion path above already resolved internal cells via children(), so only leaves reach this match")
                BptCellKind::Internal { .. } => unreachable!("children() covered internals"),
            },
            None => {
                debug_assert!(false, "invalid cell {cell} on the merged view");
                Expansion::Missing
            }
        }
    }

    fn authoritative(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// Transport / handle plumbing
// ---------------------------------------------------------------------

impl Transport for Cluster {
    fn call(&self, client: ClientId, req: Request) -> Response {
        match req {
            Request::Remainder(rq) => Response::Remainder(self.process_remainder(client, &rq)),
            Request::RemainderVersioned { query, epoch } => {
                Response::Versioned(self.process_remainder_versioned(client, &query, epoch))
            }
            Request::Direct(spec) => Response::Direct(self.direct(&spec)),
            Request::ReportFmr { fmr } => {
                // Broadcast so every shard's adaptive trajectory for this
                // client stays aligned (they all see the same fmr stream
                // and hence agree on d).
                let mut d = 0;
                for shard in &self.shards {
                    d = shard.report_fmr(client, fmr);
                }
                Response::NewD(d)
            }
            Request::Forget => {
                let mut any = false;
                for shard in &self.shards {
                    any |= shard.forget_client(client);
                }
                lock_recover(&self.state).clients.remove(&client);
                Response::Forgotten(any)
            }
        }
    }
}

impl ServerHandle for Cluster {
    fn core(&self) -> &ServerCore {
        // Shard 0's core: its store is the shared global store (every
        // batch syncs it to all shards), which is what metadata readers
        // want. Its *tree* is only shard 0's slice — navigation must go
        // through `bootstrap_root` + the protocol instead.
        self.shards[0].core()
    }

    fn apply_updates(&self, updates: &[Update]) -> u64 {
        Cluster::apply_updates(self, updates)
    }

    fn bootstrap_root(&self) -> (Option<(NodeId, Rect)>, u64) {
        let set = self.pin_all();
        let layout = SuperLayout::build(&set.pins);
        let view = ClusterView {
            map: &self.map,
            pins: &set.pins,
            layout: &layout,
        };
        let root = view.root().map(|(mbr, cell)| (cell.node, mbr));
        (root, set.epoch)
    }

    fn log_records(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.core().pin().update_log().retained_records())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::Point;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample_store(n: usize, seed: u64) -> ObjectStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        ObjectStore::new(
            (0..n)
                .map(|i| SpatialObject {
                    id: ObjectId(i as u32),
                    mbr: Rect::from_point(Point::new(
                        rng.random_range(0.0..1.0),
                        rng.random_range(0.0..1.0),
                    )),
                    size_bytes: rng.random_range(100..2000),
                })
                .collect(),
        )
    }

    fn quad_cluster(store: ObjectStore) -> Cluster {
        Cluster::new(
            store,
            RTreeConfig::small(),
            ClusterConfig {
                shards: 4,
                grid: 2,
                server: ServerConfig::default(),
            },
        )
    }

    fn cold_remainder(cl: &Cluster, spec: QuerySpec) -> RemainderQuery {
        let (root, _) = cl.bootstrap_root();
        let (node, mbr) = root.expect("non-empty cluster");
        let side = Side::Cell {
            cell: CellRef::node_root(node),
            mbr,
        };
        let entry = if spec.is_join() {
            HeapEntry::Pair(side, side)
        } else {
            HeapEntry::Single(side)
        };
        RemainderQuery {
            spec,
            already_found: 0,
            heap: vec![(spec.key_for(&mbr), entry)],
        }
    }

    fn reply_ids(reply: &ServerReply) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = reply
            .confirmed
            .iter()
            .copied()
            .chain(reply.objects.iter().map(|o| o.id))
            .collect();
        ids.sort();
        ids
    }

    #[test]
    fn config_validation_rejects_degenerate_clusters() {
        assert!(ClusterConfig::new(4).validate().is_ok());
        let err = ClusterConfig::new(0).validate().unwrap_err();
        assert!(err.contains("zero-shard"), "unhelpful error: {err}");
        assert!(ClusterConfig::new(65)
            .validate()
            .unwrap_err()
            .contains("64"));
        let cramped = ClusterConfig {
            shards: 16,
            grid: 2,
            server: ServerConfig::default(),
        };
        assert!(cramped.validate().unwrap_err().contains("fewer tiles"));
        let bad_server = ClusterConfig {
            server: ServerConfig {
                max_update_history: 0,
                ..Default::default()
            },
            ..ClusterConfig::new(2)
        };
        assert!(bad_server
            .validate()
            .unwrap_err()
            .contains("max_update_history"));
    }

    #[test]
    fn tile_ownership_replicates_straddlers() {
        let map = ShardMap::new(TileGrid::new(2), 4);
        // Four tiles, four shards: a bijection.
        let mut owners: Vec<u32> = (0..2)
            .flat_map(|ty| (0..2).map(move |tx| map.shard_of_tile(tx, ty)))
            .collect();
        owners.sort();
        assert_eq!(owners, vec![0, 1, 2, 3]);
        // A rect over the centre corner belongs to all four shards.
        let straddler = Rect::centered_square(Point::new(0.5, 0.5), 0.1);
        assert_eq!(map.owners(&straddler), 0b1111);
        // A rect inside one quadrant belongs to exactly one.
        let inner = Rect::centered_square(Point::new(0.25, 0.25), 0.05);
        assert_eq!(map.owners(&inner).count_ones(), 1);
    }

    #[test]
    fn node_id_translation_round_trips() {
        let map = ShardMap::new(TileGrid::new(3), 5);
        for shard in 0..5 {
            for local in [0u32, 1, 17, 9000] {
                let g = map.to_global(NodeId(local), shard);
                assert_ne!(g, SUPER_ROOT);
                assert_eq!(map.to_local(g), (shard, NodeId(local)));
            }
        }
    }

    #[test]
    fn cluster_answers_match_a_single_server() {
        let store = sample_store(300, 7);
        let single = Server::new(store.clone(), RTreeConfig::small(), ServerConfig::default());
        let cl = quad_cluster(store);

        for spec in [
            QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.5, 0.5), 0.3),
            },
            QuerySpec::Knn {
                center: Point::new(0.42, 0.61),
                k: 9,
            },
            QuerySpec::Join { dist: 0.015 },
        ] {
            // Direct ground truth.
            let a = cl.direct(&spec);
            let b = single.direct(&spec);
            let mut b_ids: Vec<ObjectId> = b.results.iter().map(|&(id, _)| id).collect();
            b_ids.sort();
            b_ids.dedup();
            let mut a_ids = a.results.clone();
            a_ids.sort();
            if let QuerySpec::Knn { center, .. } = spec {
                // kNN ties may resolve to different ids; compare distances.
                let key = |id: ObjectId| {
                    let mbr = cl.core().pin().store().get(id).mbr;
                    format!("{:.12}", mbr.min_dist(&center))
                };
                let mut ak: Vec<String> = a_ids.iter().map(|&i| key(i)).collect();
                let mut bk: Vec<String> = b_ids.iter().map(|&i| key(i)).collect();
                ak.sort();
                bk.sort();
                assert_eq!(ak, bk, "knn distance multiset diverged");
            } else {
                assert_eq!(a_ids, b_ids, "direct results diverged for {spec:?}");
            }
            let mut a_pairs = a.pairs.clone();
            let mut b_pairs: Vec<(ObjectId, ObjectId)> = b
                .result_pairs
                .iter()
                .map(|&(x, y)| if x <= y { (x, y) } else { (y, x) })
                .collect();
            a_pairs.sort();
            b_pairs.sort();
            b_pairs.dedup();
            assert_eq!(a_pairs, b_pairs, "join pairs diverged");

            // Cold-cache remainder through the scatter-gather path.
            if !spec.is_join() {
                let reply = cl.process_remainder(1, &cold_remainder(&cl, spec));
                let direct_ids = a.results.clone();
                let mut got = reply_ids(&reply);
                if let QuerySpec::Knn { center, .. } = spec {
                    let key = |id: ObjectId| {
                        let mbr = cl.core().pin().store().get(id).mbr;
                        format!("{:.12}", mbr.min_dist(&center))
                    };
                    let mut gk: Vec<String> = got.iter().map(|&i| key(i)).collect();
                    let mut dk: Vec<String> = direct_ids.iter().map(|&i| key(i)).collect();
                    gk.sort();
                    dk.sort();
                    assert_eq!(gk, dk, "remainder knn diverged from ground truth");
                } else {
                    let mut want = direct_ids;
                    want.sort();
                    got.dedup();
                    assert_eq!(got, want, "remainder range diverged from ground truth");
                }
            }
        }
    }

    /// The wire-accounting regression from the issue: an object whose MBR
    /// covers a 4-tile corner is found by all four shards but must appear
    /// — and be byte-charged — exactly once in the merged reply.
    #[test]
    fn corner_straddler_is_charged_once() {
        let mut objects = vec![SpatialObject {
            id: ObjectId(0),
            mbr: Rect::centered_square(Point::new(0.5, 0.5), 0.08),
            size_bytes: 1000,
        }];
        // A few plain objects per quadrant so every shard has a real tree.
        let mut rng = SmallRng::seed_from_u64(11);
        for i in 1..40u32 {
            objects.push(SpatialObject {
                id: ObjectId(i),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 500,
            });
        }
        let cl = quad_cluster(ObjectStore::new(objects));
        // The straddler is replicated into every shard's tree...
        assert_eq!(
            cl.shard_map()
                .owners(&Rect::centered_square(Point::new(0.5, 0.5), 0.08)),
            0b1111
        );

        let spec = QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.5, 0.5), 0.2),
        };
        let reply = cl.process_remainder(1, &cold_remainder(&cl, spec));
        // ...but the merged reply carries it exactly once.
        let hits = reply.objects.iter().filter(|o| o.id == ObjectId(0)).count()
            + reply
                .confirmed
                .iter()
                .filter(|&&id| id == ObjectId(0))
                .count();
        assert_eq!(hits, 1, "straddler must be merged to a single copy");
        let ids = reply_ids(&reply);
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped, "no object may be charged twice");
        // All four shards returned it: three copies were merged away.
        assert!(
            cl.stats().duplicates_merged >= 3,
            "expected straddler dedup, stats: {:?}",
            cl.stats()
        );
        // And the ledger charges its payload once.
        assert_eq!(
            reply.object_bytes(),
            reply
                .objects
                .iter()
                .map(|o| pc_rtree::proto::OBJECT_HEADER_BYTES + o.size_bytes as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn updates_publish_per_shard_epochs_independently() {
        let cl = quad_cluster(sample_store(80, 3));
        let quiet: Vec<u64> = (0..4).map(|s| cl.shard(s).core().epoch()).collect();
        assert_eq!(quiet, vec![0, 0, 0, 0]);

        // Insert into the lower-left quadrant: exactly one shard publishes.
        let e = ServerHandle::apply_updates(
            &cl,
            &[Update::Insert {
                mbr: Rect::centered_square(Point::new(0.2, 0.2), 0.01),
                size_bytes: 400,
            }],
        );
        assert_eq!(e, 1, "cluster epoch advances once per batch");
        let after: Vec<u64> = (0..4).map(|s| cl.shard(s).core().epoch()).collect();
        assert_eq!(after.iter().sum::<u64>(), 1, "only the owner published");
        let owner = after.iter().position(|&x| x == 1).unwrap() as u32;
        assert_eq!(
            owner,
            cl.shard_map()
                .first_owner(&Rect::centered_square(Point::new(0.2, 0.2), 0.01))
        );

        // Move it across the tile boundary: delete-here/insert-there in
        // one batch — both shards publish, the others stay quiet.
        let id = ObjectId(80);
        let e = ServerHandle::apply_updates(
            &cl,
            &[Update::Move {
                id,
                to: Rect::centered_square(Point::new(0.8, 0.8), 0.01),
            }],
        );
        assert_eq!(e, 2);
        let finally: Vec<u64> = (0..4).map(|s| cl.shard(s).core().epoch()).collect();
        let new_owner = cl
            .shard_map()
            .first_owner(&Rect::centered_square(Point::new(0.8, 0.8), 0.01));
        assert_eq!(finally[owner as usize], 2, "old owner published the delete");
        assert_eq!(
            finally[new_owner as usize], 1,
            "new owner published the insert"
        );
        assert_eq!(finally.iter().sum::<u64>(), 3);

        // The handoff is visible in ground truth.
        let found = cl.direct(&QuerySpec::Range {
            window: Rect::centered_square(Point::new(0.8, 0.8), 0.05),
        });
        assert!(found.results.contains(&id));
    }

    #[test]
    fn versioned_staleness_is_decided_per_shard() {
        let cl = quad_cluster(sample_store(120, 5));
        // Sync a client at epoch 0 via a versioned cold query.
        let cold = cold_remainder(
            &cl,
            QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.25, 0.25), 0.1),
            },
        );
        let VersionedReply::Fresh { epoch, .. } = cl.process_remainder_versioned(9, &cold, 0)
        else {
            panic!("cold client at the current epoch must be fresh");
        };
        assert_eq!(epoch, 0);

        // Churn the upper-right quadrant only.
        ServerHandle::apply_updates(
            &cl,
            &[Update::Insert {
                mbr: Rect::centered_square(Point::new(0.8, 0.8), 0.01),
                size_bytes: 300,
            }],
        );

        let changed_shard = cl
            .shard_map()
            .first_owner(&Rect::centered_square(Point::new(0.8, 0.8), 0.01));
        let quiet_shard = cl
            .shard_map()
            .first_owner(&Rect::centered_square(Point::new(0.2, 0.2), 0.05));
        assert_ne!(changed_shard, quiet_shard);

        // A warm heap referencing only the quiet shard's root: the churn
        // elsewhere must NOT force a stale round-trip...
        let quiet_pin = cl.shard(quiet_shard).core().pin();
        let quiet_root = quiet_pin.tree().root();
        let quiet_mbr = quiet_pin.tree().root_mbr().unwrap();
        let warm = RemainderQuery {
            spec: QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.2, 0.2), 0.05),
            },
            already_found: 0,
            heap: vec![(
                0.0,
                HeapEntry::Single(Side::Cell {
                    cell: CellRef::node_root(cl.shard_map().to_global(quiet_root, quiet_shard)),
                    mbr: quiet_mbr,
                }),
            )],
        };
        match cl.process_remainder_versioned(9, &warm, 0) {
            VersionedReply::Fresh {
                invalidate, epoch, ..
            } => {
                assert_eq!(epoch, 1);
                // ...though the other shard's invalidations ride along.
                assert!(
                    !invalidate.is_empty(),
                    "changed shard's nodes must be invalidated"
                );
            }
            other => panic!("expected per-shard freshness, got {other:?}"),
        }

        // The same client asking INTO the churned quadrant is stale.
        let into_churn = RemainderQuery {
            spec: QuerySpec::Range {
                window: Rect::centered_square(Point::new(0.8, 0.8), 0.05),
            },
            already_found: 0,
            heap: warm.heap.clone(),
        };
        match cl.process_remainder_versioned(9, &into_churn, 0) {
            VersionedReply::Stale { invalidate, epoch } => {
                assert_eq!(epoch, 1);
                assert!(!invalidate.is_empty());
            }
            other => panic!("expected staleness toward the churned shard, got {other:?}"),
        }
    }

    #[test]
    fn bootstrap_root_is_the_super_root() {
        let cl = quad_cluster(sample_store(60, 2));
        let (root, epoch) = cl.bootstrap_root();
        let (node, mbr) = root.unwrap();
        assert_eq!(node, SUPER_ROOT);
        assert_eq!(epoch, 0);
        // The super MBR covers every shard root.
        for s in 0..4 {
            if let Some(r) = cl.shard(s).core().pin().tree().root_mbr() {
                assert!(mbr.contains_rect(&r));
            }
        }
    }
}
