//! The client ↔ server boundary as a first-class API: a [`Transport`]
//! carries typed [`Request`]/[`Response`] envelopes between a client (by
//! id) and *some* server — in-process today, batched ([`crate::service`])
//! or remote tomorrow — and a [`ServerHandle`] is a transport that also
//! exposes the shared immutable [`ServerCore`] (dataset + index metadata
//! that both ends of the paper's Fig. 3 know out of band: the client's
//! catalog is bootstrapped from it, and the simulator reads ground-truth
//! object sizes from it).
//!
//! The split matters: *control and query traffic* (remainder queries, fmr
//! reports, disconnects) must go through [`Transport::call`] so every byte
//! can be accounted on the 384 Kbps channel, while *shared metadata reads*
//! go through [`ServerHandle::core`] and cost nothing — exactly the
//! distinction the byte ledger draws.

use crate::server::{ClientId, Server};
use crate::updates::Update;
use crate::ServerCore;
use pc_geom::Rect;
use pc_rtree::proto::{DirectReply, Request, Response};
use pc_rtree::NodeId;

/// A synchronous request/reply channel to a server. `Send + Sync` so one
/// transport instance can serve a whole fleet of concurrent clients.
pub trait Transport: Send + Sync {
    /// Submits one request on behalf of `client` and blocks for the reply.
    /// Implementations must answer with the response variant matching the
    /// request variant (see [`Response`]'s accessors).
    fn call(&self, client: ClientId, req: Request) -> Response;
}

/// A [`Transport`] that also exposes the shared immutable query core —
/// what simulation drivers hold instead of a concrete `&Server`.
pub trait ServerHandle: Transport {
    /// The shared dataset + index core (metadata reads, not traffic).
    fn core(&self) -> &ServerCore;

    /// Applies one update batch through this handle (the churn driver's
    /// entry point). Server-backed handles override this to route through
    /// `Server::apply_updates`, which prunes update-log history below the
    /// fleet low-water mark; the default hits the core directly and keeps
    /// full history.
    fn apply_updates(&self, updates: &[Update]) -> u64 {
        self.core().apply_updates(updates)
    }

    /// The out-of-band catalog bootstrap: `(root node, root MBR)` of the
    /// index a cold client should navigate (`None` for an empty world)
    /// plus the epoch that root was pinned at. The default reads the
    /// single core's tree; a cluster overrides it with its synthetic
    /// super-root (and its cluster-wide epoch) so clients navigate the
    /// merged view instead of one shard's slice.
    fn bootstrap_root(&self) -> (Option<(NodeId, Rect)>, u64) {
        let snap = self.core().pin();
        let root = snap.tree().root_mbr().map(|mbr| (snap.tree().root(), mbr));
        (root, snap.epoch())
    }

    /// Retained update-log records (changed nodes + tombstones) across the
    /// whole deployment — summed over shards for a cluster. The bounded-log
    /// diagnostic fleet runs report.
    fn log_records(&self) -> usize {
        self.core().pin().update_log().retained_records()
    }
}

/// Dispatches one envelope against a concrete [`Server`] — the single
/// point where the wire protocol meets the server's method surface. Every
/// in-process transport (including the batched service's pass-through
/// path) funnels through here, so protocol/method equivalence is testable
/// in one place.
pub(crate) fn dispatch(server: &Server, client: ClientId, req: Request) -> Response {
    match req {
        Request::Remainder(rq) => Response::Remainder(server.process_remainder(client, &rq)),
        Request::RemainderVersioned { query, epoch } => {
            Response::Versioned(server.process_remainder_versioned(client, &query, epoch))
        }
        Request::Direct(spec) => {
            let outcome = server.direct(&spec);
            Response::Direct(DirectReply {
                results: outcome.results.iter().map(|&(id, _)| id).collect(),
                pairs: outcome.result_pairs,
                expansions: outcome.expansions,
            })
        }
        Request::ReportFmr { fmr } => Response::NewD(server.report_fmr(client, fmr)),
        Request::Forget => Response::Forgotten(server.forget_client(client)),
    }
}

/// The in-process fast path: `Server` is itself a transport, dispatching
/// envelopes straight into its concrete methods with no queueing.
impl Transport for Server {
    fn call(&self, client: ClientId, req: Request) -> Response {
        dispatch(self, client, req)
    }
}

impl ServerHandle for Server {
    fn core(&self) -> &ServerCore {
        Server::core(self)
    }

    fn apply_updates(&self, updates: &[Update]) -> u64 {
        Server::apply_updates(self, updates)
    }
}

/// An explicit in-process transport over a borrowed [`Server`] — the
/// canonical `Transport` implementation. Functionally identical to using
/// `&Server` directly; exists so call sites can name the transport they
/// hold (and swap it for a batched or remote one without retyping).
#[derive(Clone, Copy, Debug)]
pub struct InProcess<'a> {
    server: &'a Server,
}

impl<'a> InProcess<'a> {
    pub fn new(server: &'a Server) -> Self {
        InProcess { server }
    }

    pub fn server(&self) -> &'a Server {
        self.server
    }
}

impl Transport for InProcess<'_> {
    fn call(&self, client: ClientId, req: Request) -> Response {
        dispatch(self.server, client, req)
    }
}

impl ServerHandle for InProcess<'_> {
    fn core(&self) -> &ServerCore {
        self.server.core()
    }

    fn apply_updates(&self, updates: &[Update]) -> u64 {
        Server::apply_updates(self.server, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FormPolicy;
    use crate::test_util::{cold_remainder, sample_server};
    use pc_geom::{Point, Rect};
    use pc_rtree::proto::{QuerySpec, VersionedReply};
    use pc_rtree::ObjectId;
    use proptest::prelude::*;

    #[test]
    fn handles_are_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Transport>();
        assert_send_sync::<dyn ServerHandle>();
        assert_send_sync::<InProcess<'_>>();
        // `&Server` coerces to a handle at call sites.
        let server = sample_server(50, 1, FormPolicy::Adaptive);
        let handle: &dyn ServerHandle = &server;
        assert_eq!(handle.core().pin().store().len(), 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Each `Request` variant dispatched through `InProcess` must be
        /// outcome-identical to the corresponding direct `Server` method.
        #[test]
        fn in_process_dispatch_equals_direct_methods(
            seed in 0u64..1000,
            client in 0u32..8,
            which in 0u8..3,
            cx in 0.1f64..0.9, cy in 0.1f64..0.9,
            k in 1u32..6,
            fmr_a in 0.0f64..1.0, fmr_b in 0.0f64..1.0,
        ) {
            let spec = match which {
                0 => QuerySpec::Range {
                    window: Rect::centered_square(Point::new(cx, cy), 0.2),
                },
                1 => QuerySpec::Knn { center: Point::new(cx, cy), k },
                _ => QuerySpec::Join { dist: 0.02 },
            };

            // Two identical servers: one driven through the transport, one
            // through bare methods.
            let via_transport = sample_server(150, seed, FormPolicy::Adaptive);
            let via_methods = sample_server(150, seed, FormPolicy::Adaptive);
            let t = InProcess::new(&via_transport);

            // Remainder.
            let rq = cold_remainder(&via_methods, spec);
            let a = t.call(client, Request::Remainder(rq.clone())).into_remainder();
            let b = via_methods.process_remainder(client, &rq);
            prop_assert_eq!(a, b);

            // Versioned remainder (epoch 0 == current: always fresh).
            let a = t
                .call(client, Request::RemainderVersioned { query: rq.clone(), epoch: 0 })
                .into_versioned();
            match (a, via_methods.process_remainder_versioned(client, &rq, 0)) {
                (
                    VersionedReply::Fresh { reply: ra, invalidate: ia, epoch: ea },
                    VersionedReply::Fresh { reply: rb, invalidate: ib, epoch: eb },
                ) => {
                    prop_assert_eq!(ra, rb);
                    prop_assert_eq!(ia, ib);
                    prop_assert_eq!(ea, eb);
                }
                (a, b) => prop_assert!(false, "variant mismatch: {:?} vs {:?}", a, b),
            }

            // Direct.
            let a = t.call(client, Request::Direct(spec)).into_direct();
            let b = via_methods.direct(&spec);
            let b_ids: Vec<ObjectId> = b.results.iter().map(|&(id, _)| id).collect();
            prop_assert_eq!(a.results, b_ids);
            prop_assert_eq!(a.pairs, b.result_pairs);
            prop_assert_eq!(a.expansions, b.expansions);

            // Fmr reports move the same adaptive trajectory.
            let a1 = t.call(client, Request::ReportFmr { fmr: fmr_a }).into_new_d();
            let b1 = via_methods.report_fmr(client, fmr_a);
            prop_assert_eq!(a1, b1);
            let a2 = t.call(client, Request::ReportFmr { fmr: fmr_b }).into_new_d();
            let b2 = via_methods.report_fmr(client, fmr_b);
            prop_assert_eq!(a2, b2);

            // Forget drops exactly what the method drops.
            prop_assert_eq!(
                t.call(client, Request::Forget).into_forgotten(),
                via_methods.forget_client(client)
            );
            prop_assert_eq!(
                via_transport.tracked_clients(),
                via_methods.tracked_clients()
            );
        }
    }
}
