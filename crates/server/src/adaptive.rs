//! The adaptive scheme of §4.3: each client periodically reports its recent
//! false-miss rate; the server raises the d⁺-level when the fmr rose by
//! more than the sensitivity `s`, lowers it when it fell by more than `s`,
//! and leaves it alone otherwise.
//!
//! The per-client table is sharded behind mutexes so every entry point
//! takes `&self`: a server handling a fleet of clients reports and reads
//! adaptive state concurrently, and clients with different ids land on
//! different shards most of the time (a multiplicative hash picks the
//! shard). State growth is bounded: each shard evicts its
//! least-recently-reporting client once its slice of the configured
//! capacity is exceeded, so a long-lived server under churning client ids
//! keeps a fixed-size table. The cap is enforced per shard (rounded up),
//! so the global count can overshoot the configured value by at most
//! `SHARDS - 1`.

use crate::sync_util::lock_recover;
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;
/// log2(SHARDS), used to take the hash's top bits as the shard index.
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// Maps a client id to its shard: a Fibonacci multiplicative hash, so
/// densely-assigned ids *and* ids striding by a power of two (an upstream
/// allocator handing out every 16th id, say) both spread across shards
/// instead of piling the whole fleet onto one lock and its slice of the
/// eviction budget.
fn shard_index(client: u32) -> usize {
    ((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_BITS)) as usize
}

/// Per-client adaptive state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveState {
    pub d: u8,
    pub last_fmr: Option<f64>,
    /// The epoch this client last synced to over the §7 versioned
    /// protocol (`None` for clients that only spoke the plain protocol).
    /// The minimum over all tracked clients is the fleet's **low-water
    /// mark**: update-log history at or below it serves nobody and can be
    /// pruned at the next epoch publish.
    pub last_epoch: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    state: AdaptiveState,
    /// Shard-local logical clock of the last report (eviction order).
    last_report: u64,
}

#[derive(Debug, Default)]
struct Shard {
    states: HashMap<u32, Entry>,
    clock: u64,
}

/// The server-side controller (one instance per server, states per client).
#[derive(Debug)]
pub struct AdaptiveController {
    /// Sensitivity `s` (Table 6.1 default: 20 %).
    sensitivity: f64,
    initial_d: u8,
    max_d: u8,
    /// Total client-state capacity across all shards.
    max_clients: usize,
    shards: [Mutex<Shard>; SHARDS],
}

impl Clone for AdaptiveController {
    fn clone(&self) -> Self {
        let shards = std::array::from_fn(|i| {
            let shard = lock_recover(&self.shards[i]);
            Mutex::new(Shard {
                states: shard.states.clone(),
                clock: shard.clock,
            })
        });
        AdaptiveController {
            sensitivity: self.sensitivity,
            initial_d: self.initial_d,
            max_d: self.max_d,
            max_clients: self.max_clients,
            shards,
        }
    }
}

impl AdaptiveController {
    pub fn new(sensitivity: f64, initial_d: u8, max_d: u8) -> Self {
        assert!(sensitivity >= 0.0);
        AdaptiveController {
            sensitivity,
            initial_d,
            max_d,
            max_clients: usize::MAX,
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        }
    }

    /// Caps the number of tracked clients; the least-recently-reporting
    /// client of a full shard is evicted back to the initial d. The cap is
    /// approximate: it is enforced per shard (`⌈max/SHARDS⌉` each), so the
    /// global count may exceed it by up to `SHARDS - 1`, and caps below
    /// the shard count (16) are raised to one client per shard.
    pub fn with_max_clients(mut self, max_clients: usize) -> Self {
        self.max_clients = max_clients.max(SHARDS);
        self
    }

    fn shard(&self, client: u32) -> &Mutex<Shard> {
        &self.shards[shard_index(client)]
    }

    fn per_shard_cap(&self) -> usize {
        self.max_clients.div_ceil(SHARDS)
    }

    /// Current d⁺-level for a client.
    pub fn d(&self, client: u32) -> u8 {
        lock_recover(self.shard(client))
            .states
            .get(&client)
            .map(|e| e.state.d)
            .unwrap_or(self.initial_d)
    }

    pub fn state(&self, client: u32) -> AdaptiveState {
        lock_recover(self.shard(client))
            .states
            .get(&client)
            .map(|e| e.state)
            .unwrap_or(AdaptiveState {
                d: self.initial_d,
                last_fmr: None,
                last_epoch: None,
            })
    }

    /// Number of clients with recorded state.
    pub fn tracked_clients(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_recover(s).states.len())
            .sum()
    }

    /// Drops a client's state (it restarts from the initial d); returns
    /// whether anything was tracked. Lets a server forget disconnected
    /// clients instead of carrying their state forever.
    pub fn forget_client(&self, client: u32) -> bool {
        lock_recover(self.shard(client))
            .states
            .remove(&client)
            .is_some()
    }

    /// Evicts the stalest entry of `shard` when inserting `client` would
    /// exceed the per-shard capacity (shared by every tracked-state write).
    fn make_room(&self, shard: &mut Shard, client: u32) {
        let cap = self.per_shard_cap();
        if !shard.states.contains_key(&client) && shard.states.len() >= cap {
            // Evict the stalest reporter to stay within capacity.
            if let Some(&stale) = shard
                .states
                .iter()
                .min_by_key(|(_, e)| e.last_report)
                .map(|(c, _)| c)
            {
                shard.states.remove(&stale);
            }
        }
    }

    /// Records the epoch `client` will be synced to once the versioned
    /// contact currently being answered completes (every versioned reply —
    /// fresh, stale or full-refresh — carries the answering snapshot's
    /// epoch, and the client adopts it). Feeds
    /// [`epoch_low_water`](Self::epoch_low_water).
    pub fn note_epoch(&self, client: u32, epoch: u64) {
        let mut shard = lock_recover(self.shard(client));
        shard.clock += 1;
        let clock = shard.clock;
        self.make_room(&mut shard, client);
        let entry = shard.states.entry(client).or_insert(Entry {
            state: AdaptiveState {
                d: self.initial_d,
                last_fmr: None,
                last_epoch: None,
            },
            last_report: clock,
        });
        // Per-client contacts are serial, but batched transports may note
        // out of order — keep the max so the mark never runs backwards.
        entry.state.last_epoch = Some(entry.state.last_epoch.unwrap_or(0).max(epoch));
        entry.last_report = clock;
    }

    /// The fleet **low-water mark**: the minimum last-synced epoch over
    /// every tracked versioned client, i.e. the oldest epoch any live
    /// client could still stamp its next contact with. `None` when no
    /// tracked client has spoken the versioned protocol — then there is
    /// nobody to bound pruning for (the history cap alone applies).
    pub fn epoch_low_water(&self) -> Option<u64> {
        self.shards
            .iter()
            .flat_map(|s| {
                lock_recover(s)
                    .states
                    .values()
                    .filter_map(|e| e.state.last_epoch)
                    .min()
            })
            .min()
    }

    /// Processes one periodic fmr report; returns the (possibly updated) d.
    ///
    /// §4.3: "If the value is higher than the last recorded fmr by s
    /// percent, … the value of d for this client is increased by 1. On the
    /// contrary, if it is lower than last fmr by s percent, d is decreased
    /// by 1. Otherwise, d remains its last value."
    pub fn report(&self, client: u32, fmr: f64) -> u8 {
        let mut shard = lock_recover(self.shard(client));
        shard.clock += 1;
        let clock = shard.clock;
        self.make_room(&mut shard, client);
        let entry = shard.states.entry(client).or_insert(Entry {
            state: AdaptiveState {
                d: self.initial_d,
                last_fmr: None,
                last_epoch: None,
            },
            last_report: clock,
        });
        if let Some(last) = entry.state.last_fmr {
            if fmr > last * (1.0 + self.sensitivity) {
                entry.state.d = entry.state.d.saturating_add(1).min(self.max_d);
            } else if fmr < last * (1.0 - self.sensitivity) {
                entry.state.d = entry.state.d.saturating_sub(1);
            }
        }
        entry.state.last_fmr = Some(fmr);
        entry.last_report = clock;
        entry.state.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(0.2, 2, 8)
    }

    #[test]
    fn first_report_only_records_baseline() {
        let c = controller();
        assert_eq!(c.report(1, 0.5), 2, "no change without a baseline");
        assert_eq!(c.state(1).last_fmr, Some(0.5));
    }

    #[test]
    fn rising_fmr_raises_d() {
        let c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.13), 3, "30% rise > s=20%");
    }

    #[test]
    fn falling_fmr_lowers_d() {
        let c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.05), 1, "50% drop > s=20%");
    }

    #[test]
    fn small_changes_keep_d() {
        let c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.11), 2, "10% rise within the band");
        assert_eq!(c.report(1, 0.095), 2);
    }

    #[test]
    fn d_is_clamped_at_bounds() {
        let c = AdaptiveController::new(0.2, 0, 2);
        c.report(1, 0.1);
        // Keep rising well beyond the band.
        assert_eq!(c.report(1, 0.2), 1);
        assert_eq!(c.report(1, 0.4), 2);
        assert_eq!(c.report(1, 0.8), 2, "clamped at max_d");
        // And fall to the floor.
        assert_eq!(c.report(1, 0.1), 1);
        assert_eq!(c.report(1, 0.01), 0);
        assert_eq!(c.report(1, 0.001), 0, "clamped at 0");
    }

    #[test]
    fn clients_are_independent() {
        let c = controller();
        c.report(1, 0.1);
        c.report(1, 0.2); // client 1 → d=3
        assert_eq!(c.d(1), 3);
        assert_eq!(c.d(2), 2, "fresh client keeps the initial d");
    }

    #[test]
    fn zero_baseline_still_reacts_to_any_rise() {
        let c = controller();
        c.report(1, 0.0);
        assert_eq!(c.report(1, 0.01), 3, "anything above 0·(1+s) rises");
    }

    #[test]
    fn forget_client_resets_to_initial_d() {
        let c = controller();
        c.report(7, 0.1);
        c.report(7, 0.2);
        assert_eq!(c.d(7), 3);
        assert!(c.forget_client(7));
        assert_eq!(c.d(7), 2, "forgotten client restarts at initial d");
        assert_eq!(c.state(7).last_fmr, None);
        assert!(!c.forget_client(7), "second forget is a no-op");
        assert_eq!(c.tracked_clients(), 0);
    }

    #[test]
    fn epoch_low_water_is_the_fleet_minimum() {
        let c = controller();
        assert_eq!(c.epoch_low_water(), None, "no versioned clients yet");
        c.report(1, 0.1);
        assert_eq!(
            c.epoch_low_water(),
            None,
            "plain-protocol clients never pin the mark"
        );
        c.note_epoch(2, 7);
        c.note_epoch(3, 4);
        c.note_epoch(4, 9);
        assert_eq!(c.epoch_low_water(), Some(4));
        // The straggler catches up: the mark rises.
        c.note_epoch(3, 8);
        assert_eq!(c.epoch_low_water(), Some(7));
        // The mark never runs backwards for one client.
        c.note_epoch(3, 2);
        assert_eq!(c.state(3).last_epoch, Some(8));
        // A disconnect releases its pin.
        assert!(c.forget_client(2));
        assert_eq!(c.epoch_low_water(), Some(8));
    }

    #[test]
    fn note_epoch_respects_capacity_and_eviction() {
        let cap = SHARDS;
        let c = controller().with_max_clients(cap);
        for client in 0..1000u32 {
            c.note_epoch(client, client as u64);
            assert!(c.tracked_clients() <= cap);
        }
        // Evicted stragglers no longer hold the low-water mark down.
        assert!(c.epoch_low_water().unwrap() > 0);
    }

    #[test]
    fn note_epoch_keeps_adaptive_d() {
        let c = controller();
        c.report(5, 0.1);
        c.report(5, 0.2); // d -> 3
        c.note_epoch(5, 11);
        assert_eq!(c.d(5), 3, "epoch notes must not reset the d trajectory");
        assert_eq!(c.state(5).last_epoch, Some(11));
        assert_eq!(c.state(5).last_fmr, Some(0.2));
    }

    #[test]
    fn churning_client_ids_stay_within_capacity() {
        let cap = 2 * SHARDS;
        let c = controller().with_max_clients(cap);
        for client in 0..10_000u32 {
            c.report(client, 0.1);
            assert!(
                c.tracked_clients() <= cap,
                "tracked {} exceeds cap {cap} at client {client}",
                c.tracked_clients()
            );
        }
        assert_eq!(c.tracked_clients(), cap, "table is full, not empty");
    }

    #[test]
    fn eviction_prefers_the_stalest_reporter() {
        // Two ids hashing to the same shard, capacity one per shard: the
        // newcomer evicts the stalest reporter.
        let c = controller().with_max_clients(SHARDS);
        let a = 1u32;
        let b = (2..).find(|&x| shard_index(x) == shard_index(a)).unwrap();
        c.report(a, 0.1);
        c.report(a, 0.2); // a → d=3
        c.report(b, 0.1); // evicts a
        assert_eq!(c.d(a), 2, "evicted client lost its raised d");
        assert_eq!(c.state(b).last_fmr, Some(0.1), "newcomer is tracked");
    }

    #[test]
    fn power_of_two_striding_ids_spread_across_shards() {
        // An upstream allocator striding by 16 must not pile every client
        // onto one shard (the failure mode of sharding by low bits).
        let hit: std::collections::HashSet<usize> =
            (0..64u32).map(|i| shard_index(i * 16)).collect();
        assert!(hit.len() > SHARDS / 2, "only {} shards used", hit.len());
    }

    #[test]
    fn concurrent_reports_from_many_threads_keep_per_client_state() {
        let c = Arc::new(controller());
        let handles: Vec<_> = (0..8u32)
            .map(|client| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    // Doubling fmr sequence (every rise > 20%): d climbs to
                    // max (8).
                    for step in 0..10 {
                        c.report(client, 1e-3 * (1u64 << step) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for client in 0..8u32 {
            assert_eq!(c.d(client), 8, "client {client}");
            assert!((c.state(client).last_fmr.unwrap() - 0.512).abs() < 1e-12);
        }
        assert_eq!(c.tracked_clients(), 8);
    }
}
