//! The adaptive scheme of §4.3: each client periodically reports its recent
//! false-miss rate; the server raises the d⁺-level when the fmr rose by
//! more than the sensitivity `s`, lowers it when it fell by more than `s`,
//! and leaves it alone otherwise.

use std::collections::HashMap;

/// Per-client adaptive state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveState {
    pub d: u8,
    pub last_fmr: Option<f64>,
}

/// The server-side controller (one instance per server, states per client).
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    /// Sensitivity `s` (Table 6.1 default: 20 %).
    sensitivity: f64,
    initial_d: u8,
    max_d: u8,
    states: HashMap<u32, AdaptiveState>,
}

impl AdaptiveController {
    pub fn new(sensitivity: f64, initial_d: u8, max_d: u8) -> Self {
        assert!(sensitivity >= 0.0);
        AdaptiveController {
            sensitivity,
            initial_d,
            max_d,
            states: HashMap::new(),
        }
    }

    /// Current d⁺-level for a client.
    pub fn d(&self, client: u32) -> u8 {
        self.states
            .get(&client)
            .map(|s| s.d)
            .unwrap_or(self.initial_d)
    }

    pub fn state(&self, client: u32) -> AdaptiveState {
        self.states.get(&client).copied().unwrap_or(AdaptiveState {
            d: self.initial_d,
            last_fmr: None,
        })
    }

    /// Processes one periodic fmr report; returns the (possibly updated) d.
    ///
    /// §4.3: "If the value is higher than the last recorded fmr by s
    /// percent, … the value of d for this client is increased by 1. On the
    /// contrary, if it is lower than last fmr by s percent, d is decreased
    /// by 1. Otherwise, d remains its last value."
    pub fn report(&mut self, client: u32, fmr: f64) -> u8 {
        let entry = self.states.entry(client).or_insert(AdaptiveState {
            d: self.initial_d,
            last_fmr: None,
        });
        if let Some(last) = entry.last_fmr {
            if fmr > last * (1.0 + self.sensitivity) {
                entry.d = entry.d.saturating_add(1).min(self.max_d);
            } else if fmr < last * (1.0 - self.sensitivity) {
                entry.d = entry.d.saturating_sub(1);
            }
        }
        entry.last_fmr = Some(fmr);
        entry.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(0.2, 2, 8)
    }

    #[test]
    fn first_report_only_records_baseline() {
        let mut c = controller();
        assert_eq!(c.report(1, 0.5), 2, "no change without a baseline");
        assert_eq!(c.state(1).last_fmr, Some(0.5));
    }

    #[test]
    fn rising_fmr_raises_d() {
        let mut c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.13), 3, "30% rise > s=20%");
    }

    #[test]
    fn falling_fmr_lowers_d() {
        let mut c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.05), 1, "50% drop > s=20%");
    }

    #[test]
    fn small_changes_keep_d() {
        let mut c = controller();
        c.report(1, 0.10);
        assert_eq!(c.report(1, 0.11), 2, "10% rise within the band");
        assert_eq!(c.report(1, 0.095), 2);
    }

    #[test]
    fn d_is_clamped_at_bounds() {
        let mut c = AdaptiveController::new(0.2, 0, 2);
        c.report(1, 0.1);
        // Keep rising well beyond the band.
        assert_eq!(c.report(1, 0.2), 1);
        assert_eq!(c.report(1, 0.4), 2);
        assert_eq!(c.report(1, 0.8), 2, "clamped at max_d");
        // And fall to the floor.
        assert_eq!(c.report(1, 0.1), 1);
        assert_eq!(c.report(1, 0.01), 0);
        assert_eq!(c.report(1, 0.001), 0, "clamped at 0");
    }

    #[test]
    fn clients_are_independent() {
        let mut c = controller();
        c.report(1, 0.1);
        c.report(1, 0.2); // client 1 → d=3
        assert_eq!(c.d(1), 3);
        assert_eq!(c.d(2), 2, "fresh client keeps the initial d");
    }

    #[test]
    fn zero_baseline_still_reacts_to_any_rise() {
        let mut c = controller();
        c.report(1, 0.0);
        assert_eq!(c.report(1, 0.01), 3, "anything above 0·(1+s) rises");
    }
}
