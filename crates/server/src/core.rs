//! The immutable query core of the server: dataset, R*-tree, BPT store and
//! update log. Everything here is plain data with `&self` query methods, so
//! a `ServerCore` is `Send + Sync` and can be shared behind an [`Arc`]
//! (`std::sync::Arc`) by any number of worker threads — the concurrency
//! story of a server that, per Fig. 3, serves many mobile clients at once.
//!
//! The per-client *adaptive* state (§4.3) deliberately lives outside this
//! type, in [`crate::AdaptiveController`]; [`crate::Server`] composes the
//! two and remains the one-stop façade.

use crate::forms::{build_shipments, FormMode};
use pc_rtree::bpt::BptStore;
use pc_rtree::engine::{execute, resume, AccessLog, NoopTracer, Outcome};
use pc_rtree::proto::{QuerySpec, RemainderQuery, ServerReply};
use pc_rtree::view::FullView;
use pc_rtree::{ObjectStore, RTree, RTreeConfig};

/// The shared-state heart of the server: index + data + versioning, no
/// per-client state. All query methods take `&self`.
#[derive(Clone, Debug)]
pub struct ServerCore {
    tree: RTree,
    bpts: BptStore,
    store: ObjectStore,
    updates: crate::updates::UpdateLog,
}

impl ServerCore {
    /// Bulk loads the index over `store` and prepares the BPTs offline.
    pub fn build(store: ObjectStore, tree_cfg: RTreeConfig) -> Self {
        let objects: Vec<_> = store.iter().copied().collect();
        let tree = RTree::bulk_load(tree_cfg, &objects);
        let bpts = BptStore::build(&tree);
        ServerCore {
            tree,
            bpts,
            store,
            updates: crate::updates::UpdateLog::default(),
        }
    }

    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    pub(crate) fn tree_mut(&mut self) -> &mut RTree {
        &mut self.tree
    }

    pub fn bpts(&self) -> &BptStore {
        &self.bpts
    }

    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Update/invalidation state (§7 extension).
    pub fn update_log(&self) -> &crate::updates::UpdateLog {
        &self.updates
    }

    pub(crate) fn update_log_mut(&mut self) -> &mut crate::updates::UpdateLog {
        &mut self.updates
    }

    /// Rebuilds the BPT of one node after its entry set changed.
    pub(crate) fn rebuild_bpt(&mut self, node: pc_rtree::NodeId) {
        self.bpts.rebuild_node(&self.tree, node);
    }

    /// Evaluates a query directly (no caching) — ground truth for the
    /// simulator's metrics and the backend for the PAG/SEM baselines.
    pub fn direct(&self, spec: &QuerySpec) -> Outcome {
        let view = FullView::new(&self.tree, &self.bpts);
        execute(&view, spec, &mut NoopTracer)
    }

    /// Stage ② of Fig. 3 with an explicit form: resumes `Qr` from its heap,
    /// assembles `Rr` (splitting confirmed-cached results from transmitted
    /// ones) and the supporting index `Ir` in `mode`. This is the
    /// policy-free primitive behind [`crate::Server::process_remainder`].
    pub fn resume_remainder(&self, rq: &RemainderQuery, mode: FormMode) -> ServerReply {
        let view = FullView::new(&self.tree, &self.bpts);
        let mut log = AccessLog::default();
        let outcome = resume(&view, rq, &mut log);
        debug_assert!(outcome.remainder.is_none(), "server must finish queries");

        let index = build_shipments(&log, &self.tree, &self.bpts, mode);

        let mut confirmed = Vec::new();
        let mut objects = Vec::new();
        for &(id, cached) in &outcome.results {
            if cached {
                confirmed.push(id);
            } else {
                objects.push(*self.store.get(id));
            }
        }
        ServerReply {
            confirmed,
            objects,
            pairs: outcome.result_pairs,
            index,
            expansions: outcome.expansions,
        }
    }

    /// Auxiliary BPT bytes (§6.4's "4.2 MB for NE" statistic).
    pub fn bpt_bytes(&self) -> u64 {
        self.bpts.total_aux_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_geom::{Point, Rect};
    use pc_rtree::naive;
    use pc_rtree::{ObjectId, SpatialObject};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn sample_core(n: usize, seed: u64) -> ServerCore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(i as u32),
                mbr: Rect::from_point(Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )),
                size_bytes: 1000,
            })
            .collect();
        ServerCore::build(ObjectStore::new(objects), RTreeConfig::small())
    }

    #[test]
    fn core_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerCore>();
        assert_send_sync::<Arc<ServerCore>>();
    }

    #[test]
    fn shared_core_answers_queries_from_many_threads() {
        let core = Arc::new(sample_core(400, 11));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || {
                    let w = Rect::centered_square(Point::new(0.2 + 0.15 * t as f64, 0.5), 0.2);
                    let got: Vec<ObjectId> = core
                        .direct(&QuerySpec::Range { window: w })
                        .results
                        .iter()
                        .map(|&(id, _)| id)
                        .collect();
                    let mut got = got;
                    got.sort_unstable();
                    (w, got)
                })
            })
            .collect();
        for h in handles {
            let (w, got) = h.join().unwrap();
            assert_eq!(got, naive::range_naive(core.store(), &w));
        }
    }
}
